"""Command-line interface for the AutoSens reproduction."""

from repro.cli.main import main

__all__ = ["main"]
