"""Command-line interface.

Subcommands::

    autosens generate --scenario owa --seed 7 --out logs.jsonl
    autosens analyze logs.jsonl --action SelectMail --user-class business
    autosens analyze dirty.jsonl --on-bad-rows quarantine --quarantine-path bad.jsonl
    autosens experiment fig4 --scale full --checkpoint-dir .autosens-ckpt
    autosens watch .autosens-runs --check
    autosens list

(Or ``python -m repro ...`` without installing the entry point.)

Exit codes follow the error taxonomy in :mod:`repro.errors`: 0 success,
1 generic failure (including failed experiment checks), 2 bad
request/config, 3 schema violation, 4 ingest error budget exceeded,
5 empty/insufficient data, 6 privacy refusal, 7 task retries exhausted,
8 deadline exceeded, 9 circuit breaker open, 10 memory budget exceeded.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro._version import __version__
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceededError,
    EmptyDataError,
    IngestError,
    InsufficientDataError,
    MemoryBudgetError,
    PrivacyError,
    ReproError,
    SchemaError,
    TaskFailedError,
)

#: Exit code per error class; first matching entry wins (order matters:
#: subclasses before ReproError).
_EXIT_CODES = (
    (ConfigError, 2),
    (SchemaError, 3),
    (IngestError, 4),
    (EmptyDataError, 5),
    (InsufficientDataError, 5),
    (PrivacyError, 6),
    (TaskFailedError, 7),
    (DeadlineExceededError, 8),
    (CircuitOpenError, 9),
    (MemoryBudgetError, 10),
    (ReproError, 1),
)


def _exit_code_for(exc: ReproError) -> int:
    for klass, code in _EXIT_CODES:
        if isinstance(exc, klass):
            return code
    return 1  # pragma: no cover - ReproError entry is a catch-all


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags (off by default, near-free when off)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        default=None,
        help="emit structured logs at this level and above (default: off)")
    group.add_argument(
        "--log-json", action="store_true",
        help="logs as JSON lines instead of key=value text")
    group.add_argument(
        "--trace-out", default=None,
        help="write the run's span trace here: .json selects Chrome "
             "trace_event format (open in chrome://tracing or Perfetto), "
             ".jsonl one span record per line")
    group.add_argument(
        "--metrics-out", default=None,
        help="write the run's metrics here: .json for a snapshot, any "
             "other suffix for Prometheus text format")
    group.add_argument(
        "--manifest-out", default=None,
        help="write a run-provenance manifest (seed, config fingerprint, "
             "versions, degradations) here, atomically")
    group.add_argument(
        "--deterministic-trace", action="store_true",
        help="timestamp spans from a monotonic event clock instead of wall "
             "time, making every emitted artifact byte-deterministic for a "
             "fixed seed")
    group.add_argument(
        "--health-out", default=None,
        help="write the estimator-health report (probe findings + per-stage "
             "verdicts, see 'autosens doctor') here as JSON")
    group.add_argument(
        "--profile-out", default=None,
        help="attach the span profiler and write per-span CPU/RSS "
             "attribution plus folded stacks here as JSON; all other "
             "artifacts stay byte-identical with or without this flag")
    group.add_argument(
        "--serve-obs", default=None, metavar="HOST:PORT",
        help="serve live telemetry over HTTP while the command runs: "
             "/metrics (Prometheus text), /healthz (rolling probe verdict), "
             "/progress (JSON for 'autosens top'), /events (NDJSON tail); "
             "port 0 picks a free port; all artifacts stay byte-identical "
             "with or without this flag")
    group.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="record this run into the persistent run registry at DIR "
             "(manifest + metrics + progress, indexed append-only); inspect "
             "with 'autosens runs ls|show|diff|trend'")
    return parent


def _configure_obs(args: argparse.Namespace) -> bool:
    """Install an observability context when any obs flag asks for one."""
    import repro.obs as obs

    # Inspection commands read artifacts others produced; their flags
    # (e.g. `runs --runs-dir`) never mean "instrument this invocation".
    if args.command in ("obs", "doctor", "top", "runs", "watch", "list"):
        return False
    wants = bool(
        getattr(args, "log_level", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "manifest_out", None)
        or getattr(args, "deterministic_trace", False)
        or getattr(args, "health_out", None)
        or getattr(args, "profile_out", None)
        or getattr(args, "serve_obs", None)
        or getattr(args, "runs_dir", None)
    )
    if not wants:
        return False
    seed = getattr(args, "seed", None)
    run_id = f"{args.command}:{seed if seed is not None else 'default'}"
    obs.configure(
        enabled=True,
        level=args.log_level or "warning",
        log_json=getattr(args, "log_json", False),
        deterministic=getattr(args, "deterministic_trace", False),
        run_id=run_id,
        profile=bool(getattr(args, "profile_out", None)),
    )
    return True


def _export_obs(args: argparse.Namespace) -> None:
    """Write the trace/metrics artifacts the obs flags requested."""
    import repro.obs as obs

    ctx = obs.current()
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        records = ctx.tracer.finished()
        if Path(trace_out).suffix == ".jsonl":
            n = obs.write_trace_jsonl(records, trace_out)
        else:
            n = obs.write_chrome_trace(records, trace_out,
                                       trace_id=ctx.run_id or "autosens")
        print(f"trace: {n} spans written to {trace_out}", file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        if Path(metrics_out).suffix == ".json":
            obs.write_metrics_json(ctx.metrics, metrics_out)
        else:
            obs.write_metrics_prometheus(ctx.metrics, metrics_out)
        print(f"metrics: {len(ctx.metrics)} instruments written to "
              f"{metrics_out}", file=sys.stderr)
    manifest_out = getattr(args, "manifest_out", None)
    if manifest_out and args.command != "experiment":
        # The experiment runtime writes its own (richer) manifest; every
        # other command gets a generic one describing this invocation.
        seed = getattr(args, "seed", None)
        manifest = obs.build_manifest(
            experiment_id=args.command,
            seed=seed if seed is not None else -1,
            config_fingerprint=ctx.run_id,
            degradations=ctx.degradations,
            metrics=ctx.metrics.snapshot(),
            deterministic=ctx.deterministic,
        )
        obs.write_manifest(manifest, manifest_out)
        print(f"manifest written to {manifest_out}", file=sys.stderr)
    health_out = getattr(args, "health_out", None)
    if health_out:
        report = obs.build_health_report()
        obs.write_health_report(report, health_out)
        print(f"health: verdict {report.verdict} "
              f"({len(report.findings)} findings) written to {health_out}",
              file=sys.stderr)
    profile_out = getattr(args, "profile_out", None)
    if profile_out:
        payload = obs.build_profile(
            obs.profiler(), records=ctx.tracer.finished(),
            run_id=ctx.run_id or "autosens")
        obs.write_profile(payload, profile_out)
        print(f"profile: {len(payload['spans'])} spans written to "
              f"{profile_out}", file=sys.stderr)


def _start_obs_services(args: argparse.Namespace) -> dict:
    """Start the live telemetry plane this invocation asked for.

    Returns a services dict consumed by :func:`_finalize_obs_services`.
    The server attaches to the already-configured context's event bus; a
    bad ``--serve-obs`` address is a :class:`~repro.errors.ConfigError`
    (exit 2) like any other bad flag.
    """
    import time

    services: dict = {"server": None, "t0": time.monotonic()}
    spec = getattr(args, "serve_obs", None)
    if spec:
        import repro.obs as obs
        from repro.obs.serve import ObsServer, parse_serve_addr

        try:
            host, port = parse_serve_addr(spec)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        server = ObsServer(host, port,
                           runs_dir=getattr(args, "runs_dir", None)).start()
        services["server"] = server
        print(f"obs: serving live telemetry on {server.url} "
              "(/metrics /healthz /progress /events /slo /trend)",
              file=sys.stderr)
        obs.event("run", phase="start", run_id=obs.current().run_id,
                  command=args.command)
    return services


def _finalize_obs_services(args: argparse.Namespace, services: dict,
                           status: int) -> None:
    """Stop the obs server and record the run into ``--runs-dir``.

    Recording happens even for failed runs — a registry that only holds
    successes cannot show when a regression started.
    """
    import json
    import time

    import repro.obs as obs

    ctx = obs.current()
    server = services.get("server")
    final_state = "done" if status == 0 else "failed"
    if server is not None:
        obs.event("run", phase=final_state)
        server.close()
    runs_dir = getattr(args, "runs_dir", None)
    if not runs_dir:
        return
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(runs_dir)
    run_dir = registry.new_run_dir(ctx.run_id or args.command)
    report = obs.build_health_report()
    manifest = obs.build_manifest(
        experiment_id=args.command,
        seed=(getattr(args, "seed", None)
              if getattr(args, "seed", None) is not None else -1),
        config_fingerprint=ctx.run_id,
        degradations=ctx.degradations,
        metrics=ctx.metrics.snapshot(),
        deterministic=ctx.deterministic,
        extra={
            "health": report.to_dict(),
            "span_timings": obs.aggregate_span_timings(
                ctx.tracer.finished()),
            "exit_status": status,
        },
    )
    obs.write_manifest(manifest, run_dir / "manifest.json")
    obs.write_metrics_prometheus(ctx.metrics, run_dir / "metrics.prom")
    if server is not None:
        server.tracker.finish(final_state)
        (run_dir / "progress.json").write_text(
            json.dumps(server.tracker.snapshot(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        events = server.sink.tail(n=server.sink.maxlen)
        if events:
            (run_dir / "events.ndjson").write_text(
                "".join(line + "\n" for line in obs.event_lines(events)),
                encoding="utf-8")
    entry = {
        "run_id": ctx.run_id,
        "command": args.command,
        "seed": getattr(args, "seed", None),
        "deterministic": ctx.deterministic,
        "verdict": report.verdict,
        "wall_s": round(time.monotonic() - services.get("t0", 0.0), 3),
    }
    if not ctx.deterministic:
        entry["created_at"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    registry.record(run_dir, **entry)
    print(f"run recorded: {run_dir}", file=sys.stderr)


def _runtime_parent() -> argparse.ArgumentParser:
    """Shared supervision flags (``--deadline-s`` & friends; off by default)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("supervision")
    group.add_argument(
        "--deadline-s", type=float, default=None,
        help="wall-clock budget in seconds; over-budget sweeps shed the "
             "remaining slices (recorded as deadline_exceeded degradations) "
             "and other stages stop with exit code 8")
    group.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="memory budget for sweep working sets; completed slices past "
             "the budget spill to disk, and a single slice that cannot fit "
             "at all stops with exit code 10")
    group.add_argument(
        "--breaker", action="store_true",
        help="guard flaky stages and ingestion with a circuit breaker: "
             "repeated failures open the circuit (exit code 9) instead of "
             "retrying into a known-bad dependency")
    return parent


def _supervisor_from(args: argparse.Namespace):
    """Build the run's Supervisor, or ``None`` when no flag asks for one."""
    deadline_s = getattr(args, "deadline_s", None)
    memory_budget_mb = getattr(args, "memory_budget_mb", None)
    breaker = getattr(args, "breaker", False)
    if deadline_s is None and memory_budget_mb is None and not breaker:
        return None
    from repro.runtime import Supervisor

    return Supervisor(
        deadline_s=deadline_s,
        memory_budget_mb=memory_budget_mb,
        breaker=breaker,
    )


def _ingest_parent() -> argparse.ArgumentParser:
    """Shared ``--on-bad-rows``/``--quarantine-path`` flags."""
    from repro.telemetry import INGEST_MODES

    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("ingestion")
    group.add_argument(
        "--on-bad-rows", choices=list(INGEST_MODES), default="strict",
        help="malformed-row handling: strict fails on the first bad row, "
             "lenient skips and counts, quarantine also writes rejects to "
             "--quarantine-path (default: strict)")
    group.add_argument(
        "--quarantine-path", default=None,
        help="JSONL sink for rejected rows (required with "
             "--on-bad-rows quarantine)")
    group.add_argument(
        "--max-bad-share", type=float, default=0.05,
        help="error budget: maximum tolerated share of bad rows before "
             "ingestion fails (default: 0.05)")
    return parent


def _ingest_policy(args: argparse.Namespace):
    from repro.telemetry import IngestPolicy

    return IngestPolicy(
        mode=args.on_bad_rows,
        max_bad_share=args.max_bad_share,
        quarantine_path=args.quarantine_path,
    )


def _read_logs(path: Path, args: argparse.Namespace, supervisor=None):
    """Read a telemetry file honouring the command's ingest flags.

    With a supervised circuit breaker the reader call routes through it, so
    repeatedly-failing inputs open the circuit instead of being hammered.
    """
    from repro.telemetry import read_csv, read_jsonl

    policy = _ingest_policy(args)
    reader = read_csv if path.suffix == ".csv" else read_jsonl
    if supervisor is not None and supervisor.breaker is not None:
        return supervisor.breaker.call(reader, path, policy=policy)
    return reader(path, policy=policy)


def _report_ingest(logs) -> None:
    """Print a one-line note when rows were rejected during ingestion."""
    report = getattr(logs, "ingest_report", None)
    if report is not None and report.n_bad:
        print(f"note: {report.summary()}", file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosens",
        description="AutoSens (IMC 2021) reproduction: latency-sensitivity "
                    "inference through natural experiments.",
    )
    parser.add_argument("--version", action="version", version=f"autosens {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    ingest = _ingest_parent()
    observability = _obs_parent()
    supervision = _runtime_parent()

    gen = sub.add_parser("generate", help="generate synthetic telemetry",
                         parents=[ingest, observability])
    gen.add_argument("--scenario", default="owa",
                     help="scenario name (see 'autosens list')")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--days", type=float, default=None, help="duration in days")
    gen.add_argument("--users", type=int, default=None, help="population size")
    gen.add_argument("--latency-backend", choices=["ou", "queue"], default=None,
                     help="override the scenario's latency generator: 'ou' "
                          "(diurnal Ornstein-Uhlenbeck level) or 'queue' "
                          "(M/G/k discrete-event simulation)")
    gen.add_argument("--out", required=True,
                     help="output path (.jsonl, .jsonl.gz or .csv)")

    ana = sub.add_parser("analyze", help="compute an NLP curve from a log file",
                         parents=[ingest, observability, supervision])
    ana.add_argument("logs", help="telemetry file (.jsonl, .jsonl.gz, .csv) "
                              "or an exported counts table (counts .json)")
    ana.add_argument("--action", default=None)
    ana.add_argument("--user-class", default=None)
    ana.add_argument("--reference-ms", type=float, default=300.0)
    ana.add_argument("--no-time-correction", action="store_true")
    ana.add_argument("--u-shards", type=int, default=1, metavar="N",
                     help="time shards for the unbiased draw (N>1 runs them "
                          "on the process executor; same result on any backend)")
    ana.add_argument("--seed", type=int, default=0)
    ana.add_argument("--export", default=None,
                     help="write the curve series to this CSV path")

    exp = sub.add_parser("experiment", help="run paper experiments",
                         parents=[observability, supervision])
    exp.add_argument("ids", nargs="*", default=[],
                     help="experiment ids (default: all)")
    exp.add_argument("--scale", choices=["small", "full"], default="full")
    exp.add_argument("--seed", type=int, default=None)
    exp.add_argument("--no-plots", action="store_true")
    exp.add_argument("--checkpoint-dir", default=None,
                     help="journal completed work here; a rerun resumes "
                          "instead of recomputing")

    counts = sub.add_parser(
        "export-counts",
        help="export privacy-preserving sufficient statistics from a log file",
    )
    counts.add_argument("logs", help="telemetry file (.jsonl, .jsonl.gz or .csv)")
    counts.add_argument("--action", default=None)
    counts.add_argument("--user-class", default=None)
    counts.add_argument("--scheme", default="hour-of-day")
    counts.add_argument("--u-shards", type=int, default=1, metavar="N",
                        help="time shards for the unbiased draw (N>1 runs them "
                             "on the process executor)")
    counts.add_argument("--seed", type=int, default=0)
    counts.add_argument("--out", required=True, help="output JSON path")

    qual = sub.add_parser("quality", help="data-quality report for a log file",
                          parents=[ingest, observability])
    qual.add_argument("logs", help="telemetry file (.jsonl, .jsonl.gz or .csv)")

    pre = sub.add_parser("preflight",
                         help="check whether a log slice supports AutoSens",
                         parents=[ingest])
    pre.add_argument("logs", help="telemetry file (.jsonl, .jsonl.gz or .csv)")
    pre.add_argument("--action", default=None)
    pre.add_argument("--user-class", default=None)

    obs_cmd = sub.add_parser(
        "obs", help="inspect observability artifacts")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summary = obs_sub.add_parser(
        "summary", help="render a run manifest as a human-readable table")
    summary.add_argument("manifest", help="path to a run manifest JSON file")
    summary.add_argument("--format", choices=["table", "json"],
                         default="table",
                         help="output format: a text table or a JSON array "
                              "of [field, value] pairs (default: table)")
    diff = obs_sub.add_parser(
        "diff", help="compare two run artifacts (manifest/bench/metrics/"
                     "curve/health) with tolerance classification")
    diff.add_argument("a", help="baseline artifact (JSON file or run dir)")
    diff.add_argument("b", help="candidate artifact (JSON file or run dir)")
    diff.add_argument("--rel-tol", type=float, default=None,
                      help="relative tolerance for ratio-ish quantities "
                           "(default: 0.10)")
    diff.add_argument("--curve-tol", type=float, default=None,
                      help="absolute tolerance for NLP curve values "
                           "(default: 0.02)")
    diff.add_argument("--out", default=None,
                      help="also write the classified diff as JSON here")
    diff.add_argument("--show-unchanged", action="store_true",
                      help="list unchanged entries too, not just drift")

    doctor = sub.add_parser(
        "doctor",
        help="diagnose a finished run: estimator-health findings and "
             "per-stage verdicts")
    doctor.add_argument(
        "run", help="a run directory (containing manifest.json), a manifest "
                    "file, or a health-report file")
    doctor.add_argument("--strict", action="store_true",
                        help="exit non-zero on 'warn' too, not just 'fail'")
    doctor.add_argument("--max-findings", type=int, default=15,
                        help="how many findings to list, worst first "
                             "(default: 15)")

    rec = sub.add_parser(
        "recover",
        help="run incident recovery fixtures: each must recover the "
             "incident-free NLP curve or degrade loudly",
        parents=[observability])
    rec.add_argument("fixtures", nargs="*", default=[],
                     help="fixture names (default: the whole matrix)")
    rec.add_argument("--seed", type=int, default=7)
    rec.add_argument("--scale", choices=["small", "full"], default="small")
    rec.add_argument("--executor", default="serial",
                     help="execution backend (serial or process; outcomes "
                          "are bit-identical across backends)")
    rec.add_argument("--out-dir", default=None,
                     help="write per-fixture curve + verdict artifacts and "
                          "a summary.json here")
    rec.add_argument("--baseline-dir", default=None,
                     help="obs-diff each fixture's curve against "
                          "<dir>/<name>.curve.json and fail on drift "
                          "(requires --out-dir)")
    rec.add_argument("--curve-tol", type=float, default=None,
                     help="absolute NLP tolerance for the baseline diff "
                          "(default: 0.02)")

    sens = sub.add_parser(
        "sensitivity",
        help="sweep the estimator across degradation fixtures: each cell "
             "must stay within tolerance of its clean twin or degrade "
             "loudly (silent bias gates red)",
        parents=[observability])
    sens.add_argument("fixtures", nargs="*", default=[],
                      help="fixture names (default: the default matrix)")
    sens.add_argument("--scenario", default="owa-queue",
                      help="workload scenario to degrade (default: "
                           "owa-queue)")
    sens.add_argument("--seed", type=int, default=7)
    sens.add_argument("--scale", choices=["smoke", "full"], default="smoke")
    sens.add_argument("--smoke", action="store_true",
                      help="alias for --scale smoke (the CI invocation)")
    sens.add_argument("--executor", default="serial",
                      help="execution backend (serial or process; frontiers "
                           "are bit-identical across backends)")
    sens.add_argument("--out-dir", default=None,
                      help="write per-fixture frontier artifacts, "
                           "summary.json, and a timings sidecar here")
    sens.add_argument("--baseline-dir", default=None,
                      help="obs-diff each fixture's frontier against "
                           "<dir>/<name>.frontier.json and fail on drift "
                           "(requires --out-dir)")
    sens.add_argument("--curve-tol", type=float, default=None,
                      help="absolute bias tolerance for the baseline diff "
                           "(default: 0.02)")

    top = sub.add_parser(
        "top",
        help="live progress view: per-stage completion bars, throughput "
             "and ETA from a --serve-obs endpoint (or a recorded run dir)")
    top.add_argument(
        "target",
        help="a --serve-obs address (HOST:PORT or URL) to poll, or a "
             "recorded run directory holding progress.json")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between frames when polling a live "
                          "endpoint (default: 1.0)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")

    runs = sub.add_parser(
        "runs", help="inspect the persistent run registry (--runs-dir)")
    runs_dir_parent = argparse.ArgumentParser(add_help=False)
    runs_dir_parent.add_argument(
        "--runs-dir", default=".autosens-runs",
        help="registry directory (default: .autosens-runs)")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser("ls", parents=[runs_dir_parent],
                        help="list recorded runs, oldest first")
    runs_show = runs_sub.add_parser(
        "show", parents=[runs_dir_parent],
        help="show one recorded run: index entry plus its manifest summary")
    runs_show.add_argument("run", help="seq number, run id, or dir name")
    runs_diff = runs_sub.add_parser(
        "diff", parents=[runs_dir_parent],
        help="obs-diff two recorded runs with tolerance classification")
    runs_diff.add_argument("a", help="baseline run (seq/run id/dir name)")
    runs_diff.add_argument("b", help="candidate run (seq/run id/dir name)")
    runs_diff.add_argument("--rel-tol", type=float, default=None)
    runs_diff.add_argument("--curve-tol", type=float, default=None)
    runs_trend = runs_sub.add_parser(
        "trend", parents=[runs_dir_parent],
        help="diff each consecutive pair among the last N runs: wall-time, "
             "span-share and health-verdict drift over time")
    runs_trend.add_argument("--last", type=int, default=5,
                            help="how many recent runs to trend (default: 5)")
    runs_trend.add_argument("--rel-tol", type=float, default=None)
    runs_trend.add_argument("--curve-tol", type=float, default=None)

    watch = sub.add_parser(
        "watch",
        help="fleet surveillance over a run registry: rolling EWMA+MAD "
             "baselines, change-point drift attribution, and SLO burn-rate "
             "verdicts over the whole recorded history")
    watch.add_argument(
        "runs_dir",
        help="registry directory (the --runs-dir runs were recorded into)")
    watch.add_argument(
        "--slo", default=None, metavar="PATH",
        help="SLO config as TOML ([[slo]] tables) or JSON; default: the "
             "built-in fleet SLO set (health, ingest rejects, span "
             "stability, frontier bias)")
    watch.add_argument(
        "--last", type=int, default=0,
        help="only consider the last N recorded runs (default: all)")
    watch.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write baseline.json / trend.json / slo.json here "
             "(byte-deterministic: identical registries yield identical "
             "artifacts)")
    watch.add_argument(
        "--executor", default=None, choices=["serial", "process"],
        help="per-series analysis executor (default: serial; process is "
             "byte-identical by contract)")
    watch.add_argument(
        "--check", action="store_true",
        help="CI gate: exit 1 when any SLO breaches (0 when all met)")
    watch.add_argument(
        "--follow", action="store_true",
        help="keep watching: re-evaluate whenever the registry index "
             "grows (ctrl-C to stop)")
    watch.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between registry polls with --follow (default: 2.0)")
    watch.add_argument(
        "--max-polls", type=int, default=0,
        help="stop --follow after this many polls (0 = until interrupted)")

    sub.add_parser("list", help="list scenarios and experiments")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.telemetry import write_csv, write_jsonl
    from repro.workload.scenarios import SCENARIOS

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; known: {', '.join(SCENARIOS)}",
              file=sys.stderr)
        return 2
    kwargs = {"seed": args.seed}
    if args.days is not None:
        kwargs["duration_days"] = args.days
    if args.users is not None:
        kwargs["n_users"] = args.users
    scenario = SCENARIOS[args.scenario](**kwargs)
    if args.latency_backend is not None:
        scenario = scenario.with_latency_backend(args.latency_backend)
    result = scenario.generate()
    out = Path(args.out)
    records = result.logs.iter_records()
    if out.suffix == ".csv":
        count = write_csv(records, out)
    else:
        count = write_jsonl(records, out)
    print(f"wrote {count} actions ({result.n_candidates} candidates, "
          f"{result.acceptance_rate:.1%} accepted) to {out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core import AutoSens, AutoSensConfig
    from repro.viz import line_plot, save_series_csv
    from repro.viz.table import format_table

    path = Path(args.logs)
    config = AutoSensConfig(
        reference_ms=args.reference_ms,
        time_correction=not args.no_time_correction,
        unbiased_shards=args.u_shards,
        seed=args.seed,
    )
    # Shards only pay off on a multi-core process pool; a single stratum
    # stays on the default serial executor.
    shard_executor = "process" if args.u_shards > 1 else None
    supervisor = _supervisor_from(args)
    if path.suffix == ".json":
        from repro.core.aggregate import curve_from_counts, load_counts

        if args.action or args.user_class:
            print("note: counts tables are pre-sliced; --action/--user-class "
                  "are ignored", file=sys.stderr)
        curve = curve_from_counts(load_counts(path), config,
                                  slice_description=path.stem)
    elif supervisor is not None:
        with supervisor.scope():
            logs = _read_logs(path, args, supervisor=supervisor)
            _report_ingest(logs)
            engine = AutoSens(config, executor=shard_executor)
            curve = engine.preference_curve(
                logs, action=args.action, user_class=args.user_class
            )
    else:
        logs = _read_logs(path, args)
        _report_ingest(logs)
        engine = AutoSens(config, executor=shard_executor)
        curve = engine.preference_curve(
            logs, action=args.action, user_class=args.user_class
        )
    probes = [400.0, 500.0, 800.0, 1000.0, 1500.0, 2000.0]
    rows = []
    for probe in probes:
        try:
            value = float(curve.at(probe))
        except Exception:
            value = float("nan")
        rows.append([f"{probe:.0f} ms",
                     None if np.isnan(value) else value,
                     None if np.isnan(value) else 1.0 - value])
    print(f"slice: {curve.slice_description}  (n={curve.n_actions})")
    print(format_table(["latency", "NLP", "activity drop"], rows))
    mask = curve.valid & (curve.latencies <= 2000.0)
    if mask.any():
        print(line_plot(
            {"NLP": (curve.latencies[mask], curve.nlp[mask])},
            title="normalized latency preference",
            x_label="latency ms",
        ))
    if args.export:
        save_series_csv(curve.series(), args.export)
        print(f"series written to {args.export}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import EXPERIMENTS, run_experiment
    from repro.analysis.summary import summarize

    ids = args.ids or list(EXPERIMENTS)
    status = 0
    outcomes = []
    supervisor = _supervisor_from(args)
    for i, experiment_id in enumerate(ids):
        # One manifest per invocation: with several ids, the last run wins
        # the flag's path and earlier ones get an id-suffixed sibling.
        manifest_out = args.manifest_out
        if manifest_out and len(ids) > 1 and i < len(ids) - 1:
            base = Path(manifest_out)
            manifest_out = str(base.with_name(
                f"{base.stem}.{experiment_id}{base.suffix}"))
        outcome = run_experiment(experiment_id, seed=args.seed, scale=args.scale,
                                 checkpoint_dir=args.checkpoint_dir,
                                 manifest_out=manifest_out,
                                 supervisor=supervisor)
        outcomes.append(outcome)
        print(outcome.render(include_plots=not args.no_plots))
        print()
        if not outcome.passed:
            status = 1
    if len(outcomes) > 1:
        print(summarize(outcomes))
    return status


def _cmd_export_counts(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core import AutoSensConfig
    from repro.core.aggregate import save_counts
    from repro.core.alpha import slotted_counts
    from repro.telemetry import read_csv, read_jsonl

    path = Path(args.logs)
    logs = read_csv(path) if path.suffix == ".csv" else read_jsonl(path)
    sliced = logs.where(action=args.action, user_class=args.user_class)
    if sliced.is_empty:
        print("the requested slice is empty", file=sys.stderr)
        return 2
    config = AutoSensConfig(seed=args.seed, slot_scheme=args.scheme)
    counts = slotted_counts(
        sliced, config.bins(), scheme=args.scheme,
        n_unbiased_samples=int(np.ceil(config.unbiased_oversample * len(sliced))),
        rng=args.seed,
        n_shards=args.u_shards,
        executor="process" if args.u_shards > 1 else None,
    )
    save_counts(counts, args.out)
    print(f"wrote sufficient statistics for {len(sliced)} actions "
          f"({counts.slot_ids.size} slots x {counts.bins.count} bins) to {args.out}")
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    from repro.telemetry import quality_report
    from repro.viz.table import format_table

    path = Path(args.logs)
    logs = _read_logs(path, args)
    report = quality_report(logs)
    print(format_table(["metric", "value"], report.rows()))
    for flag in report.flags:
        print(f"[{flag.severity.upper()}] {flag.message}")
    if not report.flags:
        print("no quality concerns detected")
    return 0 if report.ok else 1


def _cmd_preflight(args: argparse.Namespace) -> int:
    from repro.core.preflight import preflight
    from repro.viz.table import format_table

    path = Path(args.logs)
    logs = _read_logs(path, args)
    _report_ingest(logs)
    sliced = logs.where(action=args.action, user_class=args.user_class)
    if sliced.is_empty:
        print("the requested slice is empty", file=sys.stderr)
        return 2
    report = preflight(sliced)
    print(format_table(["check", "result"], report.rows()))
    print("recommendations:")
    for recommendation in report.recommendations:
        print(f"  - {recommendation}")
    return 0 if report.ready else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    import json as _json

    from repro.obs import load_manifest, manifest_rows
    from repro.viz.table import format_table

    manifest = load_manifest(args.manifest)
    rows = manifest_rows(manifest)
    if getattr(args, "format", "table") == "json":
        print(_json.dumps([[field, value] for field, value in rows],
                          sort_keys=False, default=str))
    else:
        print(format_table(["field", "value"], rows))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.obs.diff import DEFAULT_CURVE_TOL, DEFAULT_REL_TOL

    report = obs.diff_paths(
        args.a, args.b,
        rel_tol=args.rel_tol if args.rel_tol is not None else DEFAULT_REL_TOL,
        curve_tol=(args.curve_tol if args.curve_tol is not None
                   else DEFAULT_CURVE_TOL),
    )
    print(obs.render_diff(report, show_unchanged=args.show_unchanged))
    if args.out:
        obs.write_diff(report, args.out)
        print(f"diff written to {args.out}", file=sys.stderr)
    return obs.diff_exit_code(report)


def _resolve_doctor_source(run: Path):
    """A health report from a run dir, a manifest file, or a health file."""
    import json as _json

    from repro.obs import load_health_report, load_manifest

    if run.is_dir():
        candidates = ([run / "manifest.json"]
                      + sorted(run.glob("*manifest*.json"))
                      + sorted(run.glob("*health*.json")))
        for candidate in candidates:
            if candidate.exists():
                run = candidate
                break
        else:
            raise SchemaError(
                f"{run} holds no manifest.json or health report to diagnose")
    try:
        payload = _json.loads(run.read_text(encoding="utf-8"))
    except (OSError, _json.JSONDecodeError) as exc:
        raise SchemaError(f"cannot read {run}: {exc}") from exc
    if isinstance(payload, dict) and "verdict" in payload and "findings" in payload:
        return load_health_report(payload), None
    manifest = load_manifest(run)
    health = manifest.get("health")
    if not isinstance(health, dict):
        raise SchemaError(
            f"{run} carries no health report; rerun the experiment with an "
            "observability flag (e.g. --manifest-out) so probes run, or "
            "pass a --health-out artifact")
    return load_health_report(health), manifest


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.viz.table import format_table

    report, manifest = _resolve_doctor_source(Path(args.run))
    if manifest is not None:
        print(f"run {manifest.get('run_id', '?')} "
              f"({manifest.get('experiment_id', '?')}, "
              f"seed {manifest.get('seed', '?')})")
    counts = report.counts()
    print(f"verdict: {report.verdict}  "
          f"(ok={counts['ok']} warn={counts['warn']} fail={counts['fail']})")
    stage_rows = [[stage, verdict] for stage, verdict in
                  sorted(report.stages.items())]
    if stage_rows:
        print(format_table(["stage", "verdict"], stage_rows))
    shown = report.worst_findings(args.max_findings)
    interesting = [f for f in shown if f.get("severity") != "ok"]
    for finding in interesting:
        print(f"[{finding.get('severity', '?').upper()}] "
              f"{finding.get('stage', '?')}/{finding.get('probe', '?')}: "
              f"{finding.get('message', '')}")
    if not interesting:
        print("no warnings or failures; all probes within thresholds")
    hidden = len(report.findings) - len(shown)
    if hidden > 0:
        print(f"({hidden} more findings not shown; raise --max-findings)")
    if args.strict and report.verdict != "ok":
        return 1
    return report.exit_code


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.analysis.recovery import RECOVERY_FIXTURES, run_recovery_suite
    from repro.viz.table import format_table

    names = args.fixtures or sorted(RECOVERY_FIXTURES)
    unknown = [n for n in names if n not in RECOVERY_FIXTURES]
    if unknown:
        print(f"unknown fixture(s) {', '.join(unknown)}; "
              f"known: {', '.join(sorted(RECOVERY_FIXTURES))}", file=sys.stderr)
        return 2
    if args.baseline_dir and not args.out_dir:
        print("--baseline-dir requires --out-dir (the diff needs the "
              "candidate curve artifacts on disk)", file=sys.stderr)
        return 2

    outcomes = run_recovery_suite(
        names, seed=args.seed, scale=args.scale, executor=args.executor,
        out_dir=args.out_dir,
    )
    rows = []
    for name in names:
        outcome = outcomes[name]
        flagged = sorted({f["probe"] for f in outcome.regime
                          if f.get("severity") != "ok"})
        rows.append([
            name, outcome.verdict,
            f"{outcome.max_abs_nlp_diff:.4f}", f"{outcome.tolerance:g}",
            ", ".join(flagged) or "-",
        ])
    print(format_table(
        ["fixture", "verdict", "max |dNLP|", "tol", "regime flags"], rows))

    biased = [n for n in names if not outcomes[n].gate_passed]
    drifted: List[str] = []
    if args.baseline_dir:
        import repro.obs as obs
        from repro.obs.diff import DEFAULT_CURVE_TOL

        baseline_dir = Path(args.baseline_dir)
        out_dir = Path(args.out_dir)
        for name in names:
            baseline = baseline_dir / f"{name}.curve.json"
            if not baseline.exists():
                print(f"{name}: no committed baseline at {baseline}",
                      file=sys.stderr)
                drifted.append(name)
                continue
            report = obs.diff_paths(
                baseline, out_dir / f"{name}.curve.json",
                curve_tol=(args.curve_tol if args.curve_tol is not None
                           else DEFAULT_CURVE_TOL),
            )
            if obs.diff_exit_code(report) != 0:
                summary = report["summary"]
                print(f"{name}: curve drifted from baseline "
                      f"({summary['regressed']} regressed, "
                      f"{summary['added'] + summary['removed']} "
                      f"added/removed)", file=sys.stderr)
                drifted.append(name)

    if biased:
        print(f"recovery gate: FAIL — silent bias in {', '.join(biased)}")
        return 1
    if drifted:
        print(f"recovery gate: FAIL — baseline drift in {', '.join(drifted)}")
        return 1
    print(f"recovery gate: PASS ({len(names)} fixture(s); no silent bias"
          + (", no baseline drift)" if args.baseline_dir else ")"))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis.sensitivity import (
        DEFAULT_SENSITIVITY_NAMES,
        SENSITIVITY_FIXTURES,
        run_sensitivity_suite,
    )
    from repro.viz.table import format_table
    from repro.workload.scenarios import SCENARIOS

    names = args.fixtures or list(DEFAULT_SENSITIVITY_NAMES)
    unknown = [n for n in names if n not in SENSITIVITY_FIXTURES]
    if unknown:
        print(f"unknown fixture(s) {', '.join(unknown)}; "
              f"known: {', '.join(sorted(SENSITIVITY_FIXTURES))}",
              file=sys.stderr)
        return 2
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; "
              f"known: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    if args.baseline_dir and not args.out_dir:
        print("--baseline-dir requires --out-dir (the diff needs the "
              "candidate frontier artifacts on disk)", file=sys.stderr)
        return 2

    scale = "smoke" if args.smoke else args.scale
    outcomes = run_sensitivity_suite(
        names, scenario=args.scenario, seed=args.seed, scale=scale,
        executor=args.executor, out_dir=args.out_dir,
    )
    rows = []
    for name in names:
        outcome = outcomes[name]
        for cell in outcome.cells:
            linf = cell.get("bias_linf")
            rows.append([
                name, f"{cell['level']:g}", cell["verdict"],
                "-" if linf is None else f"{linf:.4f}",
                f"{outcome.tolerance:g}",
                cell["error"] or "-",
            ])
    print(format_table(
        ["fixture", "level", "verdict", "|bias|inf", "tol", "error"], rows))

    biased = [n for n in names if not outcomes[n].gate_passed]
    drifted: List[str] = []
    if args.baseline_dir:
        import repro.obs as obs
        from repro.obs.diff import DEFAULT_CURVE_TOL

        baseline_dir = Path(args.baseline_dir)
        out_dir = Path(args.out_dir)
        for name in names:
            baseline = baseline_dir / f"{name}.frontier.json"
            if not baseline.exists():
                print(f"{name}: no committed baseline at {baseline}",
                      file=sys.stderr)
                drifted.append(name)
                continue
            report = obs.diff_paths(
                baseline, out_dir / f"{name}.frontier.json",
                curve_tol=(args.curve_tol if args.curve_tol is not None
                           else DEFAULT_CURVE_TOL),
            )
            if obs.diff_exit_code(report) != 0:
                summary = report["summary"]
                print(f"{name}: frontier drifted from baseline "
                      f"({summary['regressed']} regressed, "
                      f"{summary['added'] + summary['removed']} "
                      f"added/removed)", file=sys.stderr)
                drifted.append(name)

    if biased:
        print(f"sensitivity gate: FAIL — silent bias in {', '.join(biased)}")
        return 1
    if drifted:
        print("sensitivity gate: FAIL — baseline drift in "
              f"{', '.join(drifted)}")
        return 1
    print(f"sensitivity gate: PASS ({len(names)} fixture(s); no silent bias"
          + (", no baseline drift)" if args.baseline_dir else ")"))
    return 0


def _fetch_progress(target: str) -> dict:
    """One progress snapshot from a live endpoint or a recorded run dir."""
    import json as _json
    import urllib.error
    import urllib.request

    path = Path(target)
    if path.is_dir():
        progress = path / "progress.json"
        if not progress.is_file():
            # Runs recorded without --serve-obs persist no progress.json;
            # degrade to a manifest-only summary instead of erroring.
            manifest_path = path / "manifest.json"
            if manifest_path.is_file():
                from repro.obs.progress import snapshot_from_manifest
                try:
                    manifest = _json.loads(
                        manifest_path.read_text(encoding="utf-8"))
                except (OSError, _json.JSONDecodeError) as exc:
                    raise SchemaError(
                        f"cannot read {manifest_path}: {exc}") from exc
                return snapshot_from_manifest(manifest)
            raise SchemaError(f"{path} holds no progress.json or "
                              "manifest.json (is it a recorded run dir?)")
        try:
            return _json.loads(progress.read_text(encoding="utf-8"))
        except (OSError, _json.JSONDecodeError) as exc:
            raise SchemaError(f"cannot read {progress}: {exc}") from exc
    url = target if target.startswith("http") else f"http://{target}"
    try:
        with urllib.request.urlopen(f"{url}/progress", timeout=5) as response:
            return _json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ConfigError(
            f"cannot reach obs server at {url}: {exc} "
            "(is the run started with --serve-obs?)") from exc


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.progress import render_progress

    live = not Path(args.target).is_dir()
    while True:
        snapshot = _fetch_progress(args.target)
        frame = render_progress(snapshot, source=args.target)
        if args.once or not live:
            print(frame)
            return 0
        # In-place refresh: clear screen, home cursor, draw the frame.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        if snapshot.get("state") != "running":
            return 0
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


def _resolve_run_dir(registry, selector: str) -> Path:
    entry = registry.find(selector)
    if entry is None:
        raise ConfigError(
            f"no recorded run matches {selector!r} in {registry.runs_dir} "
            "(see 'autosens runs ls')")
    run_dir = registry.run_path(entry)
    if not run_dir.is_dir():
        raise SchemaError(f"recorded run directory {run_dir} is missing")
    return run_dir


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.diff import DEFAULT_CURVE_TOL, DEFAULT_REL_TOL
    from repro.obs.registry import (
        RunRegistry,
        render_runs_table,
        render_trend,
        trend_exit_code,
    )

    registry = RunRegistry(args.runs_dir)
    rel_tol = (getattr(args, "rel_tol", None)
               if getattr(args, "rel_tol", None) is not None
               else DEFAULT_REL_TOL)
    curve_tol = (getattr(args, "curve_tol", None)
                 if getattr(args, "curve_tol", None) is not None
                 else DEFAULT_CURVE_TOL)
    if args.runs_command == "ls":
        print(render_runs_table(registry.entries()))
        return 0
    if args.runs_command == "show":
        import repro.obs as obs
        from repro.viz.table import format_table

        entry = registry.find(args.run)
        if entry is None:
            raise ConfigError(
                f"no recorded run matches {args.run!r} in {registry.runs_dir} "
                "(see 'autosens runs ls')")
        for key in ("seq", "run_id", "command", "seed", "deterministic",
                    "verdict", "wall_s", "created_at", "dir"):
            if key in entry:
                print(f"{key}: {entry[key]}")
        manifest_path = registry.run_path(entry) / "manifest.json"
        if manifest_path.is_file():
            manifest = obs.load_manifest(manifest_path)
            print(format_table(["field", "value"],
                               obs.manifest_rows(manifest)))
        return 0
    if args.runs_command == "diff":
        import repro.obs as obs

        report = obs.diff_paths(
            _resolve_run_dir(registry, args.a),
            _resolve_run_dir(registry, args.b),
            rel_tol=rel_tol, curve_tol=curve_tol)
        print(obs.render_diff(report))
        return obs.diff_exit_code(report)
    # trend
    reports = registry.trend(last=args.last, rel_tol=rel_tol,
                             curve_tol=curve_tol)
    print(render_trend(reports))
    return trend_exit_code(reports)


def _cmd_watch(args: argparse.Namespace) -> int:
    """Fleet surveillance: baselines + drift + SLO verdicts over a registry.

    Exit codes: 0 when every SLO is met (always 0 without ``--check``
    unless evaluation itself fails), 1 on a breach under ``--check`` or
    ``--follow``, 2 for a missing/empty registry, 3 for a malformed SLO
    config — the same taxonomy as every other command.
    """
    import time

    from repro.obs.registry import RunRegistry
    from repro.obs.watch import (
        WatchConfigError,
        build_watch_report,
        load_slo_config,
        render_watch,
        watch_exit_code,
        write_watch_artifact,
    )

    registry = RunRegistry(args.runs_dir)
    if not registry.index_path.is_file():
        raise ConfigError(
            f"no run registry at {args.runs_dir} (missing index.jsonl — "
            "record runs with --runs-dir first)")
    try:
        slos = load_slo_config(args.slo)
    except WatchConfigError as exc:
        raise SchemaError(str(exc)) from exc

    def evaluate() -> dict:
        try:
            return build_watch_report(
                registry, slos=slos, last=args.last,
                executor=args.executor)
        except WatchConfigError as exc:
            raise ConfigError(str(exc)) from exc

    report = evaluate()
    print(render_watch(report))
    if args.out_dir:
        out = Path(args.out_dir)
        for name in ("baseline", "trend", "slo"):
            write_watch_artifact(report[name], out / f"{name}.json")
        print(f"watch artifacts written to {out}", file=sys.stderr)
    if not args.follow:
        return watch_exit_code(report) if args.check else 0
    seen = len(registry.entries())
    polls = 1
    status = watch_exit_code(report)
    while args.max_polls <= 0 or polls < args.max_polls:
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            break
        polls += 1
        n = len(registry.entries())
        if n == seen:
            continue
        seen = n
        report = evaluate()
        print()
        print(render_watch(report))
        status = watch_exit_code(report)
    return status if args.check else 0


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.analysis import EXPERIMENTS
    from repro.workload.scenarios import SCENARIOS

    print("scenarios:")
    for name, builder in SCENARIOS.items():
        doc = (builder.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:20s} {doc}")
    print("experiments:")
    for name, fn in EXPERIMENTS.items():
        doc = (getattr(fn, "__doc__", "") or "").strip().splitlines()
        print(f"  {name:20s} {doc[0] if doc else ''}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status.

    Library errors are not tracebacks to the end user: every
    :class:`~repro.errors.ReproError` becomes a one-line message on stderr
    and a taxonomy-specific exit code (see the module docstring).
    """
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
        "experiment": _cmd_experiment,
        "export-counts": _cmd_export_counts,
        "quality": _cmd_quality,
        "preflight": _cmd_preflight,
        "obs": _cmd_obs,
        "doctor": _cmd_doctor,
        "recover": _cmd_recover,
        "sensitivity": _cmd_sensitivity,
        "top": _cmd_top,
        "runs": _cmd_runs,
        "watch": _cmd_watch,
        "list": _cmd_list,
    }
    observing = _configure_obs(args)
    services: dict = {}
    status = 1
    try:
        if observing:
            services = _start_obs_services(args)
        status = handlers[args.command](args)
        return status
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = _exit_code_for(exc)
        return status
    finally:
        if observing:
            import repro.obs as obs

            try:
                _finalize_obs_services(args, services, status)
                _export_obs(args)
            finally:
                obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
