"""Cross-slice parallel execution for the analysis layer.

The AutoSens sweeps (``curves_by_*``), the bootstrap uncertainty bands, the
experiment registry and the workload generator all fan out over independent
work items. :mod:`repro.parallel` gives them one executor protocol with
interchangeable backends (serial, process pool) plus deterministic per-task
seeding, with the invariant that **every backend produces bit-identical
results to the serial reference**.
"""

from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.parallel.seeding import task_seeds, task_streams

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "resolve_executor",
    "task_seeds",
    "task_streams",
]
