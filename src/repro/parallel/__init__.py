"""Cross-slice parallel execution for the analysis layer.

The AutoSens sweeps (``curves_by_*``), the bootstrap uncertainty bands, the
experiment registry and the workload generator all fan out over independent
work items. :mod:`repro.parallel` gives them one executor protocol with
interchangeable backends (serial, process pool) plus deterministic per-task
seeding, with the invariant that **every backend produces bit-identical
results to the serial reference**.

The fault-tolerant layer keeps that invariant under partial failure:
:class:`RetryPolicy` adds exponential backoff and per-task timeouts,
:class:`ProcessExecutor` survives worker crashes by re-executing lost
chunks serially, :class:`ResilientExecutor` composes retry + crash
fallback + checkpointing over any backend, and
:class:`CheckpointJournal` makes interrupted sweeps resumable.
"""

from repro.parallel.checkpoint import CheckpointJournal
from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.parallel.resilient import ResilientExecutor
from repro.parallel.retry import RetryPolicy, call_with_retry, is_retryable
from repro.parallel.seeding import task_seeds, task_streams

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ResilientExecutor",
    "RetryPolicy",
    "CheckpointJournal",
    "call_with_retry",
    "is_retryable",
    "resolve_executor",
    "task_seeds",
    "task_streams",
]
