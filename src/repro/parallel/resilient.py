"""A fault-tolerant wrapper around any executor backend.

:class:`ResilientExecutor` composes three orthogonal behaviors on top of an
inner executor's ``map_ordered``:

1. **Checkpointing** — with a :class:`~repro.parallel.checkpoint.CheckpointJournal`
   attached, every completed task result is journaled *as it finishes*
   (tasks are wrapped in a picklable journaling shim, so process workers
   checkpoint too); a re-run serves finished tasks from disk and only
   executes the remainder, even when the previous run died mid-sweep.
2. **Crash recovery** — if the inner backend fails with an infrastructure
   error (a crashed worker, a broken pool, a timeout), the missing tasks
   are re-executed on the in-process serial path. Tasks are pure in their
   payloads, so the recomputed results are bit-identical.
3. **Retries** — each serial re-execution runs under a
   :class:`~repro.parallel.retry.RetryPolicy`; exhausting it raises
   :class:`~repro.errors.TaskFailedError` with the task name, attempt
   count and last cause.

A :class:`~repro.runtime.breaker.CircuitBreaker` may additionally guard
the serial recovery path: once recoveries keep failing the breaker opens
and the executor stops feeding retries into a known-bad dependency,
raising :class:`~repro.errors.CircuitOpenError` instead. An ambient
:class:`~repro.runtime.deadline.Deadline` bounds the recovery loop at
every task boundary.

Determinism is preserved throughout: results always come back in input
order, and which backend (or journal) produced a result is unobservable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence

import repro.obs as obs
from repro.parallel.checkpoint import CheckpointJournal
from repro.parallel.executor import Executor, SerialExecutor, _task_name
from repro.parallel.retry import RetryPolicy, call_with_retry, is_retryable
from repro.runtime.deadline import check_deadline

__all__ = ["ResilientExecutor"]

_PENDING = object()


def _task_key(checkpoint: CheckpointJournal, fn: Callable[[Any], Any], item: Any) -> str:
    """Content hash of one task's identity (function + payload)."""
    name = getattr(fn, "__qualname__", repr(fn))
    module = getattr(fn, "__module__", "")
    return checkpoint.key_for(f"{module}.{name}", item)


class _Journaled:
    """Picklable shim: run the task, journal its result, return it.

    Keys are derived from the *wrapped* function, so a resumed run (which
    wraps the same function again) finds the same entries. Journaling
    happens inside the task itself — in a process worker that means the
    checkpoint lands on disk the moment the task finishes, so a run killed
    mid-sweep still leaves its completed tasks behind.
    """

    def __init__(self, fn: Callable[[Any], Any], checkpoint: CheckpointJournal) -> None:
        self.fn = fn
        self.checkpoint = checkpoint
        # Mirror the wrapped function's identity so span keys (derived from
        # the qualname) are identical whether a task runs wrapped on a cold
        # run or is re-keyed on a resumed one.
        self.__qualname__ = getattr(fn, "__qualname__", type(fn).__name__)
        self.__module__ = getattr(fn, "__module__", "")

    def __call__(self, item: Any) -> Any:
        value = self.fn(item)
        self.checkpoint.put(_task_key(self.checkpoint, self.fn, item), value)
        return value


class ResilientExecutor:
    """Wrap ``inner`` with retry, crash-fallback and checkpoint semantics."""

    def __init__(
        self,
        inner: Optional[Executor] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[CheckpointJournal] = None,
        sleep: Callable[[float], None] = time.sleep,
        breaker: Optional[Any] = None,
    ) -> None:
        self.inner = inner if inner is not None else SerialExecutor()
        self.retry = retry or RetryPolicy()
        self.checkpoint = checkpoint
        self._sleep = sleep
        self.breaker = breaker

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        items = list(items)
        if not items:
            return []
        results: List[Any] = [_PENDING] * len(items)

        # Serve journaled results first; only the rest run.
        pending: List[int] = []
        work_fn: Callable[[Any], Any] = fn
        if self.checkpoint is not None:
            traced = obs.enabled()
            name = _task_name(fn)
            work_fn = _Journaled(fn, self.checkpoint)
            for i, item in enumerate(items):
                hit, value = self.checkpoint.fetch(_task_key(self.checkpoint, fn, item))
                if hit:
                    results[i] = value
                    obs.inc("autosens_checkpoint_total", outcome="hit")
                    if traced:
                        # A zero-work span with the task's canonical key, so
                        # a resumed run's trace shows the cached task under
                        # the *same* span id the cold run used.
                        with obs.span("task", key=f"{name}[{i}]", task=name,
                                      index=i, cached=True):
                            pass
                else:
                    pending.append(i)
                    obs.inc("autosens_checkpoint_total", outcome="miss")
        else:
            pending = list(range(len(items)))

        if pending:
            try:
                fresh = self.inner.map_ordered(
                    work_fn, [items[i] for i in pending], chunk_size=chunk_size
                )
            except BaseException as exc:
                if not is_retryable(exc):
                    raise
                # The whole backend failed (e.g. BrokenProcessPool killed
                # every in-flight future). Recover task by task on the
                # serial path — purity makes the results bit-identical.
                # Tasks the dying pool did finish are already journaled, so
                # check the journal before recomputing each one.
                obs.inc("autosens_crash_recoveries_total",
                        error=type(exc).__name__)
                fresh = []
                for i in pending:
                    check_deadline(f"resilient recovery task[{i}]")
                    if self.checkpoint is not None:
                        hit, value = self.checkpoint.fetch(
                            _task_key(self.checkpoint, fn, items[i])
                        )
                        if hit:
                            fresh.append(value)
                            continue
                    fresh.append(call_with_retry(
                        work_fn, items[i],
                        policy=self.retry,
                        task_name=f"task[{i}]",
                        sleep=self._sleep,
                        breaker=self.breaker,
                    ))
            for i, value in zip(pending, fresh):
                results[i] = value
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResilientExecutor(inner={self.inner!r}, retry={self.retry!r}, "
                f"checkpoint={'on' if self.checkpoint else 'off'})")
