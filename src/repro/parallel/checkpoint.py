"""Disk-backed checkpoint journal for resumable fan-outs.

Completed task results are journaled as individual pickle files keyed by a
content hash of ``(namespace, task function, task payload)``. A re-run of
the same sweep finds its finished tasks in the journal and skips straight
to the missing ones — and because every task derives its randomness purely
from its payload (see :mod:`repro.parallel.seeding`), a resumed run is
bit-identical to an uninterrupted one.

Writes are atomic (tmp file + rename) so a crash mid-write never leaves a
truncated checkpoint behind; an unreadable checkpoint is treated as absent
and recomputed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, List, Tuple, Union

__all__ = ["CheckpointJournal"]

#: Fixed pickle protocol so keys are stable across interpreter runs.
_PROTOCOL = 4

_MISSING = object()


class CheckpointJournal:
    """A directory of content-addressed task results."""

    def __init__(self, directory: Union[str, Path], namespace: str = "") -> None:
        self.directory = Path(directory)
        self.namespace = namespace
        self.directory.mkdir(parents=True, exist_ok=True)

    def key_for(self, *parts: Any) -> str:
        """Stable content hash of the task identity."""
        payload = pickle.dumps((self.namespace,) + parts, protocol=_PROTOCOL)
        return hashlib.sha256(payload).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def get(self, key: str, default: Any = None) -> Any:
        """The journaled result, or ``default`` if absent/unreadable."""
        path = self._path(key)
        if not path.exists():
            return default
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # A torn or stale checkpoint is as good as no checkpoint.
            return default

    def fetch(self, key: str) -> Tuple[bool, Any]:
        """(hit, value) — distinguishes a journaled ``None`` from a miss."""
        value = self.get(key, _MISSING)
        if value is _MISSING:
            return False, None
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Atomically journal one result."""
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=_PROTOCOL)
        os.replace(tmp, path)

    def keys(self) -> List[str]:
        return sorted(p.stem for p in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every checkpoint; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CheckpointJournal({str(self.directory)!r}, "
                f"namespace={self.namespace!r}, entries={len(self)})")
