"""Retry-with-backoff and per-task timeout semantics.

A :class:`RetryPolicy` says how often to re-attempt a failed task and how
long to wait between attempts (exponential backoff, capped). Delays are
deterministic by default; the opt-in ``jitter="decorrelated"`` mode adds
*seed-derived* decorrelated jitter — still a pure function of the policy's
``jitter_seed``, so reproducibility survives while fleet-wide retries stop
synchronizing into thundering herds. The sleep function is injectable so
tests run instantly.

Data errors (:class:`~repro.errors.ReproError`) are *not* retried by
default: a slice that is too sparse stays too sparse, and retrying it only
burns time. The retryable set targets infrastructure faults — crashed
workers, broken pools, timeouts, transient OS errors.

A :class:`~repro.runtime.breaker.CircuitBreaker` can be threaded through
:func:`call_with_retry`: attempts route through the breaker, so once the
circuit opens the retry loop stops immediately with
:class:`~repro.errors.CircuitOpenError` instead of burning its remaining
attempts into a known-bad dependency.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type

import repro.obs as obs
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    ReproError,
    TaskFailedError,
)

__all__ = ["RetryPolicy", "call_with_retry", "is_retryable", "JITTER_MODES"]

#: Accepted ``RetryPolicy.jitter`` values.
JITTER_MODES = ("none", "decorrelated")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a task and how long to back off.

    ``timeout_s`` is a *per-attempt* budget enforced by executors that can
    bound a task (the process backend); in-process callers cannot preempt
    a running function, so they ignore it. ``max_attempts=1`` means "no
    retries" — the first failure is final.

    ``jitter="decorrelated"`` switches :meth:`delays` to the decorrelated
    jitter scheme (each delay drawn uniformly from ``[base, 3 × previous]``,
    capped): retries across a fleet de-synchronize, yet the sequence is a
    pure function of ``jitter_seed`` — identical seeds give identical delay
    sequences, so chaos tests stay reproducible.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    timeout_s: Optional[float] = None
    jitter: str = "none"
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ConfigError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.jitter not in JITTER_MODES:
            raise ConfigError(
                f"jitter must be one of {JITTER_MODES}, got {self.jitter!r}"
            )

    def delays(self) -> Iterator[float]:
        """The backoff sequence, one delay per retry.

        Deterministic capped-exponential by default; under
        ``jitter="decorrelated"`` each delay is drawn from a private
        ``random.Random(jitter_seed)`` stream, so the sequence is
        reproducible yet uncorrelated across differently-seeded policies.
        """
        if self.jitter == "decorrelated":
            rng = random.Random(self.jitter_seed)
            delay = self.backoff_base_s
            for _ in range(self.max_attempts - 1):
                delay = min(
                    self.max_backoff_s,
                    rng.uniform(self.backoff_base_s, max(
                        self.backoff_base_s, delay * 3.0)),
                )
                yield delay
            return
        delay = self.backoff_base_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_backoff_s)
            delay *= self.backoff_factor


#: Exception types worth a retry: infrastructure, not data.
_RETRYABLE: Tuple[Type[BaseException], ...] = (OSError, TimeoutError)


def is_retryable(exc: BaseException) -> bool:
    """Should this failure be re-attempted?

    Library data errors are deterministic — never retried. Everything that
    smells like infrastructure (broken pools inherit from OSError or
    RuntimeError raised by concurrent.futures, timeouts, pickling hiccups
    under memory pressure) is.
    """
    if isinstance(exc, ReproError):
        return False
    if isinstance(exc, _RETRYABLE):
        return True
    try:  # BrokenExecutor covers BrokenProcessPool
        from concurrent.futures import BrokenExecutor

        if isinstance(exc, BrokenExecutor):
            return True
    except ImportError:  # pragma: no cover - always available on 3.8+
        pass
    return False


def call_with_retry(
    fn: Callable[..., Any],
    *args: Any,
    policy: Optional[RetryPolicy] = None,
    task_name: str = "task",
    sleep: Callable[[float], None] = time.sleep,
    retryable: Callable[[BaseException], bool] = is_retryable,
    breaker: Optional[Any] = None,
) -> Any:
    """Invoke ``fn(*args)`` under a retry policy.

    Non-retryable exceptions propagate unchanged on first occurrence.
    Retryable ones are re-attempted with backoff; once attempts are
    exhausted a :class:`~repro.errors.TaskFailedError` is raised carrying
    the task name, the attempt count and the last cause.

    ``breaker`` (a :class:`~repro.runtime.breaker.CircuitBreaker`) routes
    every attempt through the circuit: failures trip it, and once open the
    loop stops immediately with :class:`~repro.errors.CircuitOpenError`
    (never retried — the breaker already encodes "back off").
    """
    policy = policy or RetryPolicy()
    delays = policy.delays()
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            if breaker is not None:
                return breaker.call(fn, *args)
            return fn(*args)
        except CircuitOpenError:
            raise  # the breaker said stop; retrying would defeat it
        except BaseException as exc:
            if not retryable(exc):
                raise
            last = exc
            if attempt < policy.max_attempts:
                obs.inc("autosens_task_retries_total",
                        error=type(exc).__name__)
                sleep(next(delays))
    obs.inc("autosens_task_failures_total", error=type(last).__name__)
    raise TaskFailedError(task_name, policy.max_attempts, last) from last
