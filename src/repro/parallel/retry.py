"""Retry-with-backoff and per-task timeout semantics.

A :class:`RetryPolicy` says how often to re-attempt a failed task and how
long to wait between attempts (exponential backoff, capped). It is
deliberately free of randomness — deterministic delays keep the runtime's
behavior reproducible — and the sleep function is injectable so tests run
instantly.

Data errors (:class:`~repro.errors.ReproError`) are *not* retried by
default: a slice that is too sparse stays too sparse, and retrying it only
burns time. The retryable set targets infrastructure faults — crashed
workers, broken pools, timeouts, transient OS errors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type

import repro.obs as obs
from repro.errors import ConfigError, ReproError, TaskFailedError

__all__ = ["RetryPolicy", "call_with_retry", "is_retryable"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a task and how long to back off.

    ``timeout_s`` is a *per-attempt* budget enforced by executors that can
    bound a task (the process backend); in-process callers cannot preempt
    a running function, so they ignore it. ``max_attempts=1`` means "no
    retries" — the first failure is final.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ConfigError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {self.timeout_s}")

    def delays(self) -> Iterator[float]:
        """The capped exponential backoff sequence, one delay per retry."""
        delay = self.backoff_base_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_backoff_s)
            delay *= self.backoff_factor


#: Exception types worth a retry: infrastructure, not data.
_RETRYABLE: Tuple[Type[BaseException], ...] = (OSError, TimeoutError)


def is_retryable(exc: BaseException) -> bool:
    """Should this failure be re-attempted?

    Library data errors are deterministic — never retried. Everything that
    smells like infrastructure (broken pools inherit from OSError or
    RuntimeError raised by concurrent.futures, timeouts, pickling hiccups
    under memory pressure) is.
    """
    if isinstance(exc, ReproError):
        return False
    if isinstance(exc, _RETRYABLE):
        return True
    try:  # BrokenExecutor covers BrokenProcessPool
        from concurrent.futures import BrokenExecutor

        if isinstance(exc, BrokenExecutor):
            return True
    except ImportError:  # pragma: no cover - always available on 3.8+
        pass
    return False


def call_with_retry(
    fn: Callable[..., Any],
    *args: Any,
    policy: Optional[RetryPolicy] = None,
    task_name: str = "task",
    sleep: Callable[[float], None] = time.sleep,
    retryable: Callable[[BaseException], bool] = is_retryable,
) -> Any:
    """Invoke ``fn(*args)`` under a retry policy.

    Non-retryable exceptions propagate unchanged on first occurrence.
    Retryable ones are re-attempted with backoff; once attempts are
    exhausted a :class:`~repro.errors.TaskFailedError` is raised carrying
    the task name, the attempt count and the last cause.
    """
    policy = policy or RetryPolicy()
    delays = policy.delays()
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(*args)
        except BaseException as exc:
            if not retryable(exc):
                raise
            last = exc
            if attempt < policy.max_attempts:
                obs.inc("autosens_task_retries_total",
                        error=type(exc).__name__)
                sleep(next(delays))
    obs.inc("autosens_task_failures_total", error=type(last).__name__)
    raise TaskFailedError(task_name, policy.max_attempts, last) from last
