"""Deterministic per-task seed spawning.

Parallel work must not share generator state: two tasks drawing from one
``numpy.random.Generator`` would make results depend on scheduling order.
Instead, every task gets its own stream derived *purely* from
``(root seed, task name)`` through the same ``SeedSequence`` machinery as
:class:`repro.stats.rng.RngFactory` — so the serial backend, the process
backend, and a cache hit all see bit-identical randomness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.stats.rng import RngFactory

__all__ = ["task_streams", "task_seeds"]

SeedOrFactory = Union[None, int, RngFactory]


def _as_factory(root: SeedOrFactory) -> RngFactory:
    if isinstance(root, RngFactory):
        return root
    return RngFactory(root)


def task_streams(
    root: SeedOrFactory,
    name: str,
    n: int,
) -> List[np.random.Generator]:
    """``n`` independent generators for tasks ``name/0 .. name/{n-1}``.

    Pure in ``(root seed, name, index)``: any worker can re-derive its
    stream from the root seed alone, and re-running the same fan-out
    yields the same streams.
    """
    factory = _as_factory(root)
    return [factory.stream(f"{name}/{i}") for i in range(n)]


def task_seeds(root: SeedOrFactory, name: str, n: int) -> List[int]:
    """Like :func:`task_streams` but returns plain integer seeds.

    Integers travel across process boundaries cheaply; workers rebuild a
    generator with ``np.random.default_rng(seed)``.
    """
    return [
        int(stream.integers(0, 2**63 - 1))
        for stream in task_streams(root, name, n)
    ]
