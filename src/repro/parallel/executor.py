"""Executor backends: ordered, chunked parallel map over independent tasks.

Every fan-out point in the analysis layer (the ``curves_by_*`` sweeps, the
bootstrap replicates, the experiment registry, the workload generator's
candidate chunks) reduces to the same primitive: *map a pure function over
independent items and collect the results in input order*. This module
provides that primitive behind a tiny protocol so callers never care which
backend runs underneath:

- :class:`SerialExecutor` — in-process, zero overhead; the reference
  backend every other backend must match bit-for-bit.
- :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  fan-out for CPU-bound NumPy work that does not release the GIL.

Determinism is a hard requirement: results must not depend on the backend
or on scheduling order. Tasks therefore never share RNG state — each task
derives its own stream from a root seed and a stable task name (see
:mod:`repro.parallel.seeding`), and ``map_ordered`` always returns results
in input order.

The process backend is additionally *crash-tolerant*: a chunk whose worker
dies (``BrokenProcessPool``) or exceeds the retry policy's per-task timeout
is transparently re-executed on the in-process serial path — pure per-task
seeding makes the recovered results bit-identical to an undisturbed run.
Task-raised exceptions (data errors) still propagate unchanged.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Sequence, Union

import repro.obs as obs
from repro.errors import ConfigError, DeadlineExceededError
from repro.parallel.retry import RetryPolicy, call_with_retry
from repro.runtime.deadline import active_deadline, check_deadline

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "EXECUTOR_BACKENDS",
]

#: Names accepted by :func:`resolve_executor`.
EXECUTOR_BACKENDS = ("serial", "process")


class Executor(Protocol):
    """The executor protocol: an ordered map over independent items."""

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item; return results in input order.

        The first task exception propagates to the caller (remaining tasks
        may or may not run, as with the serial backend's fail-fast loop).
        """
        ...  # pragma: no cover - protocol


def _task_name(fn: Callable[[Any], Any]) -> str:
    """A stable human/span name for a task function."""
    return getattr(fn, "__qualname__", type(fn).__name__)


def _run_task_spans(fn: Callable[[Any], Any], items: Sequence[Any],
                    base: int = 0) -> List[Any]:
    """Run items with one keyed span each; the traced serial inner loop.

    Keys are ``{fn qualname}[{base + index}]`` — a pure function of the
    task's position, so the same task carries the same span id on the
    serial backend, in a process worker, and on a checkpoint resume.
    """
    name = _task_name(fn)
    out: List[Any] = []
    live = obs.events_active()
    for i, item in enumerate(items):
        check_deadline(f"task {name}[{base + i}]")
        with obs.span("task", key=f"{name}[{base + i}]", task=name,
                      index=base + i):
            out.append(fn(item))
        if live:
            obs.event("tasks", stage=name, done=1)
    return out


class SerialExecutor:
    """Run tasks inline, one after another (the reference backend)."""

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        if not obs.enabled():
            out: List[Any] = []
            for item in items:
                check_deadline("serial task")
                out.append(fn(item))
            return out
        if obs.events_active():
            obs.event("stage", stage=_task_name(fn), total=len(items),
                      backend="serial")
        return _run_task_spans(fn, items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


def _obs_spec() -> Optional[Dict[str, Any]]:
    """What a worker needs to rebuild a compatible tracer (None when off)."""
    if not obs.enabled():
        return None
    ctx = obs.current()
    return {"trace_id": ctx.tracer.trace_id,
            "deterministic": ctx.tracer.deterministic}


def _apply_chunk(payload: tuple) -> Any:
    """Top-level (picklable) helper: apply ``fn`` to one chunk of items.

    The legacy two-field payload ``(fn, chunk)`` returns a plain result
    list. The traced four-field payload ``(fn, chunk, base, obs_spec)``
    additionally runs each item under a keyed task span on a worker-local
    tracer and returns ``(results, span_records)`` so the parent can adopt
    the worker's spans. The worker tracer shares the parent's ``trace_id``
    (keyed ids match the serial run) but namespaces its path-based ids per
    chunk, so two workers' internal spans can never collide.
    """
    if len(payload) == 2:
        fn, chunk = payload
        return [fn(item) for item in chunk]
    fn, chunk, base, spec = payload
    from repro.obs import session
    from repro.obs.trace import Tracer

    tracer = Tracer(
        trace_id=spec["trace_id"],
        namespace=f"{spec['trace_id']}/chunk{base}",
        deterministic=spec["deterministic"],
    )
    with session(enabled=True, level="error",
                 deterministic=spec["deterministic"],
                 run_id=spec["trace_id"]) as ctx:
        ctx.tracer = tracer
        results = _run_task_spans(fn, chunk, base=base)
    return results, tracer.finished()


class ProcessExecutor:
    """Fan tasks out over worker processes, preserving input order.

    Items are grouped into chunks (amortizing pickling and process
    round-trips), submitted to a ``ProcessPoolExecutor``, and re-assembled
    in input order regardless of completion order. ``fn`` and the items
    must be picklable — use module-level task functions.

    ``retry`` (a :class:`~repro.parallel.retry.RetryPolicy`) bounds each
    chunk's wall-clock via ``timeout_s`` and governs the serial re-execution
    of chunks lost to worker crashes or timeouts. The default policy
    recovers crashes but applies no timeout.

    ``watchdog`` (a :class:`~repro.runtime.watchdog.Watchdog`) enables
    hung-worker supervision: every task is wrapped in a heartbeat shim and
    a worker whose heartbeat stalls is killed — breaking the pool, which
    lands the lost chunks on the same serial recovery path as a crash, so
    the requeued results stay bit-identical. The executor starts the
    watchdog thread on demand; whoever owns the watchdog stops it.

    An ambient :class:`~repro.runtime.deadline.Deadline` (see
    :func:`repro.runtime.deadline.deadline_scope`) additionally bounds
    every blocking wait on a chunk: an over-budget map raises
    :class:`~repro.errors.DeadlineExceededError` at the next chunk
    boundary instead of waiting out a stuck pool.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        watchdog: Optional[Any] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.max_workers = max_workers or max(1, os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.retry = retry or RetryPolicy()
        self.watchdog = watchdog

    def _chunks(self, items: Sequence[Any], chunk_size: Optional[int]) -> List[Sequence[Any]]:
        size = chunk_size or self.chunk_size
        if size is None:
            # Default: just enough chunks to keep every worker busy without
            # oversized pickles; at least one item per chunk.
            size = max(1, -(-len(items) // (4 * self.max_workers)))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _recover_chunk(self, fn: Callable[[Any], Any], chunk: Sequence[Any],
                       base: int = 0) -> List[Any]:
        """Re-execute a lost chunk in-process, item by item, with retries."""
        traced = obs.enabled()
        live = obs.events_active()
        out: List[Any] = []
        name = _task_name(fn)
        for i, item in enumerate(chunk):
            check_deadline(f"recovery {name}[{base + i}]")
            span = (obs.span("task", key=f"{name}[{base + i}]", task=name,
                             index=base + i, recovered=True)
                    if traced else obs.NOOP_SPAN)
            with span:
                out.append(call_with_retry(
                    fn, item, policy=self.retry, task_name=f"chunk-item[{i}]"
                ))
            if live:
                obs.event("tasks", stage=name, done=1, recovered=True)
        return out

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        items = list(items)
        if not items:
            return []
        live = obs.events_active()
        if live:
            obs.event("stage", stage=_task_name(fn), total=len(items),
                      backend="process")
        if len(items) == 1 or self.max_workers == 1:
            if not obs.enabled():
                return [fn(item) for item in items]
            return _run_task_spans(fn, items)
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        chunks = self._chunks(items, chunk_size)
        spec = _obs_spec()
        bases: List[int] = []
        base = 0
        for chunk in chunks:
            bases.append(base)
            base += len(chunk)
        timeout = self.retry.timeout_s
        deadline = active_deadline()
        work_fn = fn
        if self.watchdog is not None:
            # Heartbeat shim + supervision thread: a live-but-stuck worker
            # is killed, breaking the pool onto the serial recovery path.
            work_fn = self.watchdog.wrap(fn)
            self.watchdog.start()
        out: List[Any] = []
        recovered = False
        chunk_span = obs.span("pool_map", n_items=len(items),
                              n_chunks=len(chunks),
                              backend="process")
        pool = ProcessPoolExecutor(max_workers=min(self.max_workers, len(chunks)))
        try:
            with chunk_span:
                futures = [
                    pool.submit(
                        _apply_chunk,
                        (work_fn, chunk) if spec is None
                        else (work_fn, chunk, b, spec),
                    )
                    for chunk, b in zip(chunks, bases)
                ]
                for future, chunk, b in zip(futures, chunks, bases):  # input order
                    if deadline is not None:
                        deadline.check("pool_map")
                    wait_s = (deadline.timeout_or(timeout)
                              if deadline is not None else timeout)
                    try:
                        value = future.result(timeout=wait_s)
                        if spec is not None:
                            results, records = value
                            ctx = obs.current()
                            ctx.tracer.adopt(records,
                                             parent_id=chunk_span.span_id,
                                             tid=1 + b)
                            out.extend(results)
                        else:
                            out.extend(value)
                        if live:
                            obs.event("tasks", stage=_task_name(fn),
                                      done=len(chunk), backend="process")
                    except (BrokenProcessPool, FutureTimeout, OSError) as exc:
                        # A worker died or the chunk blew its budget. The pool
                        # may be unusable (a break fails every in-flight
                        # future), so recover this chunk serially; purity makes
                        # the result bit-identical.
                        recovered = True
                        reason = ("timeout" if isinstance(exc, FutureTimeout)
                                  else "crash" if isinstance(exc, BrokenProcessPool)
                                  else "os-error")
                        obs.inc("autosens_executor_recoveries_total",
                                reason=reason)
                        out.extend(self._recover_chunk(fn, chunk, base=b))
        finally:
            # After a timeout a worker may still be running; don't block on
            # it — drop the pool without waiting.
            pool.shutdown(wait=not recovered, cancel_futures=recovered)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(max_workers={self.max_workers})"


ExecutorSpec = Union[None, str, int, Executor]


def resolve_executor(spec: ExecutorSpec) -> Executor:
    """Turn a user-facing executor spec into an :class:`Executor`.

    ``None`` or ``"serial"`` → :class:`SerialExecutor`; ``"process"`` →
    :class:`ProcessExecutor` with default workers; an integer ``n`` →
    :class:`ProcessExecutor` with ``n`` workers; an object implementing
    ``map_ordered`` is returned as-is.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "process":
            return ProcessExecutor()
        raise ConfigError(
            f"unknown executor backend {spec!r}; pick one of {EXECUTOR_BACKENDS}"
        )
    if isinstance(spec, int):
        return ProcessExecutor(max_workers=spec)
    if hasattr(spec, "map_ordered"):
        return spec
    raise ConfigError(f"cannot interpret executor spec {spec!r}")
