"""Executor backends: ordered, chunked parallel map over independent tasks.

Every fan-out point in the analysis layer (the ``curves_by_*`` sweeps, the
bootstrap replicates, the experiment registry, the workload generator's
candidate chunks) reduces to the same primitive: *map a pure function over
independent items and collect the results in input order*. This module
provides that primitive behind a tiny protocol so callers never care which
backend runs underneath:

- :class:`SerialExecutor` — in-process, zero overhead; the reference
  backend every other backend must match bit-for-bit.
- :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  fan-out for CPU-bound NumPy work that does not release the GIL.

Determinism is a hard requirement: results must not depend on the backend
or on scheduling order. Tasks therefore never share RNG state — each task
derives its own stream from a root seed and a stable task name (see
:mod:`repro.parallel.seeding`), and ``map_ordered`` always returns results
in input order.

The process backend is additionally *crash-tolerant*: a chunk whose worker
dies (``BrokenProcessPool``) or exceeds the retry policy's per-task timeout
is transparently re-executed on the in-process serial path — pure per-task
seeding makes the recovered results bit-identical to an undisturbed run.
Task-raised exceptions (data errors) still propagate unchanged.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, List, Optional, Protocol, Sequence, Union

from repro.errors import ConfigError
from repro.parallel.retry import RetryPolicy, call_with_retry

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "EXECUTOR_BACKENDS",
]

#: Names accepted by :func:`resolve_executor`.
EXECUTOR_BACKENDS = ("serial", "process")


class Executor(Protocol):
    """The executor protocol: an ordered map over independent items."""

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item; return results in input order.

        The first task exception propagates to the caller (remaining tasks
        may or may not run, as with the serial backend's fail-fast loop).
        """
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Run tasks inline, one after another (the reference backend)."""

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


def _apply_chunk(payload: tuple) -> List[Any]:
    """Top-level (picklable) helper: apply ``fn`` to one chunk of items."""
    fn, chunk = payload
    return [fn(item) for item in chunk]


class ProcessExecutor:
    """Fan tasks out over worker processes, preserving input order.

    Items are grouped into chunks (amortizing pickling and process
    round-trips), submitted to a ``ProcessPoolExecutor``, and re-assembled
    in input order regardless of completion order. ``fn`` and the items
    must be picklable — use module-level task functions.

    ``retry`` (a :class:`~repro.parallel.retry.RetryPolicy`) bounds each
    chunk's wall-clock via ``timeout_s`` and governs the serial re-execution
    of chunks lost to worker crashes or timeouts. The default policy
    recovers crashes but applies no timeout.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.max_workers = max_workers or max(1, os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.retry = retry or RetryPolicy()

    def _chunks(self, items: Sequence[Any], chunk_size: Optional[int]) -> List[Sequence[Any]]:
        size = chunk_size or self.chunk_size
        if size is None:
            # Default: just enough chunks to keep every worker busy without
            # oversized pickles; at least one item per chunk.
            size = max(1, -(-len(items) // (4 * self.max_workers)))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _recover_chunk(self, fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
        """Re-execute a lost chunk in-process, item by item, with retries."""
        return [
            call_with_retry(fn, item, policy=self.retry, task_name=f"chunk-item[{i}]")
            for i, item in enumerate(chunk)
        ]

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1 or self.max_workers == 1:
            return [fn(item) for item in items]
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        chunks = self._chunks(items, chunk_size)
        timeout = self.retry.timeout_s
        out: List[Any] = []
        recovered = False
        pool = ProcessPoolExecutor(max_workers=min(self.max_workers, len(chunks)))
        try:
            futures = [pool.submit(_apply_chunk, (fn, chunk)) for chunk in chunks]
            for future, chunk in zip(futures, chunks):  # input order
                try:
                    out.extend(future.result(timeout=timeout))
                except (BrokenProcessPool, FutureTimeout, OSError):
                    # A worker died or the chunk blew its budget. The pool
                    # may be unusable (a break fails every in-flight
                    # future), so recover this chunk serially; purity makes
                    # the result bit-identical.
                    recovered = True
                    out.extend(self._recover_chunk(fn, chunk))
        finally:
            # After a timeout a worker may still be running; don't block on
            # it — drop the pool without waiting.
            pool.shutdown(wait=not recovered, cancel_futures=recovered)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(max_workers={self.max_workers})"


ExecutorSpec = Union[None, str, int, Executor]


def resolve_executor(spec: ExecutorSpec) -> Executor:
    """Turn a user-facing executor spec into an :class:`Executor`.

    ``None`` or ``"serial"`` → :class:`SerialExecutor`; ``"process"`` →
    :class:`ProcessExecutor` with default workers; an integer ``n`` →
    :class:`ProcessExecutor` with ``n`` workers; an object implementing
    ``map_ordered`` is returned as-is.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "process":
            return ProcessExecutor()
        raise ConfigError(
            f"unknown executor backend {spec!r}; pick one of {EXECUTOR_BACKENDS}"
        )
    if isinstance(spec, int):
        return ProcessExecutor(max_workers=spec)
    if hasattr(spec, "map_ordered"):
        return spec
    raise ConfigError(f"cannot interpret executor spec {spec!r}")
