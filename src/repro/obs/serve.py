"""Scrapeable observability server: ``/metrics``, ``/healthz``, ``/progress``.

Stdlib-only (:class:`http.server.ThreadingHTTPServer` on a daemon thread),
started by the CLI when ``--serve-obs HOST:PORT`` is passed. The server is
a pure *reader* of the active :class:`~repro.obs._runtime.ObsContext`:

``/metrics``
    Live Prometheus text from the active :class:`MetricsRegistry` (the same
    renderer behind ``--metrics-out``), with supervisor gauges refreshed
    just before each scrape.
``/healthz``
    The rolling estimator-health verdict — HTTP 200 for ``ok``/``warn``,
    503 for ``fail`` — with the full report as a JSON body.
``/progress``
    The :class:`~repro.obs.progress.ProgressTracker` snapshot as JSON
    (per-stage completed/total, EWMA throughput, ETA).
``/events``
    NDJSON tail of recent bus events; ``?n=`` bounds the count and
    ``?since=`` filters by sequence number for incremental polls.
``/slo`` and ``/trend``
    Fleet-level watch verdicts over the attached run registry (the
    ``--runs-dir`` the server was started with): ``/slo`` evaluates the
    SLO set against registry history — HTTP 200 when every SLO is met,
    503 on a breach — and ``/trend`` serves the per-series change-point
    classification. Both 404 when no registry is attached, and both
    evaluate *recorded history only* (the in-flight run is not yet an
    index entry).

Determinism contract: the server attaches one bounded
:class:`~repro.obs.events.EventSink` and one tracker to the event bus and
*never* writes to the tracer, the metrics registry (beyond the explicit
pre-scrape supervisor gauge refresh, which is itself skipped for
deterministic runs), or any RNG — artifacts from a served run are
byte-identical to an unserved one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

import repro.obs as obs
from repro.obs.events import EventSink, event_lines
from repro.obs.progress import ProgressTracker

__all__ = ["ObsServer", "parse_serve_addr"]


def parse_serve_addr(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; bare ``PORT`` binds localhost.

    Port 0 is allowed (ephemeral bind — the chosen port is reported by
    :attr:`ObsServer.address`), which is what tests use.
    """
    spec = spec.strip()
    host, sep, port_s = spec.rpartition(":")
    if not sep:
        host, port_s = "127.0.0.1", spec
    host = host or "127.0.0.1"
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"invalid --serve-obs address {spec!r}: "
                         "expected HOST:PORT") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid --serve-obs port {port}")
    return host, port


def _refresh_supervisor_gauges() -> None:
    """Re-export live supervisor gauges so a scrape sees current values.

    Lazy import: the runtime package imports :mod:`repro.obs`, so the
    dependency must point this way only at call time. Deterministic runs
    skip the refresh — their gauge values are part of the artifact
    contract and must not vary with scrape timing.
    """
    if obs.current().deterministic:
        return
    try:
        from repro.runtime.supervisor import active_supervisor
    except Exception:
        return
    supervisor = active_supervisor()
    if supervisor is not None:
        try:
            supervisor.export_gauges()
        except Exception:
            pass


class _Handler(BaseHTTPRequestHandler):
    server_version = "autosens-obs/1"

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes must not spam the run's stderr.
        pass

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._serve_metrics()
            elif route == "/healthz":
                self._serve_healthz()
            elif route == "/progress":
                self._serve_progress()
            elif route == "/events":
                self._serve_events(parse_qs(parsed.query))
            elif route == "/slo":
                self._serve_slo()
            elif route == "/trend":
                self._serve_trend()
            elif route == "/":
                self._serve_index()
            else:
                self._send(404, "text/plain; charset=utf-8",
                           b"not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # a scrape must never kill the run
            try:
                self._send(500, "text/plain; charset=utf-8",
                           f"error: {exc}\n".encode("utf-8"))
            except Exception:
                pass

    # -- endpoints -----------------------------------------------------------

    def _serve_index(self) -> None:
        body = ("autosens obs server\n"
                "endpoints: /metrics /healthz /progress /events "
                "/slo /trend\n")
        self._send(200, "text/plain; charset=utf-8", body.encode("utf-8"))

    def _watch_report(self) -> Optional[Dict[str, Any]]:
        runs_dir = getattr(self.server, "obs_runs_dir", None)
        if not runs_dir:
            return None
        # Lazy import: watch pulls in the registry, which most served
        # runs never need; a scrape pays the cost, not startup.
        from repro.obs.registry import RunRegistry
        from repro.obs.watch import (
            WATCH_SCHEMA,
            WatchConfigError,
            build_watch_report,
            load_slo_config,
        )
        slo_path = getattr(self.server, "obs_slo_path", None)
        try:
            return build_watch_report(
                RunRegistry(runs_dir),
                slos=load_slo_config(slo_path) if slo_path else None)
        except WatchConfigError:
            # A registry with no recorded history yet (e.g. scraped during
            # the fleet's very first run) trivially meets every SLO.
            empty = {"schema": WATCH_SCHEMA, "n_runs": 0,
                     "note": "empty-registry"}
            return {
                "n_runs": 0,
                "slo": {**empty, "kind": "watch-slo", "slos": [],
                        "breaches": [], "met": True},
                "trend": {**empty, "kind": "watch-trend", "series": {}},
            }

    def _serve_slo(self) -> None:
        report = self._watch_report()
        if report is None:
            self._send(404, "text/plain; charset=utf-8",
                       b"no run registry attached (start with --runs-dir)\n")
            return
        payload = report["slo"]
        status = 200 if payload.get("met") else 503
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        self._send(status, "application/json", body.encode("utf-8"))

    def _serve_trend(self) -> None:
        report = self._watch_report()
        if report is None:
            self._send(404, "text/plain; charset=utf-8",
                       b"no run registry attached (start with --runs-dir)\n")
            return
        body = json.dumps(report["trend"], sort_keys=True,
                          separators=(",", ":")) + "\n"
        self._send(200, "application/json", body.encode("utf-8"))

    def _serve_metrics(self) -> None:
        _refresh_supervisor_gauges()
        registry = obs.metrics()
        # The pipeline thread may add a series mid-render; rendering is
        # read-only, so just retry on the dict-mutation race.
        text = ""
        for _ in range(5):
            try:
                text = registry.render_prometheus()
                break
            except RuntimeError:
                continue
        self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                   text.encode("utf-8"))

    def _serve_healthz(self) -> None:
        report = obs.build_health_report()
        status = 503 if report.verdict == "fail" else 200
        body = json.dumps(report.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        self._send(status, "application/json", body.encode("utf-8"))

    def _serve_progress(self) -> None:
        tracker: ProgressTracker = self.server.obs_tracker  # type: ignore[attr-defined]
        snapshot = tracker.snapshot()
        snapshot["events"]["dropped"] = self.server.obs_sink.dropped  # type: ignore[attr-defined]
        body = json.dumps(snapshot, sort_keys=True) + "\n"
        self._send(200, "application/json", body.encode("utf-8"))

    def _serve_events(self, query: Dict[str, Any]) -> None:
        sink: EventSink = self.server.obs_sink  # type: ignore[attr-defined]
        try:
            n = int(query.get("n", ["256"])[0])
        except ValueError:
            n = 256
        try:
            since = int(query.get("since", ["-1"])[0])
        except ValueError:
            since = -1
        events = sink.tail(n=max(1, n), since_seq=since)
        body = "".join(line + "\n" for line in event_lines(events))
        self._send(200, "application/x-ndjson", body.encode("utf-8"))

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ObsServer:
    """The live telemetry endpoint for one run.

    ``start()`` attaches a bounded event sink plus a progress tracker to the
    active bus and begins serving on a daemon thread; ``close()`` detaches
    both (restoring the bus's free no-sink path) and writes nothing. The
    tracker outlives ``close()`` so the CLI can persist a final
    ``progress.json`` into the run registry.
    """

    def __init__(self, host: str, port: int,
                 sink_maxlen: Optional[int] = None,
                 runs_dir: Optional[str] = None,
                 slo_path: Optional[str] = None) -> None:
        self._requested = (host, port)
        self.runs_dir = str(runs_dir) if runs_dir else None
        self.slo_path = str(slo_path) if slo_path else None
        self.sink = EventSink(maxlen=sink_maxlen) if sink_maxlen \
            else EventSink()
        self.tracker = ProgressTracker()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._attached = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 to the real port."""
        if self._server is not None:
            addr = self._server.server_address
            return str(addr[0]), int(addr[1])
        return self._requested

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObsServer":
        host, port = self._requested
        server = ThreadingHTTPServer((host, port), _Handler)
        server.daemon_threads = True
        server.obs_sink = self.sink  # type: ignore[attr-defined]
        server.obs_tracker = self.tracker  # type: ignore[attr-defined]
        server.obs_runs_dir = self.runs_dir  # type: ignore[attr-defined]
        server.obs_slo_path = self.slo_path  # type: ignore[attr-defined]
        self._server = server
        obs.attach_sink(self.sink)
        obs.attach_sink(self.tracker)
        self._attached = True
        thread = threading.Thread(target=server.serve_forever,
                                  name="autosens-obs-serve", daemon=True)
        thread.start()
        self._thread = thread
        return self

    def close(self) -> None:
        """Stop serving and detach from the bus (idempotent)."""
        if self._attached:
            obs.detach_sink(self.tracker)
            obs.detach_sink(self.sink)
            self._attached = False
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
