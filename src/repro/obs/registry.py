"""Persistent run registry: an append-only index over run artifacts.

A registry is a ``--runs-dir`` directory with one subdirectory per recorded
run (``<seq:04d>-<run_id>`` holding ``manifest.json``, ``metrics.prom``,
``progress.json``) plus ``index.jsonl``, one JSON line per run. The index
is append-only — recording never rewrites history — and reads are tolerant
of a torn final line, so a run killed mid-append cannot corrupt the
registry for later ones.

The registry powers ``autosens runs ls|show|diff|trend``. ``trend`` reuses
:func:`repro.obs.diff.diff_artifacts` classification over *consecutive*
manifests, so the same wall-time/span-share/health-verdict taxonomy that
``obs diff`` applies to two runs extends to the last N: two identical
deterministic seeded runs trend as all-unchanged (a CI gate), and a
regression names the first run pair where it appeared.

Fleet-level surveillance over the *whole* history — rolling baselines,
change-point attribution, SLO burn rates — lives in
:mod:`repro.obs.watch` (``autosens watch``) and builds on
:meth:`RunRegistry.entries` / :meth:`RunRegistry.read_manifest`.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.diff import (
    DEFAULT_CURVE_TOL,
    DEFAULT_REL_TOL,
    diff_exit_code,
    diff_paths,
)

__all__ = [
    "REGISTRY_SCHEMA",
    "RunRegistry",
    "render_runs_table",
    "render_trend",
    "trend_exit_code",
]

#: Bump when index-line fields change incompatibly.
REGISTRY_SCHEMA = 1

_SAFE_ID = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(value: str, fallback: str = "run") -> str:
    slug = _SAFE_ID.sub("-", value).strip("-.")
    return slug or fallback


class RunRegistry:
    """Append-only index of recorded runs under one ``runs_dir``."""

    def __init__(self, runs_dir: Union[str, Path]) -> None:
        self.runs_dir = Path(runs_dir)
        self.index_path = self.runs_dir / "index.jsonl"

    # -- reads ---------------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """Index entries in recorded order; torn/alien lines are skipped."""
        if not self.index_path.is_file():
            return []
        entries: List[Dict[str, Any]] = []
        with open(self.index_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn append from a killed run
                if isinstance(entry, dict) and "seq" in entry:
                    entries.append(entry)
        return entries

    def find(self, selector: str) -> Optional[Dict[str, Any]]:
        """Look up one entry by seq number, run id, or directory name.

        Run ids may repeat across recordings; the *latest* match wins,
        matching what ``runs show`` should mean by default.
        """
        entries = self.entries()
        for entry in reversed(entries):
            if selector == str(entry.get("seq")) \
                    or selector == entry.get("run_id") \
                    or selector == entry.get("dir"):
                return entry
        return None

    def run_path(self, entry: Dict[str, Any]) -> Path:
        return self.runs_dir / str(entry.get("dir", ""))

    def read_manifest(self, entry: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The recorded manifest for one entry, or ``None`` when the run
        directory (or its manifest) has been deleted or corrupted —
        callers degrade to index-line fields rather than failing."""
        try:
            with open(self.run_path(entry) / "manifest.json", "r",
                      encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- writes --------------------------------------------------------------

    def next_seq(self) -> int:
        entries = self.entries()
        return 1 + max((int(e.get("seq", 0)) for e in entries), default=0)

    def new_run_dir(self, run_id: str) -> Path:
        """Create and return the artifact directory for the next run."""
        seq = self.next_seq()
        path = self.runs_dir / f"{seq:04d}-{_slug(run_id)}"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def record(self, run_dir: Path, **fields: Any) -> Dict[str, Any]:
        """Append one index line describing a recorded run directory.

        The single ``write`` of one line keeps concurrent recorders from
        interleaving partial lines on POSIX appends; readers skip torn
        lines regardless.
        """
        entry: Dict[str, Any] = {
            "schema": REGISTRY_SCHEMA,
            "seq": int(Path(run_dir).name.split("-", 1)[0]),
            "dir": Path(run_dir).name,
        }
        entry.update({k: v for k, v in fields.items() if v is not None})
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        # A run killed mid-append leaves a torn line with no newline; start
        # on a fresh line so the tear stays confined to that one entry.
        needs_newline = False
        try:
            with open(self.index_path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        except OSError:
            pass
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(("\n" if needs_newline else "") + line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return entry

    # -- analysis ------------------------------------------------------------

    def trend(self, last: int = 5,
              rel_tol: float = DEFAULT_REL_TOL,
              curve_tol: float = DEFAULT_CURVE_TOL) -> List[Dict[str, Any]]:
        """Diff each consecutive pair among the last ``last`` runs.

        Returns one diff report per pair, oldest first. Runs whose
        directory (or manifest) has been deleted are skipped with a note
        entry rather than failing the whole trend.
        """
        entries = self.entries()[-max(2, last):]
        reports: List[Dict[str, Any]] = []
        for before, after in zip(entries, entries[1:]):
            pair = {"a_seq": before.get("seq"), "b_seq": after.get("seq")}
            try:
                report = diff_paths(self.run_path(before),
                                    self.run_path(after),
                                    rel_tol=rel_tol, curve_tol=curve_tol)
            except Exception as exc:
                reports.append({**pair, "error": str(exc)})
                continue
            report.update(pair)
            report["a"] = before.get("dir", report.get("a"))
            report["b"] = after.get("dir", report.get("b"))
            reports.append(report)
        return reports


# ---------------------------------------------------------------------------
# CLI rendering.
# ---------------------------------------------------------------------------


def render_runs_table(entries: List[Dict[str, Any]]) -> str:
    """``runs ls`` table: one row per recorded run, newest last."""
    if not entries:
        return "(no recorded runs)"
    header = ("seq", "run_id", "command", "seed", "det", "verdict",
              "wall_s", "dir")
    rows = [header]
    for entry in entries:
        wall = entry.get("wall_s")
        rows.append((
            str(entry.get("seq", "?")),
            str(entry.get("run_id", "-") or "-"),
            str(entry.get("command", "-")),
            str(entry.get("seed", "-")),
            "yes" if entry.get("deterministic") else "no",
            str(entry.get("verdict", "-") or "-"),
            f"{wall:.2f}" if isinstance(wall, (int, float)) else "-",
            str(entry.get("dir", "-")),
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j])
                               for j, cell in enumerate(row)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_trend(reports: List[Dict[str, Any]]) -> str:
    """``runs trend`` summary: one line per consecutive pair, plus detail
    lines for every regressed dimension."""
    if not reports:
        return "(fewer than two recorded runs — nothing to trend)"
    lines = []
    for report in reports:
        pair = f"{report.get('a', '?')} -> {report.get('b', '?')}"
        if "error" in report:
            lines.append(f"{pair}: skipped ({report['error']})")
            continue
        summary = report.get("summary", {})
        regressed = summary.get("regressed", 0) + summary.get("removed", 0)
        improved = summary.get("improved", 0)
        unchanged = summary.get("unchanged", 0)
        added = summary.get("added", 0)
        verdict = "regressed" if regressed else "ok"
        lines.append(
            f"{pair}: {verdict}  "
            f"(unchanged={unchanged} improved={improved} "
            f"regressed={regressed} added={added})")
        if regressed:
            for entry in report.get("entries", []):
                if entry.get("classification") in ("regressed", "removed"):
                    lines.append(
                        f"    {entry.get('classification')}: "
                        f"{entry.get('key')}  "
                        f"{entry.get('a')} -> {entry.get('b')}")
    return "\n".join(lines)


def trend_exit_code(reports: List[Dict[str, Any]]) -> int:
    """0 when every pair is clean; 1 when any pair regressed or errored."""
    for report in reports:
        if "error" in report:
            return 1
        if diff_exit_code(report):
            return 1
    return 0
