"""Nested span tracing with deterministic identifiers.

A :class:`Tracer` records *spans* — named, attributed, nested intervals on a
run clock — and exports them as JSONL span records or as Chrome
``trace_event`` JSON that opens directly in ``chrome://tracing`` / Perfetto.

Two properties distinguish this tracer from an off-the-shelf one:

- **Deterministic span IDs.** A span's id is a content hash of its
  identity, never of wall time or memory addresses. Path-based spans hash
  ``(namespace, nesting path, occurrence)``; spans created with an explicit
  ``key`` hash ``(trace_id, name, key)`` only — so the *same task* gets the
  *same span id* whether it runs serially, in a process-pool worker, or is
  served from a checkpoint journal on a resumed run.
- **Deterministic clock (opt-in).** With ``deterministic=True`` timestamps
  come from a monotonic event counter instead of ``perf_counter``, so two
  runs of the same seeded workload produce byte-identical trace artifacts.

The disabled path is a pair of shared singletons (:data:`DISABLED_TRACER`,
:data:`NOOP_SPAN`) that allocate nothing per call — tracing off must be
near-free (see ``tests/obs/test_noop.py``).
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "DISABLED_TRACER",
    "span_identity",
    "aggregate_span_timings",
    "chrome_trace_events",
    "write_trace_jsonl",
    "write_chrome_trace",
]

#: Bump when the span-record field set changes.
TRACE_SCHEMA = 1

#: Hex characters kept from the sha256 digest for a span id.
_ID_LEN = 16


def span_identity(trace_id: str, name: str, key: str) -> str:
    """The deterministic span id for an explicitly keyed span.

    Pure function of ``(trace_id, name, key)`` — independent of nesting,
    call order, process, or clock. Executors use this so the same task
    yields the same id on every backend and on checkpoint resume.
    """
    raw = f"{trace_id}\x00key\x00{name}\x00{key}".encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:_ID_LEN]


def _path_identity(namespace: str, path: str, occurrence: int) -> str:
    raw = f"{namespace}\x00path\x00{path}\x00{occurrence}".encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:_ID_LEN]


class Span:
    """One traced interval; use as a context manager.

    Identity (id, parent, path) is assigned on ``__enter__`` so nesting
    reflects runtime structure, not construction order. ``set(**attrs)``
    adds attributes mid-span; an exception escaping the block records its
    class name under the ``error`` attribute before propagating.
    """

    __slots__ = (
        "tracer", "name", "key", "attrs",
        "span_id", "parent_id", "path", "tid",
        "start_us", "dur_us",
    )

    def __init__(self, tracer: "Tracer", name: str, key: Optional[str],
                 attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.key = key
        self.attrs = attrs
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.path = ""
        self.tid = tracer.tid
        self.start_us = 0
        self.dur_us = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> float:
        """Span duration in seconds (event ticks × 1 µs when deterministic)."""
        return self.dur_us / 1e6

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._exit(self)
        return False

    def to_record(self) -> Dict[str, Any]:
        """The exportable form of a *finished* span."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "path": self.path,
            "tid": self.tid,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    duration_s = 0.0
    dur_us = 0
    span_id = ""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The one no-op span instance; ``obs.span(...)`` returns it (never a fresh
#: object) whenever tracing is off.
NOOP_SPAN = _NoopSpan()


class _DisabledTracer:
    """Tracer stand-in installed while observability is off."""

    enabled = False
    listener = None  # never wired; mirrors Tracer for uniform access
    tid = 0

    def span(self, name: str, key: Optional[str] = None, **attrs: Any) -> _NoopSpan:
        return NOOP_SPAN

    def finished(self) -> List[Dict[str, Any]]:
        return []

    def adopt(self, records: Iterable[Dict[str, Any]],
              parent_id: Optional[str] = None, tid: Optional[int] = None) -> None:
        pass


DISABLED_TRACER = _DisabledTracer()


class Tracer:
    """Collects finished span records on one run clock.

    ``trace_id`` names the run and seeds every keyed span id; ``namespace``
    (defaults to ``trace_id``) additionally seeds path-based ids — worker
    processes use a per-chunk namespace so their internal spans cannot
    collide while their *task* spans (keyed) still match the serial run.
    """

    enabled = True

    def __init__(self, trace_id: str = "autosens",
                 namespace: Optional[str] = None,
                 deterministic: bool = False,
                 tid: int = 0) -> None:
        self.trace_id = trace_id
        self.namespace = namespace if namespace is not None else trace_id
        self.deterministic = deterministic
        self.tid = tid
        # Optional repro.obs.profile.SpanProfiler; the hook reads its own
        # clocks and never touches span records, so trace artifacts are
        # byte-identical whether profiling is attached or not.
        self.profiler: Optional[Any] = None
        # Optional repro.obs.events.EventBus publishing span open/close
        # events to live sinks. Like the profiler, the listener observes
        # spans after their identity and clocks are fixed — attaching it
        # cannot change any artifact byte.
        self.listener: Optional[Any] = None
        self._t0 = time.perf_counter()
        self._tick = 0
        self._stack: List[Span] = []
        self._occurrences: Dict[str, int] = {}
        self._records: List[Dict[str, Any]] = []

    # -- clock ---------------------------------------------------------------

    def now_us(self) -> int:
        """Microseconds on the run clock (event count when deterministic)."""
        if self.deterministic:
            self._tick += 1
            return self._tick
        return int((time.perf_counter() - self._t0) * 1e6)

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, key: Optional[str] = None, **attrs: Any) -> Span:
        """Create a span; enter it with ``with`` to start the clock."""
        return Span(self, name, key, attrs)

    def _enter(self, span: Span) -> None:
        parent = self._stack[-1] if self._stack else None
        span.parent_id = parent.span_id if parent is not None else None
        parent_path = parent.path if parent is not None else ""
        span.path = f"{parent_path}/{span.name}"
        if span.key is not None:
            span.span_id = span_identity(self.trace_id, span.name, span.key)
        else:
            n = self._occurrences.get(span.path, 0)
            self._occurrences[span.path] = n + 1
            span.span_id = _path_identity(self.namespace, span.path, n)
        span.start_us = self.now_us()
        self._stack.append(span)
        if self.profiler is not None:
            self.profiler.on_enter(span.name)
        listener = self.listener
        if listener is not None and listener.active:
            listener.publish("span_open", name=span.name, id=span.span_id,
                             path=span.path, attrs=dict(span.attrs))

    def _exit(self, span: Span) -> None:
        if self.profiler is not None:
            self.profiler.on_exit(span.name)
        end = self.now_us()
        span.dur_us = end - span.start_us
        # Tolerate out-of-order exits (a span kept past its parent) by
        # popping down to the span rather than asserting strict nesting.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._records.append(span.to_record())
        listener = self.listener
        if listener is not None and listener.active:
            listener.publish("span_close", name=span.name, id=span.span_id,
                             path=span.path, dur_us=span.dur_us,
                             attrs=dict(span.attrs))

    # -- record access -------------------------------------------------------

    def finished(self) -> List[Dict[str, Any]]:
        """All completed span records, in completion (post-)order."""
        return list(self._records)

    def adopt(self, records: Iterable[Dict[str, Any]],
              parent_id: Optional[str] = None, tid: Optional[int] = None) -> None:
        """Merge finished records from another tracer (e.g. a worker).

        Roots among ``records`` (``parent is None``) are re-parented onto
        ``parent_id``; ``tid`` restamps the thread lane for trace viewers.
        """
        listener = self.listener
        publish = listener is not None and listener.active
        for record in records:
            adopted = dict(record)
            if adopted.get("parent") is None:
                adopted["parent"] = parent_id
            if tid is not None:
                adopted["tid"] = tid
            self._records.append(adopted)
            if publish:
                listener.publish(
                    "span_close", name=adopted.get("name", ""),
                    id=adopted.get("id", ""), path=adopted.get("path", ""),
                    dur_us=adopted.get("dur_us", 0),
                    attrs=dict(adopted.get("attrs", {})), adopted=True)


def aggregate_span_timings(records: Iterable[Dict[str, Any]]
                           ) -> Dict[str, Dict[str, Any]]:
    """Per-span-name totals (``{name: {count, seconds}}``) from records.

    The shape the perf suite persists in ``BENCH_pipeline.json`` and run
    manifests carry under ``span_timings`` — and that ``obs diff`` compares
    as shares of the total.
    """
    timings: Dict[str, Dict[str, Any]] = {}
    for record in records:
        name = str(record.get("name", ""))
        entry = timings.setdefault(name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += float(record.get("dur_us", 0)) / 1e6
    for entry in timings.values():
        entry["seconds"] = round(entry["seconds"], 6)
    return {name: timings[name] for name in sorted(timings)}


# -- exporters ----------------------------------------------------------------


def _json_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Attributes coerced to JSON-stable scalars (repr for exotic values)."""
    out: Dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        else:
            out[k] = repr(v)
    return out


def trace_jsonl_lines(records: Iterable[Dict[str, Any]]) -> Iterable[str]:
    """One compact, key-sorted JSON object per finished span."""
    for record in records:
        payload = dict(record)
        payload["attrs"] = _json_attrs(payload.get("attrs", {}))
        payload["schema"] = TRACE_SCHEMA
        yield json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_trace_jsonl(records: Iterable[Dict[str, Any]],
                      path: Union[str, Path]) -> int:
    """Write span records as JSONL; returns the number of lines written."""
    path = Path(path)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in trace_jsonl_lines(records):
            fh.write(line)
            fh.write("\n")
            count += 1
    return count


def chrome_trace_events(records: Iterable[Dict[str, Any]],
                        pid: int = 0) -> List[Dict[str, Any]]:
    """Span records as Chrome ``trace_event`` complete ("X") events."""
    events = []
    for record in records:
        args = _json_attrs(record.get("attrs", {}))
        args["span_id"] = record["id"]
        if record.get("parent"):
            args["parent_id"] = record["parent"]
        events.append({
            "ph": "X",
            "name": record["name"],
            "cat": "autosens",
            "ts": record["start_us"],
            "dur": record["dur_us"],
            "pid": pid,
            "tid": record.get("tid", 0),
            "args": args,
        })
    return events


def write_chrome_trace(records: Iterable[Dict[str, Any]],
                       path: Union[str, Path],
                       trace_id: str = "autosens") -> int:
    """Write records as a Chrome/Perfetto trace file; returns event count.

    The output is a single JSON object (``{"traceEvents": [...]}``) with
    sorted keys and no whitespace variation, so a deterministic-clock trace
    is byte-reproducible.
    """
    events = chrome_trace_events(records)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id, "schema": TRACE_SCHEMA},
    }
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(events)
