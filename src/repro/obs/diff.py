"""Cross-run regression detection: compare two run artifacts with tolerances.

``autosens obs diff <a> <b>`` compares two artifacts of the same kind and
classifies every comparable quantity as ``improved`` / ``regressed`` /
``unchanged`` under a relative tolerance. Supported artifact kinds are
sniffed from JSON shape, not file name:

- **bench** — ``BENCH_pipeline.json`` perf baselines (``schema`` +
  ``scales``): stage *speedups* (machine-robust ratios, higher is better)
  and span-timing *shares of total* (lower is better) per scale;
- **manifest** — run manifests (``run_id``): degradation counts, health
  verdicts, metric totals (cache hits up, misses/evictions/errors down),
  and embedded span timings;
- **metrics** — registry JSON snapshots (``kind``/``series`` values);
- **curve** — ``PreferenceResult`` JSON (``series`` with ``nlp``): max
  absolute NLP deviation over the common valid bins plus support changes;
- **health** — serialized health reports: verdict rank and finding counts;
- **sensitivity** — frontier artifacts from the sensitivity suite
  (``fixture`` + ``cells``): per-level verdict ranks, bias magnitudes,
  band inflation, compared support, and gate state;
- **watch-baseline** / **watch-trend** — fleet watch artifacts from
  :mod:`repro.obs.watch` (self-identified by their ``kind`` field):
  per-series EWMA centers and MAD noise, and change-point state ranks
  with pinned change sequences.

A self-comparison is 100 % ``unchanged`` by construction (every comparator
is an exact-equality fast path before any tolerance math) — the property
the acceptance tests pin.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "DIFF_SCHEMA",
    "sniff_kind",
    "load_artifact",
    "diff_artifacts",
    "diff_paths",
    "diff_exit_code",
    "render_diff",
    "write_diff",
]

#: Bump when the diff artifact field set changes.
DIFF_SCHEMA = 1

#: Default relative tolerance for ratio-ish quantities (speedups, totals).
DEFAULT_REL_TOL = 0.10

#: Default absolute tolerance for NLP curve values (the curve is ~O(1)).
DEFAULT_CURVE_TOL = 0.02

_VERDICT_RANK = {"ok": 0, "warn": 1, "fail": 2}

#: Metric-name fragments with a known good direction.
_HIGHER_BETTER = ("hit", "speedup")
_LOWER_BETTER = (
    "miss", "evict", "degrad", "bad", "skip", "reject", "error", "crash",
    "retr", "trip", "kill", "spill",
)


def _direction(key: str) -> Optional[str]:
    lowered = key.lower()
    if any(tok in lowered for tok in _HIGHER_BETTER):
        return "higher"
    if any(tok in lowered for tok in _LOWER_BETTER):
        return "lower"
    return None


def _entry(key: str, a: Optional[float], b: Optional[float],
           rel_tol: float, better: Optional[str],
           absolute: bool = False) -> Dict[str, Any]:
    """Classify one quantity. ``better=None`` treats any drift as regression
    (the quantity is pinned, e.g. an NLP value against a committed baseline).
    """
    entry: Dict[str, Any] = {"key": key, "a": a, "b": b}
    if a is None or b is None:
        entry["classification"] = "unchanged" if a == b else "added" if a is None else "removed"
        return entry
    a = float(a)
    b = float(b)
    if a == b:  # exact-equality fast path: self-diff is always unchanged
        entry["delta"] = 0.0
        entry["classification"] = "unchanged"
        return entry
    delta = b - a
    if absolute:
        drift = abs(delta)
    else:
        denom = max(abs(a), abs(b), 1e-12)
        drift = abs(delta) / denom
    entry["delta"] = round(delta, 6)
    entry["drift"] = round(drift, 6)
    if drift <= rel_tol:
        entry["classification"] = "unchanged"
    elif better is None:
        entry["classification"] = "regressed"
    elif (delta > 0) == (better == "higher"):
        entry["classification"] = "improved"
    else:
        entry["classification"] = "regressed"
    return entry


# ---------------------------------------------------------------------------
# Artifact loading and kind sniffing.
# ---------------------------------------------------------------------------


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a JSON artifact; :class:`SchemaError` on unreadable files."""
    from repro.errors import SchemaError

    path = Path(path)
    if path.is_dir():
        # A run directory: prefer its manifest.
        for candidate in ("manifest.json",):
            if (path / candidate).exists():
                path = path / candidate
                break
        else:
            manifests = sorted(path.glob("*manifest*.json"))
            if not manifests:
                raise SchemaError(f"{path} holds no manifest to diff")
            path = manifests[0]
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"cannot read artifact {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise SchemaError(f"{path} is not a JSON object")
    return payload


def sniff_kind(payload: Dict[str, Any]) -> str:
    """Artifact kind from JSON shape; :class:`SchemaError` if unrecognized."""
    from repro.errors import SchemaError

    if payload.get("kind") in ("watch-baseline", "watch-trend"):
        return str(payload["kind"])
    if "scales" in payload and "schema" in payload:
        return "bench"
    if "fixture" in payload and "cells" in payload:
        return "sensitivity"
    if "run_id" in payload:
        return "manifest"
    if "verdict" in payload and "findings" in payload:
        return "health"
    if isinstance(payload.get("series"), dict) and "nlp" in payload["series"]:
        return "curve"
    if payload and all(
        isinstance(v, dict) and {"kind", "series"} <= set(v)
        for v in payload.values()
    ):
        return "metrics"
    raise SchemaError(
        "unrecognized artifact shape (expected bench/manifest/metrics/"
        "curve/health/sensitivity/watch JSON)")


# ---------------------------------------------------------------------------
# Per-kind comparators. Each returns a list of classified entries.
# ---------------------------------------------------------------------------


def _span_share_entries(prefix: str,
                        a_spans: Dict[str, Any], b_spans: Dict[str, Any],
                        rel_tol: float) -> List[Dict[str, Any]]:
    """Span timings compared as shares of each run's total span seconds.

    Shares survive machine-speed differences; a span whose *relative* cost
    grows is the one worth looking at. Counts are compared exactly — a span
    firing a different number of times is a structural change, not noise.
    """
    entries: List[Dict[str, Any]] = []
    a_total = sum(float(v.get("seconds", 0.0)) for v in a_spans.values()) or 1.0
    b_total = sum(float(v.get("seconds", 0.0)) for v in b_spans.values()) or 1.0
    for name in sorted(set(a_spans) | set(b_spans)):
        a_entry = a_spans.get(name)
        b_entry = b_spans.get(name)
        a_share = (float(a_entry.get("seconds", 0.0)) / a_total
                   if a_entry is not None else None)
        b_share = (float(b_entry.get("seconds", 0.0)) / b_total
                   if b_entry is not None else None)
        if (a_entry is not None and b_entry is not None
                and a_entry.get("seconds") == b_entry.get("seconds")):
            # Identical absolute timings (self-diff): shares are equal too,
            # but float division can wobble — force the fast path.
            a_share = b_share
        entries.append(_entry(
            f"{prefix}span_share[{name}]",
            round(a_share, 6) if a_share is not None else None,
            round(b_share, 6) if b_share is not None else None,
            rel_tol, better="lower", absolute=True))
        a_count = float(a_entry.get("count", 0)) if a_entry is not None else None
        b_count = float(b_entry.get("count", 0)) if b_entry is not None else None
        entries.append(_entry(
            f"{prefix}span_count[{name}]", a_count, b_count,
            0.0, better=None))
    return entries


def _diff_bench(a: Dict[str, Any], b: Dict[str, Any],
                rel_tol: float) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    a_scales = a.get("scales", {})
    b_scales = b.get("scales", {})
    for scale in sorted(set(a_scales) & set(b_scales)):
        a_stages = a_scales[scale].get("stages", {})
        b_stages = b_scales[scale].get("stages", {})
        for stage in sorted(set(a_stages) | set(b_stages)):
            a_stage = a_stages.get(stage)
            b_stage = b_stages.get(stage)
            a_speedup = a_stage.get("speedup") if a_stage else None
            b_speedup = b_stage.get("speedup") if b_stage else None
            if a_speedup is not None or b_speedup is not None:
                entries.append(_entry(
                    f"{scale}.speedup[{stage}]", a_speedup, b_speedup,
                    rel_tol, better="higher"))
            else:
                entries.append(_entry(
                    f"{scale}.seconds[{stage}]",
                    a_stage.get("seconds") if a_stage else None,
                    b_stage.get("seconds") if b_stage else None,
                    rel_tol, better="lower"))
        entries.extend(_span_share_entries(
            f"{scale}.",
            a_scales[scale].get("span_timings", {}),
            b_scales[scale].get("span_timings", {}),
            rel_tol))
    return entries


def _flatten_metrics(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Metric snapshot → flat ``name{labels}[.field]`` → value map."""
    flat: Dict[str, float] = {}
    for name, metric in snapshot.items():
        if not isinstance(metric, dict):
            continue
        series = metric.get("series", {})
        for labels, value in series.items():
            key = f"{name}{labels}"
            if isinstance(value, dict):  # histogram: compare count and sum
                flat[f"{key}.count"] = float(value.get("count", 0))
                flat[f"{key}.sum"] = float(value.get("sum", 0.0))
            else:
                flat[key] = float(value)
    return flat


def _metric_entries(a_flat: Dict[str, float], b_flat: Dict[str, float],
                    rel_tol: float, prefix: str = "") -> List[Dict[str, Any]]:
    entries = []
    for key in sorted(set(a_flat) | set(b_flat)):
        entries.append(_entry(
            f"{prefix}{key}", a_flat.get(key), b_flat.get(key),
            rel_tol, better=_direction(key)))
    return entries


def _diff_metrics(a: Dict[str, Any], b: Dict[str, Any],
                  rel_tol: float) -> List[Dict[str, Any]]:
    return _metric_entries(_flatten_metrics(a), _flatten_metrics(b), rel_tol)


def _diff_health(a: Dict[str, Any], b: Dict[str, Any]) -> List[Dict[str, Any]]:
    entries = [_entry(
        "health.verdict_rank",
        float(_VERDICT_RANK.get(str(a.get("verdict")), 2)),
        float(_VERDICT_RANK.get(str(b.get("verdict")), 2)),
        0.0, better="lower")]
    a_counts = a.get("counts", {})
    b_counts = b.get("counts", {})
    for severity in ("warn", "fail"):
        entries.append(_entry(
            f"health.findings[{severity}]",
            float(a_counts.get(severity, 0)), float(b_counts.get(severity, 0)),
            0.0, better="lower"))
    return entries


def _diff_manifest(a: Dict[str, Any], b: Dict[str, Any],
                   rel_tol: float) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    entries.append(_entry(
        "degradations", float(len(a.get("degradations") or [])),
        float(len(b.get("degradations") or [])), 0.0, better="lower"))
    a_health = a.get("health")
    b_health = b.get("health")
    if isinstance(a_health, dict) or isinstance(b_health, dict):
        entries.extend(_diff_health(a_health or {}, b_health or {}))
    entries.extend(_metric_entries(
        _flatten_metrics(a.get("metrics") or {}),
        _flatten_metrics(b.get("metrics") or {}),
        rel_tol, prefix="metrics."))
    a_spans = a.get("span_timings")
    b_spans = b.get("span_timings")
    if isinstance(a_spans, dict) and isinstance(b_spans, dict):
        entries.extend(_span_share_entries("", a_spans, b_spans, rel_tol))
    return entries


def _curve_arrays(payload: Dict[str, Any]) -> Tuple[List[Optional[float]], ...]:
    series = payload.get("series", {})
    return (list(series.get("nlp", [])),)


def _diff_curve(a: Dict[str, Any], b: Dict[str, Any],
                curve_tol: float) -> List[Dict[str, Any]]:
    (a_nlp,) = _curve_arrays(a)
    (b_nlp,) = _curve_arrays(b)
    n = min(len(a_nlp), len(b_nlp))
    a_valid = sum(1 for v in a_nlp if v is not None)
    b_valid = sum(1 for v in b_nlp if v is not None)
    entries = [
        _entry("curve.n_bins", float(len(a_nlp)), float(len(b_nlp)),
               0.0, better=None),
        _entry("curve.n_valid_bins", float(a_valid), float(b_valid),
               0.0, better="higher"),
    ]
    max_abs = 0.0
    n_common = 0
    for i in range(n):
        av, bv = a_nlp[i], b_nlp[i]
        if av is None or bv is None:
            continue
        if not (math.isfinite(av) and math.isfinite(bv)):
            continue
        n_common += 1
        max_abs = max(max_abs, abs(bv - av))
    if n_common:
        entries.append(_entry(
            "curve.max_abs_nlp_diff", 0.0, round(max_abs, 6),
            curve_tol, better=None, absolute=True))
    else:
        entries.append({
            "key": "curve.max_abs_nlp_diff", "a": None, "b": None,
            "classification": "regressed" if (a_valid or b_valid) else "unchanged",
        })
    return entries


#: Sensitivity-cell verdicts in increasing badness.
_CELL_VERDICT_RANK = {"robust": 0, "degraded-explained": 1, "silent-bias": 2}


def _diff_sensitivity(a: Dict[str, Any], b: Dict[str, Any],
                      rel_tol: float,
                      curve_tol: float) -> List[Dict[str, Any]]:
    """Frontier vs frontier: cells matched by level, worst drift wins.

    Verdict ranks and compared support are pinned exactly; bias values are
    compared under the curve tolerance (absolute — bias is in NLP units);
    band inflation is a ratio and gets the relative tolerance, lower
    better. A cell present on one side only reports as added/removed.
    """
    def by_level(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
        return {
            f"{float(cell.get('level', 0.0)):g}": cell
            for cell in payload.get("cells", [])
        }

    entries = [_entry(
        "frontier.gate_passed",
        float(bool(a.get("gate_passed", False))),
        float(bool(b.get("gate_passed", False))),
        0.0, better="higher")]
    a_cells = by_level(a)
    b_cells = by_level(b)
    for level in sorted(set(a_cells) | set(b_cells), key=float):
        ca = a_cells.get(level)
        cb = b_cells.get(level)

        def value(cell: Optional[Dict[str, Any]], key: str) -> Optional[float]:
            if cell is None or cell.get(key) is None:
                return None
            return float(cell[key])

        def rank(cell: Optional[Dict[str, Any]]) -> Optional[float]:
            if cell is None:
                return None
            return float(_CELL_VERDICT_RANK.get(str(cell.get("verdict")), 2))

        prefix = f"cell[{level}]."
        entries.append(_entry(
            f"{prefix}verdict_rank", rank(ca), rank(cb), 0.0, better="lower"))
        entries.append(_entry(
            f"{prefix}gate_passed",
            None if ca is None else float(bool(ca.get("gate_passed", False))),
            None if cb is None else float(bool(cb.get("gate_passed", False))),
            0.0, better="higher"))
        for key in ("bias_linf", "bias_signed_area"):
            entries.append(_entry(
                f"{prefix}{key}", value(ca, key), value(cb, key),
                curve_tol, better=None, absolute=True))
        entries.append(_entry(
            f"{prefix}ci_band_inflation",
            value(ca, "ci_band_inflation"), value(cb, "ci_band_inflation"),
            rel_tol, better="lower"))
        entries.append(_entry(
            f"{prefix}n_compared_bins",
            value(ca, "n_compared_bins"), value(cb, "n_compared_bins"),
            0.0, better=None))
    return entries


#: Watch change-point states in increasing badness.
_TREND_STATE_RANK = {"stable": 0, "trending": 1, "stepped": 2}


def _watch_series_value(cell: Optional[Dict[str, Any]],
                        key: str) -> Optional[float]:
    if not isinstance(cell, dict) or \
            not isinstance(cell.get(key), (int, float)):
        return None
    return float(cell[key])


def _diff_watch_baseline(a: Dict[str, Any], b: Dict[str, Any],
                         rel_tol: float) -> List[Dict[str, Any]]:
    """Baseline vs baseline: did a series' *center* or *noise* move?

    EWMA centers are pinned (a committed baseline drifting in either
    direction is the regression being hunted); MAD is lower-better — a
    noisier fleet is a worse fleet.
    """
    a_series = a.get("series") or {}
    b_series = b.get("series") or {}
    entries: List[Dict[str, Any]] = []
    for name in sorted(set(a_series) | set(b_series)):
        ca = a_series.get(name)
        cb = b_series.get(name)
        entries.append(_entry(
            f"baseline.ewma[{name}]",
            _watch_series_value(ca, "ewma"), _watch_series_value(cb, "ewma"),
            rel_tol, better=None))
        entries.append(_entry(
            f"baseline.mad[{name}]",
            _watch_series_value(ca, "mad"), _watch_series_value(cb, "mad"),
            rel_tol, better="lower"))
    return entries


def _diff_watch_trend(a: Dict[str, Any],
                      b: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Trend vs trend: state ranks lower-better, change seqs pinned."""
    a_series = a.get("series") or {}
    b_series = b.get("series") or {}
    entries: List[Dict[str, Any]] = []

    def rank(cell: Optional[Dict[str, Any]]) -> Optional[float]:
        if not isinstance(cell, dict):
            return None
        return float(_TREND_STATE_RANK.get(str(cell.get("state")), 2))

    for name in sorted(set(a_series) | set(b_series)):
        ca = a_series.get(name)
        cb = b_series.get(name)
        entries.append(_entry(
            f"trend.state_rank[{name}]", rank(ca), rank(cb),
            0.0, better="lower"))
        a_seq = _watch_series_value(ca, "change_seq")
        b_seq = _watch_series_value(cb, "change_seq")
        if a_seq is not None or b_seq is not None:
            entries.append(_entry(
                f"trend.change_seq[{name}]", a_seq, b_seq, 0.0, better=None))
    return entries


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def diff_artifacts(a: Dict[str, Any], b: Dict[str, Any],
                   rel_tol: float = DEFAULT_REL_TOL,
                   curve_tol: float = DEFAULT_CURVE_TOL,
                   a_name: str = "a", b_name: str = "b") -> Dict[str, Any]:
    """Compare two parsed artifacts of the same kind into a diff payload."""
    from repro.errors import SchemaError

    kind_a = sniff_kind(a)
    kind_b = sniff_kind(b)
    if kind_a != kind_b:
        raise SchemaError(
            f"cannot diff a {kind_a} artifact against a {kind_b} artifact")
    if kind_a == "bench":
        entries = _diff_bench(a, b, rel_tol)
    elif kind_a == "manifest":
        entries = _diff_manifest(a, b, rel_tol)
    elif kind_a == "metrics":
        entries = _diff_metrics(a, b, rel_tol)
    elif kind_a == "curve":
        entries = _diff_curve(a, b, curve_tol)
    elif kind_a == "sensitivity":
        entries = _diff_sensitivity(a, b, rel_tol, curve_tol)
    elif kind_a == "watch-baseline":
        entries = _diff_watch_baseline(a, b, rel_tol)
    elif kind_a == "watch-trend":
        entries = _diff_watch_trend(a, b)
    else:
        entries = _diff_health(a, b)
    summary = {"improved": 0, "regressed": 0, "unchanged": 0,
               "added": 0, "removed": 0}
    for entry in entries:
        summary[entry["classification"]] = (
            summary.get(entry["classification"], 0) + 1)
    return {
        "schema": DIFF_SCHEMA,
        "kind": kind_a,
        "a": a_name,
        "b": b_name,
        "tolerances": {"rel_tol": rel_tol, "curve_tol": curve_tol},
        "entries": entries,
        "summary": summary,
    }


def diff_paths(a: Union[str, Path], b: Union[str, Path],
               rel_tol: float = DEFAULT_REL_TOL,
               curve_tol: float = DEFAULT_CURVE_TOL) -> Dict[str, Any]:
    """Load and diff two artifact files (or run directories)."""
    return diff_artifacts(
        load_artifact(a), load_artifact(b),
        rel_tol=rel_tol, curve_tol=curve_tol,
        a_name=str(a), b_name=str(b))


def render_diff(report: Dict[str, Any], show_unchanged: bool = False) -> str:
    """Human-readable diff table (regressions first)."""
    lines = [
        f"obs diff ({report['kind']}): {report['a']} -> {report['b']}",
        "  tolerances: rel={rel_tol:g} curve={curve_tol:g}".format(
            **report["tolerances"]),
    ]
    order = {"regressed": 0, "removed": 1, "added": 2, "improved": 3,
             "unchanged": 4}
    entries = sorted(report["entries"],
                     key=lambda e: (order.get(e["classification"], 5), e["key"]))
    for entry in entries:
        cls = entry["classification"]
        if cls == "unchanged" and not show_unchanged:
            continue
        a_val = entry.get("a")
        b_val = entry.get("b")
        detail = f"{a_val} -> {b_val}"
        if "drift" in entry:
            detail += f" (drift {entry['drift']:.3f})"
        lines.append(f"  [{cls:>9}] {entry['key']}: {detail}")
    summary = report["summary"]
    lines.append(
        "  summary: "
        + " ".join(f"{k}={summary.get(k, 0)}"
                   for k in ("regressed", "improved", "unchanged", "added",
                             "removed")))
    return "\n".join(lines)


def diff_exit_code(report: Dict[str, Any]) -> int:
    """0 when nothing regressed; 1 otherwise (``removed`` counts as drift)."""
    summary = report.get("summary", {})
    bad = summary.get("regressed", 0) + summary.get("removed", 0)
    return 1 if bad else 0


def write_diff(report: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Serialize the diff payload atomically."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    tmp.replace(path)
    return path
