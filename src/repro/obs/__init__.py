"""Observability for the AutoSens pipeline: logs, spans, metrics, manifests.

Zero-dependency and **off by default**: every instrumented call site first
checks the active :class:`~repro.obs._runtime.ObsContext`, and with the
default disabled context a span is the shared no-op singleton and a log
call is one integer comparison — the pipeline's benchmarks must not notice
the instrumentation exists.

Typical use::

    import repro.obs as obs

    obs.configure(level="info", trace=True, deterministic=True,
                  run_id="bottleneck-seed11")
    with obs.span("experiment", experiment="bottleneck"):
        ...
    records = obs.trace_records()

The module-level helpers (:func:`span`, :func:`inc`, :func:`observe`,
:func:`set_gauge`, :func:`get_logger`) always act on the *currently
installed* context, so library code never holds references to a particular
run's tracer or registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, TextIO

from repro.obs import _runtime
from repro.obs._runtime import LEVELS, ObsContext
from repro.obs.events import (
    EVENT_TYPES,
    EVENTS_SCHEMA,
    EventBus,
    EventSink,
    event_lines,
)
from repro.obs.diff import (
    diff_artifacts,
    diff_exit_code,
    diff_paths,
    render_diff,
    write_diff,
)
from repro.obs.health import (
    HealthReport,
    build_health_report,
    load_health_report,
    write_health_report,
)
from repro.obs.log import Logger, get_logger
from repro.obs.manifest import (
    build_manifest,
    file_digest,
    load_manifest,
    manifest_rows,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_DURATION_BUCKETS_S,
    MetricsRegistry,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.obs.probes import HealthFinding
from repro.obs.progress import (
    ProgressTracker,
    render_progress,
    snapshot_from_manifest,
)
from repro.obs.watch import (
    build_watch_report,
    detect_change_point,
    evaluate_slos,
    load_slo_config,
    render_watch,
    robust_baseline,
    watch_exit_code,
    write_watch_artifact,
)
from repro.obs.profile import (
    SpanProfiler,
    StackSampler,
    build_profile,
    load_profile,
    write_profile,
)
from repro.obs.trace import (
    DISABLED_TRACER,
    NOOP_SPAN,
    Span,
    Tracer,
    aggregate_span_timings,
    chrome_trace_events,
    span_identity,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "ObsContext",
    "configure",
    "disable",
    "session",
    "enabled",
    "current",
    "span",
    "get_logger",
    "Logger",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "span_identity",
    "trace_records",
    "MetricsRegistry",
    "metrics",
    "inc",
    "observe",
    "set_gauge",
    "record_degradation",
    "record_finding",
    "findings",
    "profiler",
    "HealthFinding",
    "HealthReport",
    "build_health_report",
    "write_health_report",
    "load_health_report",
    "SpanProfiler",
    "StackSampler",
    "build_profile",
    "write_profile",
    "load_profile",
    "diff_artifacts",
    "diff_paths",
    "diff_exit_code",
    "render_diff",
    "write_diff",
    "aggregate_span_timings",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_rows",
    "file_digest",
    "write_trace_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "write_metrics_json",
    "write_metrics_prometheus",
    "DEFAULT_DURATION_BUCKETS_S",
    "EventBus",
    "EventSink",
    "EVENT_TYPES",
    "EVENTS_SCHEMA",
    "event_lines",
    "event",
    "events_active",
    "event_bus",
    "attach_sink",
    "detach_sink",
    "ProgressTracker",
    "render_progress",
    "snapshot_from_manifest",
    "robust_baseline",
    "detect_change_point",
    "load_slo_config",
    "evaluate_slos",
    "build_watch_report",
    "render_watch",
    "watch_exit_code",
    "write_watch_artifact",
]


def configure(
    enabled: bool = True,
    level: str = "warning",
    log_json: bool = False,
    log_stream: Optional[TextIO] = None,
    trace: bool = True,
    deterministic: bool = False,
    run_id: str = "",
    profile: bool = False,
) -> ObsContext:
    """Install a fresh observability context and return it.

    ``trace=False`` keeps logging/metrics while spans stay no-ops. The
    previous context is discarded — runs are expected to configure once at
    entry (the CLI does this from ``--log-level``/``--trace-out`` flags).
    ``profile=True`` attaches a :class:`SpanProfiler` to the tracer; the
    profiler reads its own clocks and never touches span records, so every
    other artifact stays byte-identical with profiling on or off.
    """
    tracer = None if trace else DISABLED_TRACER
    ctx = ObsContext(
        enabled=enabled,
        level=level,
        log_json=log_json,
        log_stream=log_stream,
        tracer=tracer,
        deterministic=deterministic,
        run_id=run_id,
    )
    if profile and ctx.tracer.enabled:
        ctx.tracer.profiler = SpanProfiler()
    _runtime.install(ctx)
    return ctx


def disable() -> None:
    """Restore the default do-nothing context."""
    _runtime.install(_runtime.DISABLED)


@contextmanager
def session(**kwargs: Any) -> Iterator[ObsContext]:
    """``configure(**kwargs)`` for a block, restoring the prior context after.

    The restore-on-exit shape is what tests want; production entry points
    usually call :func:`configure` directly.
    """
    previous = _runtime.current()
    ctx = configure(**kwargs)
    try:
        yield ctx
    finally:
        _runtime.install(previous)


def current() -> ObsContext:
    """The active context (the disabled singleton when unconfigured)."""
    return _runtime.current()


def enabled() -> bool:
    """Is observability (and span tracing specifically) turned on?"""
    ctx = _runtime.current()
    return ctx.enabled and ctx.tracer.enabled


def span(name: str, key: Optional[str] = None, **attrs: Any):
    """A span on the active tracer — the shared no-op when disabled.

    Call-sites building attribute dicts for hot-loop spans should guard on
    :func:`enabled` first; for coarse spans just call this directly.
    """
    return _runtime.current().tracer.span(name, key=key, **attrs)


def trace_records() -> List[Dict[str, Any]]:
    """All finished span records on the active tracer."""
    return _runtime.current().tracer.finished()


def metrics() -> MetricsRegistry:
    """The active context's metrics registry."""
    return _runtime.current().metrics


def inc(name: str, amount: float = 1.0, help: str = "", **labels: Any) -> None:
    """Increment a counter on the active registry (no-op cheap when off)."""
    ctx = _runtime.current()
    if not ctx.enabled:
        return
    ctx.metrics.inc(name, amount, help=help, **labels)
    if ctx.bus.active:
        ctx.bus.publish("metric", metric=name, kind="counter", delta=amount,
                        labels=labels)


def observe(name: str, value: float, help: str = "", **labels: Any) -> None:
    """Observe a histogram sample on the active registry."""
    ctx = _runtime.current()
    if not ctx.enabled:
        return
    ctx.metrics.observe(name, value, help=help, **labels)
    if ctx.bus.active:
        ctx.bus.publish("metric", metric=name, kind="histogram", value=value,
                        labels=labels)


def set_gauge(name: str, value: float, help: str = "", **labels: Any) -> None:
    """Set a gauge on the active registry."""
    ctx = _runtime.current()
    if not ctx.enabled:
        return
    ctx.metrics.set_gauge(name, value, help=help, **labels)
    if ctx.bus.active:
        ctx.bus.publish("metric", metric=name, kind="gauge", value=value,
                        labels=labels)


def record_degradation(kind: str, **detail: Any) -> None:
    """Note a degradation for the run manifest (and the degradation counter)."""
    ctx = _runtime.current()
    if not ctx.enabled:
        return
    entry: Dict[str, Any] = {"kind": kind}
    entry.update(detail)
    ctx.degradations.append(entry)
    ctx.metrics.inc("autosens_degradations_total", 1.0, kind=kind)
    if ctx.bus.active:
        ctx.bus.publish("degradation", **entry)


def record_finding(finding: HealthFinding) -> None:
    """Accumulate one estimator-health finding (no-op while disabled)."""
    ctx = _runtime.current()
    if not ctx.enabled:
        return
    ctx.findings.append(finding.to_dict())
    ctx.metrics.inc("autosens_health_findings_total", 1.0,
                    stage=finding.stage, severity=finding.severity)
    if ctx.bus.active:
        ctx.bus.publish("finding", probe=finding.probe, stage=finding.stage,
                        severity=finding.severity, message=finding.message)


def event(type: str, **payload: Any) -> None:
    """Publish one typed event to the live bus (inert without sinks).

    For event types with no better home (supervisor state changes, run
    lifecycle). Hot paths with large payloads should guard on
    :func:`events_active` before building kwargs.
    """
    ctx = _runtime.current()
    if not ctx.enabled:
        return
    if ctx.bus.active:
        ctx.bus.publish(type, **payload)


def events_active() -> bool:
    """Is a live event sink attached to the active context's bus?"""
    ctx = _runtime.current()
    return ctx.enabled and ctx.bus.active


def event_bus() -> EventBus:
    """The active context's event bus (inert while no sink is attached)."""
    return _runtime.current().bus


def attach_sink(sink: Any) -> Any:
    """Attach a live event sink and wire the tracer's span listener.

    Returns the sink. The first attached sink is what flips every
    ``bus.active`` guard from the free no-sink path to live publishing;
    :func:`detach_sink` restores the free path once the last sink leaves.
    """
    ctx = _runtime.current()
    ctx.bus.attach(sink)
    if ctx.tracer.enabled:
        ctx.tracer.listener = ctx.bus
    return sink


def detach_sink(sink: Any) -> None:
    """Detach a sink; unhooks the tracer listener when none remain."""
    ctx = _runtime.current()
    ctx.bus.detach(sink)
    if not ctx.bus.active and getattr(ctx.tracer, "listener", None) is not None:
        ctx.tracer.listener = None


def findings() -> List[Dict[str, Any]]:
    """The findings accumulated on the active context (a copy)."""
    return list(_runtime.current().findings)


def profiler() -> Optional[SpanProfiler]:
    """The active tracer's span profiler, if one is attached."""
    return getattr(_runtime.current().tracer, "profiler", None)
