"""Leveled, structured logging with per-run context binding.

:func:`get_logger` returns a tiny :class:`Logger` whose emit methods check
the active :class:`~repro.obs._runtime.ObsContext` *at call time* — so a
logger created at import time (the common pattern: module-level
``log = get_logger(__name__)``) honors whatever configuration the run
installs later, and costs one integer comparison when logging is off.

Two output shapes share one record model:

- key=value lines — ``level=info logger=repro.core event="sweep done" n=12``
- JSON lines (``log_json=True``) — one key-sorted object per line, safe to
  feed to ``jq`` or the ingestion tooling itself.

``bind(**ctx)`` returns a child logger whose bound fields ride along on
every record; binding is additive and the parent is untouched.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from repro.obs import _runtime
from repro.obs._runtime import LEVELS

__all__ = ["Logger", "get_logger", "format_kv"]


def _quote(value: Any) -> str:
    """key=value rendering: bare for simple scalars, quoted otherwise."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if text and all(c.isalnum() or c in "._-/:" for c in text):
        return text
    return json.dumps(text)


def format_kv(level: str, logger: str, event: str,
              fields: Dict[str, Any]) -> str:
    """One key=value log line; field order is bound-then-call, stable."""
    parts = [f"level={level}", f"logger={logger}",
             f"event={json.dumps(event)}"]
    parts.extend(f"{k}={_quote(v)}" for k, v in fields.items())
    return " ".join(parts)


class Logger:
    """A named logger; cheap to create, stateless except for bound fields."""

    __slots__ = ("name", "_bound")

    def __init__(self, name: str, bound: Tuple[Tuple[str, Any], ...] = ()) -> None:
        self.name = name
        self._bound = bound

    def bind(self, **fields: Any) -> "Logger":
        """A child logger carrying ``fields`` on every record."""
        return Logger(self.name, self._bound + tuple(fields.items()))

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit if the active context's threshold admits ``level``."""
        ctx = _runtime.current()
        if LEVELS.get(level, 0) < ctx.level_no:
            return
        merged: Dict[str, Any] = dict(self._bound)
        merged.update(fields)
        if ctx.run_id:
            merged.setdefault("run_id", ctx.run_id)
        if ctx.log_json:
            payload = {"level": level, "logger": self.name, "event": event}
            payload.update(merged)
            line = json.dumps(payload, sort_keys=True, default=str,
                              separators=(",", ":"))
        else:
            line = format_kv(level, self.name, event, merged)
        ctx.log_stream.write(line + "\n")

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> Logger:
    """A logger for ``name`` (conventionally the module's ``__name__``)."""
    return Logger(name)
