"""A bounded, non-blocking in-process event bus for live telemetry.

The bus carries *typed events* — span opens/closes, metric deltas, health
findings, degradations, supervisor state changes, executor stage/task
completions — from the instrumented hot paths to pluggable *sinks*: the
ring buffer behind the ``/events`` endpoint, the progress tracker behind
``/progress`` and ``autosens top``, or anything else exposing ``offer``.

Three invariants keep the bus safe to compile into the hot paths:

- **No sink, no work.** ``publish`` on a bus without sinks is one attribute
  load and a falsy check; call sites additionally guard on
  :attr:`EventBus.active` before building payload dicts. A run without a
  sink attached produces byte-identical artifacts and consumes zero RNG —
  the bus never touches the tracer clock, span ids, metrics, or any
  estimator state.
- **Never block, never raise.** Sinks are bounded: a sink that cannot keep
  up *drops the oldest events* and counts them in :attr:`EventSink.dropped`
  (surfaced in ``/progress`` and the ``autosens_obs_events_dropped_total``
  accounting) instead of back-pressuring the pipeline. A sink whose
  ``offer`` raises is counted, not propagated.
- **Events are data.** An event is a plain dict (``seq``, ``ts``, ``type``
  plus payload) so sinks can serialize it straight to NDJSON. ``ts`` is
  wall-clock and informational only — determinism lives in the artifacts,
  not the live stream.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

__all__ = [
    "EVENT_TYPES",
    "EVENTS_SCHEMA",
    "EventBus",
    "EventSink",
    "event_lines",
]

#: Bump when the event field set changes incompatibly.
EVENTS_SCHEMA = 1

#: The closed vocabulary of event types the bus carries.
EVENT_TYPES = (
    "span_open",     # a span entered (name/path/attrs)
    "span_close",    # a span finished (adds dur_us; adopted=True for workers)
    "metric",        # a counter/gauge/histogram write through the facade
    "finding",       # a health probe finding was recorded
    "degradation",   # a degradation was recorded
    "supervisor",    # breaker/deadline/watchdog/memory state change
    "stage",         # an executor announced a stage's task total
    "tasks",         # one or more tasks completed on an executor
    "run",           # run lifecycle (started/finished)
    "slo",           # a watch SLO evaluation verdict (met/breaching)
)

#: Default per-sink buffer bound; ~a few hundred KB of events at most.
DEFAULT_SINK_MAXLEN = 4096


class EventSink:
    """A bounded ring buffer of events with explicit drop accounting.

    ``offer`` never blocks: past ``maxlen`` the *oldest* buffered event is
    evicted (a live tail wants fresh events) and :attr:`dropped` counts the
    loss. ``tail``/``drain`` serve readers; both are thread-safe against a
    publisher on another thread (the HTTP server reads from handler
    threads while the pipeline publishes).
    """

    def __init__(self, maxlen: int = DEFAULT_SINK_MAXLEN,
                 name: str = "sink") -> None:
        self.name = name
        self.maxlen = int(maxlen)
        self.dropped = 0
        self._events: Deque[Dict[str, Any]] = deque()
        self._lock = threading.Lock()

    def offer(self, event: Dict[str, Any]) -> None:
        """Buffer one event, evicting (and counting) the oldest when full."""
        with self._lock:
            if len(self._events) >= self.maxlen:
                self._events.popleft()
                self.dropped += 1
            self._events.append(event)

    def tail(self, n: Optional[int] = None,
             since_seq: Optional[int] = None) -> List[Dict[str, Any]]:
        """The last ``n`` buffered events (non-destructive), optionally only
        those with ``seq`` strictly greater than ``since_seq``."""
        with self._lock:
            events = list(self._events)
        if since_seq is not None:
            events = [e for e in events if e.get("seq", 0) > since_seq]
        if n is not None and n >= 0:
            events = events[-n:]
        return events

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return everything buffered."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def __len__(self) -> int:
        return len(self._events)


class EventBus:
    """Fan events out to attached sinks; inert (and near-free) without any.

    One bus lives on each :class:`~repro.obs._runtime.ObsContext`. Sinks
    attach through :func:`repro.obs.attach_sink`, which also wires the
    tracer's span listener — a bus with no sinks is never consulted by the
    tracer at all.
    """

    def __init__(self) -> None:
        self._sinks: List[Any] = []
        self._lock = threading.Lock()
        self.seq = 0
        self.published = 0
        self.sink_errors = 0

    @property
    def active(self) -> bool:
        """Is at least one sink attached? Call sites guard on this before
        building event payloads, keeping the no-sink path allocation-free."""
        return bool(self._sinks)

    def attach(self, sink: Any) -> Any:
        """Attach a sink (anything with ``offer(event)``); returns it."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)
        return sink

    def detach(self, sink: Any) -> None:
        """Detach a sink; unknown sinks are ignored."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def publish(self, type: str, **payload: Any) -> None:
        """Deliver one typed event to every sink; no-op without sinks.

        Delivery is synchronous but bounded (sinks buffer or drop, never
        block) and exception-safe (a broken sink is counted and skipped).
        """
        sinks = self._sinks
        if not sinks:
            return
        self.seq += 1
        self.published += 1
        event: Dict[str, Any] = {
            "seq": self.seq,
            "ts": round(time.time(), 6),
            "type": type,
        }
        event.update(payload)
        for sink in sinks:
            try:
                sink.offer(event)
            except Exception:
                self.sink_errors += 1

    def dropped(self) -> int:
        """Total events dropped across attached buffering sinks."""
        return sum(int(getattr(sink, "dropped", 0)) for sink in self._sinks)

    def stats(self) -> Dict[str, Any]:
        """Bus accounting for ``/progress`` and the run registry."""
        return {
            "sinks": len(self._sinks),
            "published": self.published,
            "dropped": self.dropped(),
            "sink_errors": self.sink_errors,
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


def event_lines(events: Iterable[Dict[str, Any]]) -> Iterable[str]:
    """Events as compact NDJSON lines (the ``/events`` wire format)."""
    for event in events:
        payload = {str(k): _jsonable(v) for k, v in event.items()}
        payload.setdefault("schema", EVENTS_SCHEMA)
        yield json.dumps(payload, sort_keys=True, separators=(",", ":"))
