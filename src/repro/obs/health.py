"""Composing probe findings into a per-stage, per-run health report.

A :class:`HealthReport` folds the run's accumulated
:class:`~repro.obs.probes.HealthFinding` records (plus any recorded
degradations) into one verdict per stage and one overall verdict — the
thing ``autosens doctor`` prints and the run manifest carries under
``extra["health"]``.

Severity algebra is deliberately simple: a stage's verdict is the worst
severity among its findings, the overall verdict is the worst stage, and
runtime degradations (starved slices, tripped breakers, exceeded
deadlines) count as ``warn`` findings on a synthetic ``runtime`` stage so
a faulted run can never report clean.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.probes import SEVERITIES

__all__ = [
    "HEALTH_SCHEMA",
    "HealthReport",
    "build_health_report",
    "load_health_report",
    "write_health_report",
]

#: Bump when the serialized health-report field set changes.
HEALTH_SCHEMA = 1

_RANK = {name: i for i, name in enumerate(SEVERITIES)}


def _worst(severities: Iterable[str]) -> str:
    worst = "ok"
    for severity in severities:
        if _RANK.get(severity, 0) > _RANK[worst]:
            worst = severity
    return worst


class HealthReport:
    """Findings grouped by stage with folded verdicts.

    ``verdict`` is one of ``ok``/``warn``/``fail``; ``exit_code`` maps it
    onto the CLI taxonomy (``fail`` → 1, otherwise 0 — warnings are
    advisory, the run's answer still exists).
    """

    def __init__(
        self,
        findings: List[Dict[str, Any]],
        margins: Optional[Dict[str, float]] = None,
    ) -> None:
        self.findings = findings
        #: Paired-probe margins the findings were judged against (see
        #: :class:`~repro.obs.probes.PairedRegimeMargins`); ``None`` for
        #: reports built from unpaired probes.
        self.margins = dict(margins) if margins else None
        self.stages: Dict[str, str] = {}
        for finding in findings:
            stage = str(finding.get("stage", "unknown"))
            severity = str(finding.get("severity", "warn"))
            self.stages[stage] = _worst((self.stages.get(stage, "ok"), severity))
        self.verdict = _worst(self.stages.values()) if self.stages else "ok"

    @property
    def exit_code(self) -> int:
        return 1 if self.verdict == "fail" else 0

    def counts(self) -> Dict[str, int]:
        """Finding counts by severity (all three keys always present)."""
        out = {name: 0 for name in SEVERITIES}
        for finding in self.findings:
            out[str(finding.get("severity", "warn"))] = (
                out.get(str(finding.get("severity", "warn")), 0) + 1)
        return out

    def worst_findings(self, limit: int = 10) -> List[Dict[str, Any]]:
        """Findings sorted worst-first (stable within a severity)."""
        ranked = sorted(
            self.findings,
            key=lambda f: -_RANK.get(str(f.get("severity", "warn")), 1),
        )
        return ranked[:limit]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": HEALTH_SCHEMA,
            "verdict": self.verdict,
            "stages": {k: self.stages[k] for k in sorted(self.stages)},
            "counts": self.counts(),
            "findings": self.findings,
        }
        # Optional key: only paired harnesses carry margins, so existing
        # schema-1 artifacts (and their committed goldens) are unchanged.
        if self.margins is not None:
            out["margins"] = self.margins
        return out


def build_health_report(
    findings: Optional[Iterable[Dict[str, Any]]] = None,
    degradations: Optional[Iterable[Dict[str, Any]]] = None,
    margins: Optional[Dict[str, float]] = None,
) -> HealthReport:
    """Compose the report from probe findings and runtime degradations.

    When both arguments are omitted, the active observability context's
    accumulated findings and degradations are used — the shape
    ``run_experiment`` and the CLI rely on. ``margins`` (a
    :meth:`~repro.obs.probes.PairedRegimeMargins.to_dict` mapping) is
    recorded on the report when the findings came from paired probes.
    """
    if findings is None and degradations is None:
        from repro.obs import _runtime

        ctx = _runtime.current()
        findings = list(ctx.findings) if ctx.enabled else []
        degradations = list(ctx.degradations) if ctx.enabled else []
    merged: List[Dict[str, Any]] = [dict(f) for f in (findings or [])]
    for degradation in degradations or []:
        kind = str(degradation.get("kind", "degradation"))
        detail = {k: v for k, v in degradation.items() if k != "kind"}
        merged.append({
            "probe": "degradation",
            "stage": "runtime",
            "severity": "warn",
            "message": f"runtime degradation recorded: {kind}",
            "context": {"kind": kind, **{k: _scalar(v) for k, v in detail.items()}},
        })
    return HealthReport(merged, margins=margins)


def _scalar(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_health_report(report: HealthReport, path: Union[str, Path]) -> Path:
    """Serialize the report atomically (same discipline as the manifest)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    tmp.replace(path)
    return path


def load_health_report(source: Union[str, Path, Dict[str, Any]]) -> HealthReport:
    """Rebuild a report from a file path or an already-parsed dict.

    Raises :class:`repro.errors.SchemaError` on a wrong or missing schema —
    ``autosens doctor`` turns that into exit code 3.
    """
    from repro.errors import SchemaError

    if isinstance(source, (str, Path)):
        try:
            with open(source, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SchemaError(f"cannot read health report {source}: {exc}") from exc
    else:
        payload = source
    if not isinstance(payload, dict) or payload.get("schema") != HEALTH_SCHEMA:
        raise SchemaError(
            f"not a schema-{HEALTH_SCHEMA} health report: "
            f"{source if isinstance(source, (str, Path)) else type(payload)}")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        raise SchemaError("health report is missing its findings list")
    return HealthReport([dict(f) for f in findings])
