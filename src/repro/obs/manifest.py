"""Run provenance manifests.

A manifest answers "what exactly produced these outputs?": the experiment
id, the RNG seed, a fingerprint of the analysis config, the python and
package versions that ran, sha256 digests of every input file, the
degradations the pipeline accepted, and the ingestion/quarantine totals.
It is written *atomically* (tmp + ``os.replace``) next to the experiment
outputs so a crash can never leave a half-written provenance record.

With ``deterministic=True`` the volatile fields (wall-clock ``created_at``)
are omitted and the JSON is key-sorted/compact, so two runs of the same
seeded experiment produce byte-identical manifests — the property the CI
obs job asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import SchemaError

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_rows",
    "file_digest",
]

#: Bump when the manifest field set changes incompatibly.
MANIFEST_SCHEMA = 1


def file_digest(path: Union[str, Path], chunk_size: int = 1 << 20) -> str:
    """sha256 hex digest of a file's bytes, streamed."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def _package_versions() -> Dict[str, str]:
    """Versions of the third-party packages the pipeline leans on."""
    versions: Dict[str, str] = {}
    for name in ("numpy", "scipy"):
        try:
            module = __import__(name)
            versions[name] = str(getattr(module, "__version__", "unknown"))
        except ImportError:  # pragma: no cover - both ship in the image
            versions[name] = "absent"
    return versions


def _fingerprint_config(config_fingerprint: Any) -> str:
    """Stable hex digest of a config fingerprint tuple/value."""
    raw = repr(config_fingerprint).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:16]


def build_manifest(
    experiment_id: str,
    seed: int,
    config_fingerprint: Any = None,
    inputs: Iterable[Union[str, Path]] = (),
    degradations: Optional[List[Dict[str, Any]]] = None,
    ingest: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    deterministic: bool = False,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict (pure; writing is separate).

    ``run_id`` is derived from ``(experiment_id, seed, config)`` so the same
    logical run always carries the same identity — it doubles as the
    trace id that seeds deterministic span ids. ``ingest`` takes the
    ``IngestReport`` summary dict; ``metrics`` a registry snapshot.
    """
    config_hash = _fingerprint_config(config_fingerprint)
    run_id = hashlib.sha256(
        f"{experiment_id}\x00{seed}\x00{config_hash}".encode("utf-8")
    ).hexdigest()[:16]
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "experiment_id": experiment_id,
        "seed": seed,
        "config_fingerprint": config_hash,
        "deterministic": deterministic,
        "python": platform.python_version(),
        "platform": sys.platform,
        "packages": _package_versions(),
        "inputs": {
            str(Path(p)): file_digest(p) for p in sorted(map(str, inputs))
        },
        "degradations": list(degradations or []),
        "ingest": dict(ingest) if ingest else {},
        "metrics": dict(metrics) if metrics else {},
    }
    if not deterministic:
        import time

        manifest["created_at"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: Dict[str, Any],
                   path: Union[str, Path]) -> Path:
    """Atomically write a manifest as key-sorted JSON; returns the path."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, sort_keys=True, indent=None,
                  separators=(",", ":"), default=str)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest back; raises :class:`SchemaError` on malformed files."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(data, dict) or "run_id" not in data:
        raise SchemaError(f"{path} is not a run manifest (no run_id)")
    return data


def manifest_rows(manifest: Dict[str, Any]) -> List[Tuple[str, Any]]:
    """Key/value rows for human rendering (``repro obs summary``)."""
    rows: List[Tuple[str, Any]] = [
        ("run id", manifest.get("run_id", "?")),
        ("experiment", manifest.get("experiment_id", "?")),
        ("seed", manifest.get("seed", "?")),
        ("config fingerprint", manifest.get("config_fingerprint", "?")),
        ("deterministic", manifest.get("deterministic", False)),
        ("python", manifest.get("python", "?")),
    ]
    if manifest.get("created_at"):
        rows.append(("created at", manifest["created_at"]))
    for pkg, version in sorted(manifest.get("packages", {}).items()):
        rows.append((f"package[{pkg}]", version))
    for path, digest in sorted(manifest.get("inputs", {}).items()):
        rows.append((f"input[{path}]", digest[:12]))
    ingest = manifest.get("ingest") or {}
    for key in ("n_rows", "n_good", "n_bad", "quarantine_path"):
        if key in ingest:
            rows.append((f"ingest {key}", ingest[key]))
    for reason, count in sorted((ingest.get("reasons") or {}).items()):
        rows.append((f"ingest rejected[{reason}]", count))
    degradations = manifest.get("degradations") or []
    rows.append(("degradations", len(degradations)))
    for d in degradations:
        label = d.get("kind", "degraded") if isinstance(d, dict) else str(d)
        detail = d.get("detail", "") if isinstance(d, dict) else ""
        rows.append((f"  {label}", detail))
    health = manifest.get("health")
    if isinstance(health, dict):
        counts = health.get("counts") or {}
        rows.append(("health verdict", health.get("verdict", "?")))
        rows.append(("health findings",
                     " ".join(f"{k}={counts.get(k, 0)}"
                              for k in ("ok", "warn", "fail"))))
        for stage, verdict in sorted((health.get("stages") or {}).items()):
            rows.append((f"  health[{stage}]", verdict))
    supervisor_gauges = (
        "autosens_breaker_state",
        "autosens_memory_governor_bytes",
        "autosens_deadline_remaining_s",
        "autosens_watchdog_requeues",
    )
    for name in supervisor_gauges:
        metric = (manifest.get("metrics") or {}).get(name)
        if not isinstance(metric, dict):
            continue
        for labels, value in sorted((metric.get("series") or {}).items()):
            rows.append((f"supervisor {name}{labels}", value))
    for name, metric in sorted((manifest.get("metrics") or {}).items()):
        if not isinstance(metric, dict) or metric.get("kind") != "histogram":
            continue
        for labels, entry in sorted((metric.get("series") or {}).items()):
            quantiles = entry.get("quantiles") if isinstance(entry, dict) else None
            if quantiles:
                rows.append((
                    f"{name}{labels}",
                    " ".join(f"{k}={quantiles[k]}" for k in sorted(quantiles))))
    return rows
