"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain in-memory map from metric name to a
typed instrument; there is no background thread, no sockets, no deps. Two
exporters are provided: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text exposition format (scrape-compatible, also pleasant to read
in a terminal) and :meth:`MetricsRegistry.snapshot` returns a JSON-ready
dict with deterministic ordering — byte-stable output for a fixed workload.

Labels are passed as keyword arguments and stored as sorted tuples, so
``inc("x", a="1", b="2")`` and ``inc("x", b="2", a="1")`` hit the same
series. Histograms use *fixed* bucket bounds chosen at creation; this keeps
the exporter deterministic and the memory bounded.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS_S",
    "SUMMARY_QUANTILES",
    "bucket_quantile",
    "write_metrics_json",
    "write_metrics_prometheus",
]

#: Seconds buckets suiting both sub-ms cache hits and multi-second sweeps.
DEFAULT_DURATION_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

#: Quantiles summarized from histogram buckets in both exporters.
SUMMARY_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition format: inside a quoted
    label value, backslash, double-quote and newline must be escaped."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    """Prometheus-style number rendering: integers without a trailing .0."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self.series.get(_label_key(labels), 0.0)

    def render(self) -> Iterable[str]:
        for key in sorted(self.series):
            yield f"{self.name}{_render_labels(key)} {_fmt(self.series[key])}"

    def snapshot(self) -> Dict[str, float]:
        return {_render_labels(key) or "": v
                for key, v in sorted(self.series.items())}


class Gauge(Counter):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self.series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount


def bucket_quantile(bounds: Sequence[float], counts: Sequence[int],
                    q: float) -> float:
    """Quantile estimate from fixed buckets by linear interpolation.

    ``counts`` holds one count per finite bound plus the trailing ``+Inf``
    count. Within the crossing bucket the value is interpolated linearly
    (the first bucket's lower edge is 0 — these are durations/sizes); a
    crossing that lands in the ``+Inf`` bucket clamps to the last finite
    bound, which is the most honest answer fixed buckets can give.
    """
    total = sum(counts)
    if total <= 0:
        return float("nan")
    target = q * total
    cumulative = 0
    for i, bound in enumerate(bounds):
        previous = cumulative
        cumulative += counts[i]
        if cumulative >= target and counts[i] > 0:
            lo = bounds[i - 1] if i else 0.0
            fraction = (target - previous) / counts[i]
            return lo + (bound - lo) * fraction
    return float(bounds[-1])


class Histogram:
    """Fixed-bucket distribution with cumulative (``le``) bucket counts."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS_S) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigError(f"histogram {name} needs sorted, non-empty buckets")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        # per label-set: ([count per bucket incl. +Inf], sum, count)
        self.series: Dict[LabelKey, List[Any]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        state = self.series.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self.series[key] = state
        counts, _, _ = state
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        state[1] += value
        state[2] += 1

    def value(self, **labels: Any) -> Tuple[float, int]:
        """(sum, count) for one label set."""
        state = self.series.get(_label_key(labels))
        if state is None:
            return (0.0, 0)
        return (state[1], state[2])

    def quantiles(self, **labels: Any) -> Dict[str, float]:
        """Bucket-interpolated summary quantiles for one label set."""
        state = self.series.get(_label_key(labels))
        if state is None:
            return {}
        return self._quantiles_for(state[0])

    def _quantiles_for(self, counts: Sequence[int]) -> Dict[str, float]:
        return {
            name: round(bucket_quantile(self.buckets, counts, q), 6)
            for name, q in SUMMARY_QUANTILES
        }

    def render(self) -> Iterable[str]:
        for key in sorted(self.series):
            counts, total, n = self.series[key]
            cumulative = 0
            for bound, c in zip(self.buckets, counts):
                cumulative += c
                lab = _render_labels(key, [("le", _fmt(bound))])
                yield f"{self.name}_bucket{lab} {cumulative}"
            cumulative += counts[-1]
            lab = _render_labels(key, [("le", "+Inf")])
            yield f"{self.name}_bucket{lab} {cumulative}"
            yield f"{self.name}_sum{_render_labels(key)} {_fmt(total)}"
            yield f"{self.name}_count{_render_labels(key)} {n}"

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key in sorted(self.series):
            counts, total, n = self.series[key]
            out[_render_labels(key) or ""] = {
                "buckets": {_fmt(b): c for b, c in zip(self.buckets, counts)},
                "inf": counts[-1],
                "sum": total,
                "count": n,
                "quantiles": self._quantiles_for(counts),
            }
        return out

    def render_quantile_comments(self) -> Iterable[str]:
        """``# QUANTILE`` comment lines — scrapers ignore ``#``, humans and
        ``validate_obs.py`` read the p50/p90/p99 summaries."""
        for key in sorted(self.series):
            parts = " ".join(
                f"{name}={_fmt(value)}"
                for name, value in self._quantiles_for(self.series[key][0]).items()
            )
            yield f"# QUANTILE {self.name}{_render_labels(key)} {parts}"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for the process's metrics.

    Re-registering an existing name with the same kind returns the existing
    instrument; a kind clash raises :class:`~repro.errors.ConfigError` (a
    silent re-type would corrupt both series).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}")
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS_S) -> Histogram:
        return self._get(name, "histogram", lambda: Histogram(name, help, buckets))

    # -- convenience write paths (used by repro.obs facade) -------------------

    def inc(self, name: str, amount: float = 1.0, help: str = "",
            **labels: Any) -> None:
        self.counter(name, help).inc(amount, **labels)

    def set_gauge(self, name: str, value: float, help: str = "",
                  **labels: Any) -> None:
        self.gauge(name, help).set(value, **labels)

    def observe(self, name: str, value: float, help: str = "",
                buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS_S,
                **labels: Any) -> None:
        self.histogram(name, help, buckets).observe(value, **labels)

    # -- exporters ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, deterministically ordered."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
            if isinstance(metric, Histogram):
                lines.extend(metric.render_quantile_comments())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready nested dict of every series, deterministically ordered."""
        return {
            name: {"kind": metric.kind, "series": metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }

    def __len__(self) -> int:
        return len(self._metrics)


def write_metrics_prometheus(registry: MetricsRegistry,
                             path: Union[str, Path]) -> None:
    """Write the registry in Prometheus text format."""
    Path(path).write_text(registry.render_prometheus(), encoding="utf-8")


def write_metrics_json(registry: MetricsRegistry,
                       path: Union[str, Path]) -> None:
    """Write the registry snapshot as compact, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.snapshot(), fh, sort_keys=True,
                  separators=(",", ":"))
        fh.write("\n")
