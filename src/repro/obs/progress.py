"""Live progress: per-stage completed/total, EWMA throughput, and ETA.

A :class:`ProgressTracker` is an event-bus *sink* (see
:mod:`repro.obs.events`): executors announce stage totals (``stage``
events) and completions (``tasks`` events), the tracer streams span
opens/closes, and the tracker folds them into a JSON-ready snapshot —
the payload behind the obs server's ``/progress`` endpoint, the
``autosens top`` terminal view, and the ``progress.json`` artifact the
run registry persists.

Throughput is an exponentially-weighted moving average over task
completions (half-life :data:`DEFAULT_HALFLIFE_S`), so the ETA tracks the
*current* rate rather than the run-lifetime mean — a stage that warmed its
caches reports the faster steady-state rate. All clocks here are wall
clocks: progress is a live view, never a deterministic artifact, and the
tracker touches no tracer or RNG state.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "PROGRESS_SCHEMA",
    "DEFAULT_HALFLIFE_S",
    "ProgressTracker",
    "render_progress",
    "snapshot_from_manifest",
]

#: Bump when the progress snapshot field set changes incompatibly.
PROGRESS_SCHEMA = 1

#: EWMA half-life for task throughput, in seconds.
DEFAULT_HALFLIFE_S = 5.0

#: Progress states a snapshot can report.
STATES = ("running", "done", "failed")


class _StageProgress:
    """Mutable per-stage accumulator (totals, completions, EWMA rate)."""

    __slots__ = ("total", "done", "started_at", "updated_at", "rate")

    def __init__(self, now: float) -> None:
        self.total: Optional[int] = None
        self.done = 0
        self.started_at = now
        self.updated_at = now
        self.rate: Optional[float] = None  # tasks/s, EWMA


class ProgressTracker:
    """Fold executor and span events into per-stage progress with ETA.

    Thread-safe enough for its real topology: one publisher thread (the
    pipeline) mutates, HTTP handler threads read snapshots — per-stage
    state is swapped atomically under the GIL and the snapshot tolerates
    mid-update reads (it only ever sees a slightly stale frame).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 halflife_s: float = DEFAULT_HALFLIFE_S) -> None:
        self._clock = clock
        self._halflife_s = max(1e-3, float(halflife_s))
        self._stages: Dict[str, _StageProgress] = {}
        self._stage_order: List[str] = []
        self._open_paths: List[str] = []
        self._span_counts: Dict[str, int] = {}
        self.state = "running"
        self.started_at = clock()
        self.finished_at: Optional[float] = None
        self.dropped = 0  # events a bounded upstream sink reported dropped
        self.events_seen = 0
        self.run_id = ""

    # -- sink protocol -------------------------------------------------------

    def offer(self, event: Dict[str, Any]) -> None:
        """Consume one bus event (the :class:`~repro.obs.events.EventBus`
        sink protocol); unknown event types are ignored."""
        self.events_seen += 1
        etype = event.get("type")
        if etype == "stage":
            self._on_stage(str(event.get("stage", "?")),
                           int(event.get("total", 0)))
        elif etype == "tasks":
            self._on_tasks(str(event.get("stage", "?")),
                           int(event.get("done", 0)))
        elif etype == "span_open":
            path = str(event.get("path", ""))
            if path:
                self._open_paths.append(path)
        elif etype == "span_close":
            name = str(event.get("name", ""))
            self._span_counts[name] = self._span_counts.get(name, 0) + 1
            path = str(event.get("path", ""))
            if path and path in self._open_paths:
                self._open_paths.remove(path)
        elif etype == "run":
            phase = event.get("phase")
            if phase in ("done", "failed"):
                self.finish(state=str(phase))
            elif event.get("run_id"):
                self.run_id = str(event["run_id"])

    # -- event folding -------------------------------------------------------

    def _stage(self, name: str) -> _StageProgress:
        stage = self._stages.get(name)
        if stage is None:
            stage = _StageProgress(self._clock())
            self._stages[name] = stage
            self._stage_order.append(name)
        return stage

    def _on_stage(self, name: str, total: int) -> None:
        stage = self._stage(name)
        # Several maps over the same task function accumulate one total.
        stage.total = (stage.total or 0) + max(0, total)

    def _on_tasks(self, name: str, done: int) -> None:
        if done <= 0:
            return
        stage = self._stage(name)
        now = self._clock()
        # Clamp the window: a clock that stalls or steps backwards must
        # not turn into a zero/negative dt and an infinite rate.
        dt = max(1e-6, now - stage.updated_at)
        instantaneous = done / dt
        if math.isfinite(instantaneous) and instantaneous >= 0.0:
            if stage.rate is None:
                stage.rate = instantaneous
            else:
                weight = 1.0 - math.exp(-dt / self._halflife_s)
                stage.rate += weight * (instantaneous - stage.rate)
            if stage.rate is not None and \
                    (not math.isfinite(stage.rate) or stage.rate < 0.0):
                stage.rate = None
        stage.done += done
        stage.updated_at = now

    def finish(self, state: str = "done") -> None:
        """Mark the run finished; later events still count but the snapshot
        reports a terminal state (and stops advertising ETAs)."""
        self.state = state if state in STATES else "done"
        self.finished_at = self._clock()

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready progress frame (the ``/progress`` payload)."""
        now = self.finished_at if self.finished_at is not None else self._clock()
        stages: Dict[str, Any] = {}
        for name in list(self._stage_order):
            stage = self._stages[name]
            # An over-reporting executor (done > total, e.g. retried
            # tasks) must not leak an impossible frame to /progress.
            done = stage.done if stage.total is None \
                else min(stage.done, stage.total)
            entry: Dict[str, Any] = {
                "done": done,
                "total": stage.total,
                "elapsed_s": round(max(0.0, now - stage.started_at), 3),
            }
            rate = stage.rate
            if rate is not None and \
                    (not math.isfinite(rate) or rate < 0.0):
                rate = None
            entry["rate_per_s"] = round(rate, 3) if rate is not None else None
            eta: Optional[float] = None
            if (self.state == "running" and stage.total is not None
                    and rate is not None and rate > 1e-9
                    and stage.total > done):
                eta = (stage.total - done) / rate
                if not math.isfinite(eta) or eta < 0.0:
                    eta = None
            entry["eta_s"] = round(eta, 1) if eta is not None else None
            stages[name] = entry
        return {
            "schema": PROGRESS_SCHEMA,
            "state": self.state,
            "run_id": self.run_id,
            "elapsed_s": round(max(0.0, now - self.started_at), 3),
            "stages": stages,
            "spans": {k: self._span_counts[k]
                      for k in sorted(self._span_counts)},
            "current": self._open_paths[-1] if self._open_paths else None,
            "events": {"seen": self.events_seen, "dropped": self.dropped},
        }


def snapshot_from_manifest(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """A progress-shaped frame synthesized from a run manifest.

    Runs recorded without ``--serve-obs`` persist no ``progress.json``;
    ``autosens top`` degrades to this manifest-only summary instead of
    erroring: terminal state from ``exit_status``, span counts and a
    wall-clock estimate from ``span_timings``. The frame satisfies the
    same schema ``tools/validate_obs.py --progress`` checks, and carries
    ``"source": "manifest"`` so renderers can label it honestly.
    """
    timings = manifest.get("span_timings")
    spans: Dict[str, int] = {}
    elapsed = 0.0
    if isinstance(timings, dict):
        for name in sorted(timings):
            cell = timings[name]
            if not isinstance(cell, dict):
                continue
            count = cell.get("count")
            if isinstance(count, int) and count >= 0:
                spans[str(name)] = count
            seconds = cell.get("seconds")
            if isinstance(seconds, (int, float)) and seconds >= 0:
                elapsed += float(seconds)
    exit_status = manifest.get("exit_status", 0)
    state = "done" if exit_status in (0, None) else "failed"
    return {
        "schema": PROGRESS_SCHEMA,
        "state": state,
        "run_id": str(manifest.get("run_id", "") or ""),
        "elapsed_s": round(elapsed, 3),
        "stages": {},
        "spans": spans,
        "current": None,
        "events": {"seen": 0, "dropped": 0},
        "source": "manifest",
    }


# ---------------------------------------------------------------------------
# Terminal rendering (`autosens top`).
# ---------------------------------------------------------------------------


def _bar(done: int, total: Optional[int], width: int = 24) -> str:
    if not total:
        return "-" * width
    filled = max(0, min(width, int(round(width * done / total))))
    return "#" * filled + "." * (width - filled)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "-"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.0f}s"


def render_progress(snapshot: Dict[str, Any], source: str = "") -> str:
    """One ``autosens top`` frame from a progress snapshot."""
    lines = []
    header = f"autosens top — {snapshot.get('state', '?')}"
    if snapshot.get("run_id"):
        header += f"  run {snapshot['run_id']}"
    if source:
        header += f"  [{source}]"
    header += f"  elapsed {snapshot.get('elapsed_s', 0.0):.1f}s"
    lines.append(header)
    stages = snapshot.get("stages") or {}
    if stages:
        lines.append("")
        for name, entry in stages.items():
            done = entry.get("done", 0)
            total = entry.get("total")
            rate = entry.get("rate_per_s")
            frac = f"{done}/{total}" if total else f"{done}"
            rate_s = f"{rate:.1f}/s" if rate is not None else "-"
            lines.append(
                f"  [{_bar(done, total)}] {frac:>11}  {rate_s:>8}  "
                f"eta {_fmt_eta(entry.get('eta_s')):>6}  {name}")
    elif snapshot.get("source") == "manifest":
        lines.append("  (recorded without --serve-obs — "
                     "manifest-only summary)")
    else:
        lines.append("  (no stage progress yet)")
    current = snapshot.get("current")
    if current and snapshot.get("state") == "running":
        lines.append(f"  now: {current}")
    spans = snapshot.get("spans") or {}
    if spans:
        top = sorted(spans.items(), key=lambda kv: (-kv[1], kv[0]))[:6]
        lines.append("  spans: " + "  ".join(f"{n}x{c}" for n, c in top))
    events = snapshot.get("events") or {}
    if events.get("dropped"):
        lines.append(f"  events dropped: {events['dropped']}")
    return "\n".join(lines)
