"""Span-level profiling attribution and a sampling profiler.

Two complementary views of where a run spends its resources:

- :class:`SpanProfiler` piggybacks on the span tree via the tracer's
  ``profiler`` hook: on every span enter/exit it reads the process CPU
  clock (``time.process_time``) and peak RSS (``resource.getrusage``) and
  attributes *self* CPU time (total minus time spent in child spans) to
  the span's name. The hook **never touches the span record itself** —
  trace/metrics/manifest artifacts are byte-identical whether profiling is
  on or off (the ``obs_overhead``-style identity guarantee, enforced by
  ``tests/obs/test_profile.py`` and the CLI byte-identity tests).
- :class:`StackSampler` is a background thread that samples the main
  thread's Python stack at a fixed interval and accumulates folded stacks
  (``outer;inner;leaf count``) — the flamegraph input format consumed by
  ``flamegraph.pl`` / speedscope.

Both views export into one schema-1 profile artifact via
:func:`build_profile` / :func:`write_profile`.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "PROFILE_SCHEMA",
    "SpanProfiler",
    "StackSampler",
    "build_profile",
    "write_profile",
    "load_profile",
    "folded_from_spans",
    "top_by_self_time",
]

#: Bump when the profile artifact field set changes.
PROFILE_SCHEMA = 1

try:  # pragma: no cover - resource is POSIX-only; absent means RSS stays 0.
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None


def _peak_rss_kb() -> float:
    """Process peak RSS in KiB (``ru_maxrss`` is KiB on Linux, bytes on macOS)."""
    if _resource is None:
        return 0.0
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        rss /= 1024.0
    return float(rss)


class _Frame:
    __slots__ = ("name", "cpu_enter", "child_cpu", "wall_enter")

    def __init__(self, name: str, cpu_enter: float, wall_enter: float) -> None:
        self.name = name
        self.cpu_enter = cpu_enter
        self.child_cpu = 0.0
        self.wall_enter = wall_enter


class SpanProfiler:
    """Per-span-name CPU (self and total) and peak-RSS attribution.

    The tracer calls :meth:`on_enter` / :meth:`on_exit` around each span's
    lifetime. A parallel frame stack mirrors the tracer's span stack and
    carries a child-CPU accumulator so self time is exact, not estimated.
    Aggregation is by span *name* (like the perf suite's ``span_timings``),
    which keeps the artifact small and diffable across runs with different
    span counts.
    """

    def __init__(self) -> None:
        import time

        self._clock = time.process_time
        self._wall = time.perf_counter
        self._stack: List[_Frame] = []
        self.spans: Dict[str, Dict[str, float]] = {}

    # -- tracer hooks --------------------------------------------------------

    def on_enter(self, name: str) -> None:
        self._stack.append(_Frame(name, self._clock(), self._wall()))

    def on_exit(self, name: str) -> None:
        now_cpu = self._clock()
        now_wall = self._wall()
        # Pop down to the matching frame, mirroring the tracer's tolerance
        # for out-of-order exits; unmatched frames fold into their parent.
        while self._stack:
            frame = self._stack.pop()
            if frame.name == name:
                break
        else:
            return
        total_cpu = now_cpu - frame.cpu_enter
        self_cpu = max(0.0, total_cpu - frame.child_cpu)
        if self._stack:
            self._stack[-1].child_cpu += total_cpu
        entry = self.spans.setdefault(name, {
            "count": 0.0, "cpu_self_s": 0.0, "cpu_total_s": 0.0,
            "wall_s": 0.0, "rss_peak_kb": 0.0,
        })
        entry["count"] += 1
        entry["cpu_self_s"] += self_cpu
        entry["cpu_total_s"] += total_cpu
        entry["wall_s"] += now_wall - frame.wall_enter
        entry["rss_peak_kb"] = max(entry["rss_peak_kb"], _peak_rss_kb())

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Aggregates by span name, rounded for a stable artifact."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.spans):
            entry = self.spans[name]
            out[name] = {
                "count": int(entry["count"]),
                "cpu_self_s": round(entry["cpu_self_s"], 6),
                "cpu_total_s": round(entry["cpu_total_s"], 6),
                "wall_s": round(entry["wall_s"], 6),
                "rss_peak_kb": round(entry["rss_peak_kb"], 1),
            }
        return out


class StackSampler:
    """Fixed-interval Python stack sampler for one target thread.

    A daemon thread wakes every ``interval_s`` and snapshots the target
    thread's frame via ``sys._current_frames()``, folding it into
    ``outer;inner;leaf`` stack strings with sample counts. Pure-Python
    sampling ticks at wall intervals, so counts approximate wall time —
    good enough to see *where* a multi-second stage lives.
    """

    def __init__(self, interval_s: float = 0.005,
                 target_thread_id: Optional[int] = None,
                 max_depth: int = 64) -> None:
        self.interval_s = max(0.001, float(interval_s))
        self.target_thread_id = (
            target_thread_id if target_thread_id is not None
            else threading.main_thread().ident)
        self.max_depth = max_depth
        self.samples: Dict[str, int] = {}
        self.n_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _fold(self, frame: Any) -> str:
        parts: List[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            parts.append(f"{Path(code.co_filename).name}:{code.co_name}")
            frame = frame.f_back
            depth += 1
        return ";".join(reversed(parts))

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self.target_thread_id)
            if frame is None:
                continue
            stack = self._fold(frame)
            if stack:
                self.samples[stack] = self.samples.get(stack, 0) + 1
                self.n_samples += 1

    def start(self) -> "StackSampler":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="autosens-stack-sampler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def folded(self) -> List[str]:
        """Folded-stack lines (``a;b;c count``), deterministic order."""
        return [f"{stack} {count}"
                for stack, count in sorted(self.samples.items())]


def folded_from_spans(span_snapshot: Dict[str, Dict[str, float]],
                      records: Optional[List[Dict[str, Any]]] = None,
                      ) -> List[str]:
    """Folded stacks built from the span *tree* weighted by self-CPU ms.

    When trace records are available the span paths give real nesting
    (``/experiment/sweep/slice 42``); otherwise each profiled name stands
    alone. Values are integer self-CPU milliseconds so flamegraph tooling
    gets whole numbers.
    """
    lines: List[str] = []
    if records:
        # Total wall per path from the trace, scaled into each name's
        # measured self-CPU share.
        path_wall: Dict[str, float] = {}
        name_wall: Dict[str, float] = {}
        for record in records:
            path = str(record.get("path", "")).strip("/")
            if not path:
                continue
            dur = float(record.get("dur_us", 0)) / 1e6
            path_wall[path] = path_wall.get(path, 0.0) + dur
            name = str(record.get("name", ""))
            name_wall[name] = name_wall.get(name, 0.0) + dur
        for path in sorted(path_wall):
            name = path.rsplit("/", 1)[-1]
            prof = span_snapshot.get(name)
            if prof is None or name_wall.get(name, 0.0) <= 0:
                continue
            share = path_wall[path] / name_wall[name]
            value = int(round(prof["cpu_self_s"] * share * 1000))
            if value > 0:
                lines.append(f"{path.replace('/', ';')} {value}")
        if lines:
            return lines
    for name in sorted(span_snapshot):
        value = int(round(span_snapshot[name]["cpu_self_s"] * 1000))
        if value > 0:
            lines.append(f"{name} {value}")
    return lines


def top_by_self_time(span_snapshot: Dict[str, Dict[str, float]],
                     limit: int = 10) -> List[Dict[str, Any]]:
    """Top-N table rows by self CPU time (ties broken by name for stability)."""
    ranked = sorted(
        span_snapshot.items(),
        key=lambda item: (-item[1]["cpu_self_s"], item[0]),
    )
    return [
        {
            "span": name,
            "count": entry["count"],
            "cpu_self_s": entry["cpu_self_s"],
            "cpu_total_s": entry["cpu_total_s"],
            "wall_s": entry["wall_s"],
            "rss_peak_kb": entry["rss_peak_kb"],
        }
        for name, entry in ranked[:limit]
    ]


def build_profile(profiler: Optional[SpanProfiler],
                  sampler: Optional[StackSampler] = None,
                  records: Optional[List[Dict[str, Any]]] = None,
                  run_id: str = "") -> Dict[str, Any]:
    """The schema-1 profile artifact from whichever collectors ran."""
    span_snapshot = profiler.snapshot() if profiler is not None else {}
    payload: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "run_id": run_id,
        "spans": span_snapshot,
        "top": top_by_self_time(span_snapshot),
        "folded_spans": folded_from_spans(span_snapshot, records),
        "folded_stacks": sampler.folded() if sampler is not None else [],
        "n_stack_samples": sampler.n_samples if sampler is not None else 0,
    }
    return payload


def write_profile(payload: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Serialize the profile artifact atomically."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    tmp.replace(path)
    return path


def load_profile(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and schema-check a profile artifact."""
    from repro.errors import SchemaError

    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"cannot read profile {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != PROFILE_SCHEMA:
        raise SchemaError(f"not a schema-{PROFILE_SCHEMA} profile: {path}")
    return payload
