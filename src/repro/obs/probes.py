"""Estimator-health probes: statistical diagnostics as structured findings.

PR 3 made the pipeline *observable* (spans, counters, manifests); this
module makes the *science* observable. Each probe inspects one stage's
statistical intermediates — B/U bin occupancy, U-coverage of the B support,
α per-slot dispersion, smoothing-window edge effects, the paper's locality
diagnostics (MSD/MAD, density–latency anti-correlation) — and returns
:class:`HealthFinding` records with an ``ok``/``warn``/``fail`` severity.

Design rules, enforced by ``tests/obs/test_probes.py``:

- **Probes never raise.** Degenerate inputs (empty bins, a single slot, a
  constant-latency series where MSD/MAD is undefined) produce ``warn`` or
  ``fail`` findings, not exceptions — a diagnostics layer that crashes the
  run it is diagnosing is worse than none.
- **Probes are pure.** They take plain arrays/floats and return findings;
  they import nothing from :mod:`repro.core`, so the core pipeline can
  import them without cycles.
- **Probes are cheap.** Every probe is O(n_bins) or O(n_slots); call sites
  gate on the active context's ``enabled`` flag so a non-observed run pays
  one attribute load.

Emitted findings accumulate on the active
:class:`~repro.obs._runtime.ObsContext` (see :func:`emit`) and are composed
into a :class:`~repro.obs.health.HealthReport` at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

__all__ = [
    "HealthFinding",
    "SEVERITIES",
    "emit",
    "probe_bin_occupancy",
    "probe_u_coverage",
    "probe_unbiased_acceptance",
    "probe_alpha_dispersion",
    "probe_slot_support",
    "probe_latency_regime",
    "probe_missingness",
    "PairedRegimeMargins",
    "DEFAULT_PAIRED_MARGINS",
    "probe_smoothing_edges",
    "probe_locality",
    "probe_density_correlation",
]

#: Severities in increasing badness; :mod:`repro.obs.health` folds a run's
#: findings to the worst one.
SEVERITIES = ("ok", "warn", "fail")


@dataclass(frozen=True)
class HealthFinding:
    """One probe observation: a value, a threshold, and a severity.

    ``ok`` findings are recorded too — a health report that only lists
    problems cannot show *how far* a healthy run sits from its thresholds.
    """

    probe: str
    stage: str
    severity: str
    message: str
    value: Optional[float] = None
    threshold: Optional[float] = None
    context: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "probe": self.probe,
            "stage": self.stage,
            "severity": self.severity,
            "message": self.message,
        }
        if self.value is not None:
            out["value"] = round(float(self.value), 6)
        if self.threshold is not None:
            out["threshold"] = float(self.threshold)
        if self.context:
            out["context"] = {k: _json_safe(v) for k, v in self.context.items()}
        return out


def _json_safe(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    return str(value)


def _finite(x: Any, default: float = float("nan")) -> float:
    """A plain float, NaN-safe (probes never trust their inputs)."""
    try:
        v = float(x)
    except (TypeError, ValueError):
        return default
    return v


def emit(findings: Iterable[HealthFinding]) -> None:
    """Record findings on the active observability context (no-op when off)."""
    from repro.obs import _runtime

    ctx = _runtime.current()
    if not ctx.enabled:
        return
    for finding in findings:
        ctx.findings.append(finding.to_dict())
        ctx.metrics.inc("autosens_health_findings_total", 1.0,
                        stage=finding.stage, severity=finding.severity)


# ---------------------------------------------------------------------------
# Distribution probes (B/U histograms, paper Section 2.2/2.3).
# ---------------------------------------------------------------------------


def probe_bin_occupancy(
    biased_counts: np.ndarray,
    unbiased_counts: np.ndarray,
    min_unbiased_count: float,
    slice_description: str = "",
    min_stable_share: float = 0.02,
    min_unbiased_total: float = 400.0,
) -> List[HealthFinding]:
    """B/U bin occupancy and the unbiased draw's effective sample size.

    A preference curve is only defined on bins where U has at least
    ``min_unbiased_count`` mass; this probe reports how much of the grid
    that is, and how large the unbiased draw actually was. An all-empty U
    is a ``fail`` (no curve can exist); a sliver of stable bins or a tiny
    draw is a ``warn``.
    """
    b = np.nan_to_num(np.asarray(biased_counts, dtype=float), nan=0.0)
    u = np.nan_to_num(np.asarray(unbiased_counts, dtype=float), nan=0.0)
    n_bins = int(u.size)
    context: Dict[str, Any] = {"slice": slice_description, "n_bins": n_bins}
    if n_bins == 0 or not np.any(u > 0):
        return [HealthFinding(
            probe="bin_occupancy", stage="preference", severity="fail",
            message="unbiased distribution is empty; no latency bin is usable",
            value=0.0, threshold=min_stable_share, context=context,
        )]
    stable = u >= float(min_unbiased_count)
    stable_share = float(stable.mean())
    u_total = float(u.sum())
    # Effective sample size of the (possibly weighted) biased histogram:
    # (Σw)² / Σw² — equals the raw count for unit weights, shrinks when the
    # α normalization concentrates weight on few bins.
    b_sq = float(np.square(b).sum())
    ess_b = (float(b.sum()) ** 2 / b_sq) if b_sq > 0 else 0.0
    context.update({
        "n_stable_bins": int(stable.sum()),
        "unbiased_total": round(u_total, 3),
        "biased_ess_bins": round(ess_b, 3),
    })
    findings: List[HealthFinding] = []
    if not np.any(stable):
        findings.append(HealthFinding(
            probe="bin_occupancy", stage="preference", severity="fail",
            message=(
                "no latency bin reaches the minimum unbiased count "
                f"({min_unbiased_count:g}); the curve has no support"),
            value=stable_share, threshold=min_stable_share, context=context,
        ))
        return findings
    severity = "warn" if stable_share < min_stable_share else "ok"
    findings.append(HealthFinding(
        probe="bin_occupancy", stage="preference", severity=severity,
        message=(
            f"{int(stable.sum())}/{n_bins} bins stable "
            f"(share {stable_share:.3f})"),
        value=stable_share, threshold=min_stable_share, context=context,
    ))
    findings.append(HealthFinding(
        probe="unbiased_sample_size", stage="preference",
        severity="warn" if u_total < min_unbiased_total else "ok",
        message=f"unbiased draw holds {u_total:.0f} samples",
        value=u_total, threshold=min_unbiased_total,
        context={"slice": slice_description},
    ))
    return findings


def probe_unbiased_acceptance(
    accepted: int,
    target: int,
    drawn: int,
    n_batches: int,
    warn_rate: float = 0.50,
) -> List[HealthFinding]:
    """Acceptance economics of the waste-compensated unbiased draw.

    The sampling estimator inflates its query batch by the expected
    acceptance rate; a realized rate below ``warn_rate`` means more than
    half the drawn queries were rejected (sparse slice or off-grid
    latencies) — invisible waste unless surfaced here. A draw that never
    reached its target (all top-up batches exhausted, or nothing on the
    bin grid at all) degrades the U estimate and is flagged accordingly.
    """
    def _count(x: Any) -> float:
        v = _finite(x, 0.0)
        return v if np.isfinite(v) else 0.0

    accepted_f = _count(accepted)
    target_f = _count(target)
    drawn_f = _count(drawn)
    rate = accepted_f / drawn_f if drawn_f > 0 else 0.0
    context: Dict[str, Any] = {
        "accepted": int(accepted_f), "target": int(target_f),
        "drawn": int(drawn_f), "n_batches": int(_count(n_batches)),
    }
    if target_f <= 0:
        return [HealthFinding(
            probe="unbiased_acceptance", stage="slotted_counts", severity="ok",
            message="unbiased draw requested no queries for this slice",
            value=rate, threshold=warn_rate, context=context,
        )]
    if accepted_f <= 0:
        return [HealthFinding(
            probe="unbiased_acceptance", stage="slotted_counts", severity="fail",
            message="unbiased draw accepted no queries; U is empty for this slice",
            value=rate, threshold=warn_rate, context=context,
        )]
    if accepted_f < target_f:
        return [HealthFinding(
            probe="unbiased_acceptance", stage="slotted_counts", severity="warn",
            message=(
                f"unbiased draw fell short: {accepted_f:.0f}/{target_f:.0f} "
                "accepted after all top-up batches"),
            value=rate, threshold=warn_rate, context=context,
        )]
    severity = "warn" if rate < warn_rate else "ok"
    return [HealthFinding(
        probe="unbiased_acceptance", stage="slotted_counts", severity=severity,
        message=(
            f"unbiased draw accepted {rate:.1%} of {drawn_f:.0f} queries "
            f"({'sparse-slice waste' if severity == 'warn' else 'within budget'})"),
        value=rate, threshold=warn_rate, context=context,
    )]


def probe_u_coverage(
    biased_counts: np.ndarray,
    unbiased_counts: np.ndarray,
    min_unbiased_count: float,
    slice_description: str = "",
    warn_share: float = 0.75,
    fail_share: float = 0.40,
) -> List[HealthFinding]:
    """How much of the *biased mass* sits on bins where U is stable.

    B mass on U-starved bins is invisible to the curve: the ratio B/U is
    undefined there. A low covered share means the answer silently ignores
    a large part of what users actually experienced.
    """
    b = np.nan_to_num(np.asarray(biased_counts, dtype=float), nan=0.0)
    u = np.nan_to_num(np.asarray(unbiased_counts, dtype=float), nan=0.0)
    b_total = float(b.sum())
    context: Dict[str, Any] = {"slice": slice_description}
    if b_total <= 0 or b.size == 0:
        return [HealthFinding(
            probe="u_coverage", stage="preference", severity="fail",
            message="biased distribution is empty",
            value=0.0, threshold=fail_share, context=context,
        )]
    stable = u >= float(min_unbiased_count)
    covered = float(b[stable].sum() / b_total)
    if covered < fail_share:
        severity, threshold = "fail", fail_share
    elif covered < warn_share:
        severity, threshold = "warn", warn_share
    else:
        severity, threshold = "ok", warn_share
    context["covered_mass_share"] = round(covered, 4)
    return [HealthFinding(
        probe="u_coverage", stage="preference", severity=severity,
        message=(
            f"{covered:.1%} of biased mass lies on U-stable bins"),
        value=covered, threshold=threshold, context=context,
    )]


# ---------------------------------------------------------------------------
# α probes (paper Section 2.4.1, Figure 8).
# ---------------------------------------------------------------------------


def probe_alpha_dispersion(
    alpha_matrix: np.ndarray,
    alpha_by_slot: np.ndarray,
    reference_slot: int,
    warn_cv: float = 0.80,
    fail_cv: float = 1.60,
    warn_fallback_share: float = 0.50,
) -> List[HealthFinding]:
    """Per-slot dispersion of α across latency bins (the flatness premise).

    The paper's Figure 8 argues α[T, L] is flat across L, which is what
    licenses averaging it into one α[T] per slot. A large mean coefficient
    of variation across bins means the time correction is applying one
    number to a quantity that is *not* one number — the corrected curve is
    then biased in a latency-dependent way.
    """
    matrix = np.asarray(alpha_matrix, dtype=float)
    by_slot = np.asarray(alpha_by_slot, dtype=float)
    n_slots = int(matrix.shape[0]) if matrix.ndim == 2 else 0
    context: Dict[str, Any] = {
        "n_slots": n_slots, "reference_slot": int(reference_slot)}
    if n_slots == 0:
        return [HealthFinding(
            probe="alpha_dispersion", stage="alpha", severity="fail",
            message="alpha matrix is empty; no slots were estimated",
            context=context,
        )]
    cvs: List[float] = []
    n_fallback = 0
    for row in matrix:
        vals = row[np.isfinite(row)]
        if vals.size >= 2 and vals.mean() > 0:
            cvs.append(float(vals.std() / vals.mean()))
        elif vals.size == 0:
            # No overlapping valid bin with the reference: α for this slot
            # came from the total-count fallback, not the per-bin ratios.
            n_fallback += 1
    fallback_share = n_fallback / n_slots
    context["fallback_slot_share"] = round(fallback_share, 4)
    findings: List[HealthFinding] = []
    if not cvs:
        # Small-scale runs routinely have no per-bin overlap; the
        # total-count fallback is exact under flatness, so this is
        # informational — sparse *data* is caught by the occupancy probes.
        findings.append(HealthFinding(
            probe="alpha_dispersion", stage="alpha", severity="ok",
            message=(
                "no slot has >=2 valid bins; alpha flatness not assessable "
                "(slots used the total-count fallback)"),
            value=fallback_share, threshold=warn_fallback_share,
            context=context,
        ))
        return findings
    mean_cv = float(np.mean(cvs))
    if mean_cv > fail_cv:
        severity, threshold = "fail", fail_cv
    elif mean_cv > warn_cv:
        severity, threshold = "warn", warn_cv
    else:
        severity, threshold = "ok", warn_cv
    findings.append(HealthFinding(
        probe="alpha_dispersion", stage="alpha", severity=severity,
        message=(
            f"mean per-slot CV of alpha across bins = {mean_cv:.3f} "
            f"(flatness premise {'holds' if severity == 'ok' else 'is strained'})"),
        value=mean_cv, threshold=threshold, context=context,
    ))
    if cvs and fallback_share > warn_fallback_share:
        findings.append(HealthFinding(
            probe="alpha_fallback", stage="alpha", severity="warn",
            message=(
                f"{n_fallback}/{n_slots} slots fell back to total-count "
                "alpha (no bin overlaps the reference slot)"),
            value=fallback_share, threshold=warn_fallback_share,
            context=context,
        ))
    # Wildly scaled slots (α far from 1 both ways) are informative but not
    # by themselves wrong; surface the spread as an ok-severity value.
    finite = by_slot[np.isfinite(by_slot) & (by_slot > 0)]
    if finite.size:
        spread = float(finite.max() / finite.min())
        findings.append(HealthFinding(
            probe="alpha_spread", stage="alpha", severity="ok",
            message=f"alpha spans {finite.min():.3f}..{finite.max():.3f} "
                    f"across slots (ratio {spread:.2f})",
            value=spread, context={"n_slots": n_slots},
        ))
    return findings


def probe_slot_support(
    n_slots: int,
    n_reference_slots: int,
    n_used_references: int,
    slice_description: str = "",
) -> List[HealthFinding]:
    """Slot coverage of the time correction.

    With one slot the α correction is an identity (nothing to normalize
    against); with fewer surviving reference slots than configured, the
    multi-reference averaging the paper calls for is running thin.
    """
    findings: List[HealthFinding] = []
    context = {"slice": slice_description, "n_slots": int(n_slots)}
    if n_slots <= 1:
        findings.append(HealthFinding(
            probe="slot_support", stage="alpha", severity="warn",
            message=(
                "single-slot run: the time correction is an identity and "
                "cannot mitigate the diurnal confounder"),
            value=float(n_slots), threshold=2.0, context=context,
        ))
    else:
        findings.append(HealthFinding(
            probe="slot_support", stage="alpha", severity="ok",
            message=f"{n_slots} time slots populated",
            value=float(n_slots), threshold=2.0, context=context,
        ))
    if n_used_references < n_reference_slots:
        findings.append(HealthFinding(
            probe="reference_slots", stage="alpha", severity="warn",
            message=(
                f"only {n_used_references} of {n_reference_slots} "
                "configured reference slots were usable"),
            value=float(n_used_references), threshold=float(n_reference_slots),
            context=context,
        ))
    return findings


def _weighted_percentile(
    counts: np.ndarray, centers: np.ndarray, q: float
) -> float:
    """Percentile of a binned distribution (counts over bin centers)."""
    cum = np.cumsum(counts)
    total = cum[-1]
    if total <= 0:
        return float("nan")
    idx = int(np.searchsorted(cum, q / 100.0 * total, side="left"))
    idx = min(idx, centers.size - 1)
    return float(centers[idx])


def probe_latency_regime(
    slot_bin_counts: np.ndarray,
    bin_centers: np.ndarray,
    slice_description: str = "",
    min_slot_count: float = 50.0,
    warn_tail_ratio: float = 12.0,
    fail_tail_ratio: float = 40.0,
    warn_median_spread: float = 8.0,
    fail_median_spread: float = 30.0,
) -> List[HealthFinding]:
    """Regime shift / tail inflation across the per-slot latency bins.

    Incident-contaminated telemetry leaves two fingerprints in the
    (slots x bins) count tensor that the clean diurnal x OU process does
    not produce: (a) some slot's latency distribution grows a heavy upper
    tail (p99/p50 far beyond the lognormal jitter's), and (b) slot medians
    spread far beyond what the diurnal curve explains — a latency *regime*
    differs across slots, exactly the non-stationarity that biases a pooled
    B/U ratio. Both are cheap weighted-percentile reads off the tensor the
    pipeline already has; neither can raise on degenerate input.

    The default thresholds are a coarse tripwire sized for arbitrary
    scenarios (the seeded OU bottleneck scenario legitimately reaches a
    per-slot p99/p50 near 8.3 and a 4.5x median spread, and must stay
    ``ok``).  Callers with a paired clean reference — the recovery
    harness in :mod:`repro.analysis.recovery` — pass much tighter
    thresholds derived from the clean run's own metrics.
    """
    matrix = np.nan_to_num(
        np.atleast_2d(np.asarray(slot_bin_counts, dtype=float)), nan=0.0
    )
    centers = np.asarray(bin_centers, dtype=float)
    context: Dict[str, Any] = {"slice": slice_description}
    if matrix.size == 0 or centers.size == 0 or matrix.shape[1] != centers.size:
        return [HealthFinding(
            probe="latency_regime", stage="regime", severity="warn",
            message=(
                "latency regime not assessable: empty or mismatched "
                "slot/bin tensor"),
            context=context,
        )]
    totals = matrix.sum(axis=1)
    usable = np.flatnonzero(totals >= float(min_slot_count))
    context["n_slots"] = int(matrix.shape[0])
    context["n_usable_slots"] = int(usable.size)
    if usable.size < 2:
        return [HealthFinding(
            probe="latency_regime", stage="regime", severity="ok",
            message=(
                f"latency regime not assessable: {usable.size} slot(s) with "
                f">= {min_slot_count:g} actions"),
            value=float(usable.size), threshold=2.0, context=context,
        )]
    p50 = np.array([
        _weighted_percentile(matrix[i], centers, 50.0) for i in usable
    ])
    p99 = np.array([
        _weighted_percentile(matrix[i], centers, 99.0) for i in usable
    ])
    valid = np.isfinite(p50) & (p50 > 0) & np.isfinite(p99)
    if valid.sum() < 2:
        return [HealthFinding(
            probe="latency_regime", stage="regime", severity="warn",
            message="latency regime not assessable: slot percentiles degenerate",
            context=context,
        )]
    p50, p99 = p50[valid], p99[valid]
    tail_ratios = p99 / p50
    worst_tail = float(tail_ratios.max())
    worst_slot = int(usable[valid][int(np.argmax(tail_ratios))])
    median_spread = float(p50.max() / p50.min())
    findings: List[HealthFinding] = []
    if worst_tail > fail_tail_ratio:
        tail_severity, tail_threshold = "fail", fail_tail_ratio
    elif worst_tail > warn_tail_ratio:
        tail_severity, tail_threshold = "warn", warn_tail_ratio
    else:
        tail_severity, tail_threshold = "ok", warn_tail_ratio
    findings.append(HealthFinding(
        probe="latency_tail_inflation", stage="regime", severity=tail_severity,
        message=(
            f"worst per-slot p99/p50 = {worst_tail:.2f} (slot {worst_slot}"
            f"{'; tail-inflated — possible incident contamination' if tail_severity != 'ok' else ''})"),
        value=worst_tail, threshold=tail_threshold,
        context=dict(context, worst_slot=worst_slot),
    ))
    if median_spread > fail_median_spread:
        shift_severity, shift_threshold = "fail", fail_median_spread
    elif median_spread > warn_median_spread:
        shift_severity, shift_threshold = "warn", warn_median_spread
    else:
        shift_severity, shift_threshold = "ok", warn_median_spread
    findings.append(HealthFinding(
        probe="latency_regime_shift", stage="regime", severity=shift_severity,
        message=(
            f"slot median latencies span a {median_spread:.2f}x range"
            f"{' — beyond diurnal variation; latency regime shifted' if shift_severity != 'ok' else ''}"),
        value=median_spread, threshold=shift_threshold, context=context,
    ))
    return findings


@dataclass(frozen=True)
class PairedRegimeMargins:
    """Multipliers applied to a clean twin's regime metrics.

    The paired harnesses (:mod:`repro.analysis.recovery`,
    :mod:`repro.analysis.sensitivity`) probe a degraded run against its
    clean same-seed twin: the twin's own per-slot tail ratio and median
    spread, inflated by these margins, become the warn thresholds, and the
    ``*_fail_factor`` multiples of the warn thresholds become the fail
    thresholds. One definition here, surfaced in
    :class:`~repro.obs.health.HealthReport`, so the sensitivity suite can
    sweep the margins instead of re-hardcoding them per harness.
    """

    tail: float = 1.35
    spread: float = 1.2
    tail_fail_factor: float = 6.0
    spread_fail_factor: float = 3.0

    def __post_init__(self) -> None:
        for name in ("tail", "spread", "tail_fail_factor",
                     "spread_fail_factor"):
            value = getattr(self, name)
            if not value >= 1.0:
                raise ValueError(f"{name} must be >= 1.0, got {value}")

    def to_dict(self) -> Dict[str, float]:
        return {
            "tail": self.tail,
            "spread": self.spread,
            "tail_fail_factor": self.tail_fail_factor,
            "spread_fail_factor": self.spread_fail_factor,
        }


#: The margins the recovery gates have always used (tail x1.35, spread
#: x1.2, fail at 6x / 3x the warn thresholds), now in one place.
DEFAULT_PAIRED_MARGINS = PairedRegimeMargins()


# ---------------------------------------------------------------------------
# Missingness probes (sensitivity suite: irregular sampling / MNAR).
# ---------------------------------------------------------------------------


def probe_missingness(
    times: np.ndarray,
    latencies_ms: np.ndarray,
    reference_times: Optional[np.ndarray] = None,
    reference_latencies_ms: Optional[np.ndarray] = None,
    n_windows: int = 24,
    warn_drop_share: float = 0.25,
    fail_drop_share: float = 0.60,
    warn_informative_gap: float = 0.05,
    fail_informative_gap: float = 0.25,
    warn_irregularity: float = 0.08,
    fail_irregularity: float = 0.45,
    slice_description: str = "",
) -> List[HealthFinding]:
    """Sampling-completeness fingerprints of a telemetry stream.

    With a paired reference stream (the clean same-seed twin) three
    diagnostics become sharp:

    - **depth** — the overall drop share ``1 - n/n_ref``;
    - **informativeness** — the retention gap between the reference's
      latency bulk (below its p75) and tail (at or above it). MNAR
      dropout keeps fast rows and loses slow ones, so its gap is large;
      latency-blind thinning has a gap near zero.
    - **irregularity** — the coefficient of variation of per-window
      retention over ``n_windows`` equal time windows. Diurnal-tied
      thinning starves some windows and spares others; uniform thinning
      keeps retention flat.

    Without a reference the probe cannot distinguish "thinned" from
    "small" and returns a single ``ok`` not-assessable finding — the
    unpaired fingerprints belong to the occupancy probes.

    The warn thresholds sit a few sigma above the sampling noise of a
    paired ~10k-row stream (retention-estimate noise is ~1-2% per window
    / per latency half): latency-blind uniform thinning measures a gap
    and CV near 0.02, while the mildest committed MNAR and diurnal
    fixtures measure 0.07 and 0.11 — the thresholds split those cleanly.
    """
    t = np.asarray(times, dtype=float)
    lat = np.asarray(latencies_ms, dtype=float)
    context: Dict[str, Any] = {"slice": slice_description, "n": int(t.size)}
    if reference_times is None or reference_latencies_ms is None:
        return [HealthFinding(
            probe="missingness", stage="missingness", severity="ok",
            message=(
                "missingness not assessable without a paired reference "
                "stream"),
            context=context,
        )]
    rt = np.asarray(reference_times, dtype=float)
    rlat = np.asarray(reference_latencies_ms, dtype=float)
    context["n_reference"] = int(rt.size)
    if rt.size == 0:
        return [HealthFinding(
            probe="missingness", stage="missingness", severity="warn",
            message="missingness not assessable: empty reference stream",
            context=context,
        )]
    findings: List[HealthFinding] = []

    def graded(value: float, warn_at: float, fail_at: float) -> tuple:
        if value > fail_at:
            return "fail", fail_at
        if value > warn_at:
            return "warn", warn_at
        return "ok", warn_at

    # (a) depth: overall drop share vs the reference.
    drop_share = float(np.clip(1.0 - t.size / rt.size, 0.0, 1.0))
    severity, threshold = graded(drop_share, warn_drop_share, fail_drop_share)
    findings.append(HealthFinding(
        probe="missingness_depth", stage="missingness", severity=severity,
        message=(
            f"{drop_share:.1%} of the reference stream's rows are missing"),
        value=drop_share, threshold=threshold, context=dict(context),
    ))

    # (b) informativeness: bulk-vs-tail retention gap at the reference p75.
    knee = float(np.percentile(rlat, 75.0)) if rlat.size else float("nan")
    ref_bulk = float((rlat < knee).sum())
    ref_tail = float((rlat >= knee).sum())
    if np.isfinite(knee) and ref_bulk > 0 and ref_tail > 0:
        kept_bulk = float((lat < knee).sum()) / ref_bulk
        kept_tail = float((lat >= knee).sum()) / ref_tail
        # Retention above 1 (duplication) is not *missingness*; clamp so
        # over-represented streams do not alias into an MNAR signal.
        gap = float(np.clip(min(kept_bulk, 1.0) - min(kept_tail, 1.0),
                            0.0, 1.0))
        severity, threshold = graded(
            gap, warn_informative_gap, fail_informative_gap)
        findings.append(HealthFinding(
            probe="missingness_informative", stage="missingness",
            severity=severity,
            message=(
                f"latency-tail retention trails the bulk by {gap:.1%} "
                f"(bulk {min(kept_bulk, 1.0):.1%} vs tail "
                f"{min(kept_tail, 1.0):.1%} at the reference p75"
                f"{'; outcome-dependent (MNAR) dropout' if severity != 'ok' else ''})"),
            value=gap, threshold=threshold,
            context=dict(context, knee_ms=round(knee, 3)),
        ))
    else:
        findings.append(HealthFinding(
            probe="missingness_informative", stage="missingness",
            severity="ok",
            message=(
                "informative missingness not assessable: reference latency "
                "split is degenerate"),
            context=dict(context),
        ))

    # (c) irregularity: CV of per-window retention over the reference span.
    n_win = max(1, int(n_windows))
    t0 = float(rt.min())
    span = max(float(rt.max()) - t0, 1e-9)
    ref_win = np.minimum(((rt - t0) / span * n_win).astype(int), n_win - 1)
    obs_win = np.clip(((t - t0) / span * n_win).astype(int), 0, n_win - 1)
    ref_counts = np.bincount(ref_win, minlength=n_win).astype(float)
    obs_counts = np.bincount(obs_win, minlength=n_win).astype(float)
    # Only windows with enough reference mass to estimate retention.
    min_ref = max(10.0, rt.size / (4.0 * n_win))
    usable = ref_counts >= min_ref
    context["n_usable_windows"] = int(usable.sum())
    if usable.sum() >= 2:
        retention = np.minimum(obs_counts[usable] / ref_counts[usable], 1.0)
        mean_ret = float(retention.mean())
        cv = float(retention.std() / mean_ret) if mean_ret > 0 else float("inf")
        if not np.isfinite(cv):
            cv = fail_irregularity * 2.0
        severity, threshold = graded(cv, warn_irregularity, fail_irregularity)
        findings.append(HealthFinding(
            probe="sampling_irregularity", stage="missingness",
            severity=severity,
            message=(
                f"per-window retention varies with CV {cv:.3f}"
                f"{' — time-dependent (irregular) sampling' if severity != 'ok' else ''}"),
            value=cv, threshold=threshold, context=dict(context),
        ))
    else:
        findings.append(HealthFinding(
            probe="sampling_irregularity", stage="missingness", severity="ok",
            message=(
                "sampling irregularity not assessable: too few populated "
                "reference windows"),
            context=dict(context),
        ))
    return findings


# ---------------------------------------------------------------------------
# Smoothing probes (paper Section 2.3).
# ---------------------------------------------------------------------------


def probe_smoothing_edges(
    stable_mask: np.ndarray,
    smoothing_window: int,
    slice_description: str = "",
) -> List[HealthFinding]:
    """Savitzky–Golay window vs the curve's actual support.

    The filter needs ``window`` contiguous bins to produce an interior
    (non-edge) estimate; a run narrower than half the window means even the
    run's *center* fits under half a window — the smoothed shape is then
    mostly an artifact of the filter's edge extrapolation.
    """
    mask = np.asarray(stable_mask, dtype=bool)
    window = int(smoothing_window)
    half_window = (window + 1) // 2
    context: Dict[str, Any] = {
        "slice": slice_description, "window": window,
        "n_stable_bins": int(mask.sum()),
    }
    if mask.size == 0 or not mask.any():
        return [HealthFinding(
            probe="smoothing_edges", stage="smoothing", severity="fail",
            message="no stable bins; the smoother has nothing to fit",
            value=0.0, threshold=float(half_window), context=context,
        )]
    # Longest run of consecutive stable bins.
    padded = np.concatenate(([0], mask.astype(np.int8), [0]))
    changes = np.flatnonzero(np.diff(padded))
    run_lengths = changes[1::2] - changes[0::2]
    longest = int(run_lengths.max()) if run_lengths.size else 0
    context["longest_stable_run"] = longest
    context["edge_free"] = bool(longest >= window)
    if longest < half_window:
        return [HealthFinding(
            probe="smoothing_edges", stage="smoothing", severity="warn",
            message=(
                f"longest stable run ({longest} bins) is under half the "
                f"smoothing window ({window}); the curve is edge-dominated"),
            value=float(longest), threshold=float(half_window),
            context=context,
        )]
    return [HealthFinding(
        probe="smoothing_edges", stage="smoothing", severity="ok",
        message=(
            f"longest stable run ({longest} bins) supports the smoothing "
            f"window ({window})"),
        value=float(longest), threshold=float(half_window), context=context,
    )]


# ---------------------------------------------------------------------------
# Locality probes (paper Section 2.1, Figures 1 and 2).
# ---------------------------------------------------------------------------


def probe_locality(
    actual: float,
    shuffled: float,
    sorted_ratio: float,
    warn_strength: float = 0.15,
) -> List[HealthFinding]:
    """The MSD/MAD locality premise: latency must be locally predictable.

    ``actual`` well below ``shuffled`` (≈1) is what makes the natural
    experiment possible. A degenerate (constant-latency) series has
    MAD = 0 everywhere, so the three ratios collapse and locality is
    *undefined* — a ``warn``, never an exception.
    """
    actual = _finite(actual)
    shuffled = _finite(shuffled)
    sorted_ratio = _finite(sorted_ratio)
    context = {
        "actual": round(actual, 6) if np.isfinite(actual) else None,
        "shuffled": round(shuffled, 6) if np.isfinite(shuffled) else None,
        "sorted": round(sorted_ratio, 6) if np.isfinite(sorted_ratio) else None,
    }
    if not (np.isfinite(actual) and np.isfinite(shuffled)
            and np.isfinite(sorted_ratio)):
        return [HealthFinding(
            probe="locality_msd_mad", stage="locality", severity="warn",
            message="MSD/MAD comparison contains non-finite ratios",
            context=context,
        )]
    span = shuffled - sorted_ratio
    if span <= 0:
        return [HealthFinding(
            probe="locality_msd_mad", stage="locality", severity="warn",
            message=(
                "degenerate latency series: shuffled and sorted MSD/MAD "
                "coincide (constant or near-constant latencies); locality "
                "is undefined"),
            value=0.0, threshold=warn_strength, context=context,
        )]
    strength = float(np.clip((shuffled - actual) / span, 0.0, 1.0))
    context["strength"] = round(strength, 4)
    if actual >= shuffled:
        return [HealthFinding(
            probe="locality_msd_mad", stage="locality", severity="fail",
            message=(
                f"no locality: actual MSD/MAD ({actual:.3f}) is not below "
                f"the shuffled baseline ({shuffled:.3f}); the natural "
                "experiment premise does not hold"),
            value=strength, threshold=warn_strength, context=context,
        )]
    severity = "warn" if strength < warn_strength else "ok"
    return [HealthFinding(
        probe="locality_msd_mad", stage="locality", severity=severity,
        message=(
            f"locality strength {strength:.3f} "
            f"(actual {actual:.3f} vs shuffled {shuffled:.3f})"),
        value=strength, threshold=warn_strength, context=context,
    )]


def probe_density_correlation(
    correlation: float,
    kind: str = "detrended",
    warn_at: float = 0.0,
) -> List[HealthFinding]:
    """Density–latency anti-correlation (the paper's Figure 2 behaviour).

    Activity should concentrate in low-latency periods: the (detrended)
    correlation of per-window action count against window mean latency
    should be negative. A non-negative value means the latency signal the
    estimator feeds on is absent or swamped by confounders.
    """
    corr = _finite(correlation)
    context = {"kind": kind}
    if not np.isfinite(corr):
        return [HealthFinding(
            probe="density_latency_correlation", stage="locality",
            severity="warn",
            message=(
                f"{kind} density–latency correlation is undefined "
                "(too few non-empty windows or constant series)"),
            context=context,
        )]
    severity = "warn" if corr >= warn_at else "ok"
    return [HealthFinding(
        probe="density_latency_correlation", stage="locality",
        severity=severity,
        message=(
            f"{kind} density–latency correlation = {corr:+.3f} "
            f"({'anti-correlated as expected' if severity == 'ok' else 'no anti-correlation'})"),
        value=corr, threshold=warn_at, context=context,
    )]
