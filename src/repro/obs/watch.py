"""Fleet watchtower: SLOs, rolling baselines, and drift detection.

``autosens runs trend`` answers "did the last pair of runs move?" by
re-running pairwise ``obs diff``. This module answers the fleet question:
*across the whole registry history, which series drifted, when, and does
the fleet still meet its objectives?* Three layers, stdlib-only:

- **Rolling baselines** (:func:`robust_baseline`): per-series EWMA center
  plus a median/MAD robust envelope over registry history. MAD tolerates
  the very outliers the envelope exists to flag, so one bad run widens
  nothing.
- **Change-point detection** (:func:`detect_change_point`): an offline
  least-squares detector in the PELT/CUSUM family. Each series is
  classified ``stable`` / ``stepped`` / ``trending`` by comparing the
  best single-breakpoint step fit and the best linear fit against a
  penalty scaled by a robust noise estimate (1.4826 x median |first
  difference| / sqrt(2)). A ``stepped`` verdict attributes the move to
  the first run of the second segment — the run that regressed.
- **SLO layer** (:func:`load_slo_config` / :func:`evaluate_slos`): a
  declarative ``slo.toml``/dict schema (objective, window, burn-rate
  threshold) evaluated against registry history. ``max``/``min``
  objectives gate on the share of breaching runs inside the window
  (burn rate); ``stable`` objectives gate on the change-point verdict.
  Each evaluation publishes a typed ``slo`` event on the process bus
  (inert without sinks, like all obs instrumentation).

Everything here is a pure function of registry contents: series are
sorted by name, floats rounded before serialization, artifacts written
key-sorted and compact — identical registries yield byte-identical
``baseline.json``/``trend.json``/``slo.json`` regardless of executor.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.registry import RunRegistry

__all__ = [
    "WATCH_SCHEMA",
    "DEFAULT_HALFLIFE_RUNS",
    "DEFAULT_ENVELOPE_K",
    "DEFAULT_PENALTY_SCALE",
    "DEFAULT_SLOS",
    "collect_series",
    "robust_baseline",
    "detect_change_point",
    "load_slo_config",
    "evaluate_slos",
    "build_watch_report",
    "render_watch",
    "watch_exit_code",
    "write_watch_artifact",
]

#: Bump when baseline/trend/slo artifact shapes change incompatibly.
WATCH_SCHEMA = 1

#: EWMA halflife for the baseline center, measured in *runs* (not time):
#: registries mix fast and slow commands, so run count is the honest axis.
DEFAULT_HALFLIFE_RUNS = 5.0

#: Envelope half-width in robust sigmas (1.4826 x MAD) around the median.
DEFAULT_ENVELOPE_K = 4.0

#: Change-point penalty multiplier on sigma^2 * log(n); larger = less
#: trigger-happy. 8.0 keeps seeded jitter stable while a 10% step on a
#: 5-run history still clears the bar by >10x.
DEFAULT_PENALTY_SCALE = 8.0

#: Rounding applied to every float in watch artifacts, for byte identity.
_ROUND = 9

_OBJECTIVES = ("max", "min", "stable")

#: The fleet SLOs evaluated when no ``--slo`` config is given. Patterns
#: are fnmatch globs over series names; a pattern matching no series is
#: "no data", which meets the objective (absence is not a breach).
DEFAULT_SLOS: Tuple[Dict[str, Any], ...] = (
    {"name": "health-no-fail", "series": "health.fail",
     "objective": "max", "threshold": 0.0, "window": 8, "burn_rate": 0.0},
    {"name": "health-warn-budget", "series": "health.warn",
     "objective": "max", "threshold": 2.0, "window": 8, "burn_rate": 0.5},
    {"name": "ingest-reject-rate", "series": "ingest.reject_rate",
     "objective": "max", "threshold": 0.05, "window": 8, "burn_rate": 0.25},
    {"name": "span-self-time-stability", "series": "span_seconds[*]",
     "objective": "stable", "window": 16, "burn_rate": 0.0},
    {"name": "span-share-stability", "series": "span_share[*]",
     "objective": "stable", "window": 16, "burn_rate": 0.0},
    {"name": "curve-stability", "series": "curve.*",
     "objective": "stable", "window": 16, "burn_rate": 0.0},
    {"name": "frontier-bias", "series": "frontier.max_abs_bias*",
     "objective": "max", "threshold": 0.10, "window": 8, "burn_rate": 0.0},
)


class WatchConfigError(ValueError):
    """A watch input (registry, SLO config) is missing or malformed."""


# ---------------------------------------------------------------------------
# Series collection: registry history -> {name: [(seq, value), ...]}.
# ---------------------------------------------------------------------------


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _entry_series(entry: Dict[str, Any], manifest: Dict[str, Any],
                  run_dir: Path) -> Dict[str, float]:
    """Every numeric series observable from one recorded run."""
    values: Dict[str, float] = {}
    wall = entry.get("wall_s")
    if isinstance(wall, (int, float)):
        values["wall_s"] = float(wall)

    timings = manifest.get("span_timings")
    if isinstance(timings, dict):
        total = 0.0
        for name, cell in sorted(timings.items()):
            if isinstance(cell, dict) and \
                    isinstance(cell.get("seconds"), (int, float)):
                seconds = float(cell["seconds"])
                values[f"span_seconds[{name}]"] = seconds
                total += seconds
        if total > 0.0:
            for name, cell in sorted(timings.items()):
                if isinstance(cell, dict) and \
                        isinstance(cell.get("seconds"), (int, float)):
                    values[f"span_share[{name}]"] = \
                        float(cell["seconds"]) / total

    health = manifest.get("health")
    if isinstance(health, dict):
        counts = health.get("counts")
        if isinstance(counts, dict):
            values["health.warn"] = float(counts.get("warn", 0) or 0)
            values["health.fail"] = float(counts.get("fail", 0) or 0)
        verdict = health.get("verdict")
        if isinstance(verdict, str):
            values["health.verdict_rank"] = \
                float({"ok": 0, "warn": 1, "fail": 2}.get(verdict, 2))

    degradations = manifest.get("degradations")
    if isinstance(degradations, list):
        values["degradations"] = float(len(degradations))

    ingest = manifest.get("ingest")
    if isinstance(ingest, dict):
        n_rows = ingest.get("n_rows")
        n_bad = ingest.get("n_bad")
        if isinstance(n_rows, (int, float)) and n_rows and \
                isinstance(n_bad, (int, float)):
            values["ingest.reject_rate"] = float(n_bad) / float(n_rows)

    # Optional analysis sidecars written next to the manifest.
    for sidecar in sorted(run_dir.glob("*.curve.json")):
        payload = _read_json(sidecar)
        if not payload:
            continue
        curves = payload.get("curves")
        if isinstance(curves, list):
            nlps = [c.get("mean_nlp") for c in curves
                    if isinstance(c, dict)
                    and isinstance(c.get("mean_nlp"), (int, float))]
            if nlps:
                values["curve.mean_nlp"] = float(sum(nlps) / len(nlps))
        elif isinstance(payload.get("mean_nlp"), (int, float)):
            values["curve.mean_nlp"] = float(payload["mean_nlp"])
    for sidecar in sorted(run_dir.glob("*.frontier.json")):
        payload = _read_json(sidecar)
        if not payload:
            continue
        points = payload.get("points")
        if isinstance(points, list):
            biases = [abs(p.get("bias", 0.0)) for p in points
                      if isinstance(p, dict)
                      and isinstance(p.get("bias"), (int, float))]
            if biases:
                values["frontier.max_abs_bias"] = float(max(biases))
        elif isinstance(payload.get("max_abs_bias"), (int, float)):
            values["frontier.max_abs_bias"] = float(payload["max_abs_bias"])
    return values


def collect_series(registry: RunRegistry,
                   last: int = 0) -> Dict[str, List[Tuple[int, float]]]:
    """All numeric series over registry history, keyed by series name.

    Each series is a list of ``(seq, value)`` points in recorded order.
    ``last`` bounds history to the most recent N runs (0 = all). Runs
    whose directory or manifest has been deleted still contribute their
    index-line series (``wall_s``); missing values simply leave gaps.
    """
    entries = registry.entries()
    if last > 0:
        entries = entries[-last:]
    series: Dict[str, List[Tuple[int, float]]] = {}
    for entry in entries:
        seq = int(entry.get("seq", 0))
        manifest = registry.read_manifest(entry) or {}
        for name, value in _entry_series(
                entry, manifest, registry.run_path(entry)).items():
            if math.isfinite(value):
                series.setdefault(name, []).append((seq, value))
    return {name: series[name] for name in sorted(series)}


# ---------------------------------------------------------------------------
# Rolling baselines: EWMA center + median/MAD robust envelope.
# ---------------------------------------------------------------------------


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])


def _round(value: float) -> float:
    rounded = round(float(value), _ROUND)
    return 0.0 if rounded == 0.0 else rounded  # normalize -0.0


def robust_baseline(points: Sequence[Tuple[int, float]],
                    halflife_runs: float = DEFAULT_HALFLIFE_RUNS,
                    envelope_k: float = DEFAULT_ENVELOPE_K) -> Dict[str, Any]:
    """EWMA center plus a median +/- k*1.4826*MAD envelope for one series.

    The envelope is anchored on the *median*, not the EWMA, so a single
    outlier run cannot drag the band toward itself and self-certify.
    ``within_envelope`` reports whether the newest point sits inside.
    """
    values = [v for _, v in points]
    n = len(values)
    if n == 0:
        return {"n": 0}
    num = 0.0
    den = 0.0
    for age, value in enumerate(reversed(values)):
        weight = 0.5 ** (age / max(1e-9, halflife_runs))
        num += weight * value
        den += weight
    ewma = num / den
    median = _median(values)
    mad = _median([abs(v - median) for v in values])
    sigma = 1.4826 * mad
    lo = median - envelope_k * sigma
    hi = median + envelope_k * sigma
    last = values[-1]
    # Exactly-repeated histories collapse the band to a point; give the
    # membership test (only) a hair of slack so they stay in-envelope.
    slack = 1e-12 * max(1.0, abs(median))
    return {
        "n": n,
        "last": _round(last),
        "last_seq": int(points[-1][0]),
        "ewma": _round(ewma),
        "median": _round(median),
        "mad": _round(mad),
        "lo": _round(lo),
        "hi": _round(hi),
        "within_envelope": bool(lo - slack <= last <= hi + slack),
    }


# ---------------------------------------------------------------------------
# Change-point detection: stable / stepped / trending.
# ---------------------------------------------------------------------------


def _sse_about_mean(values: Sequence[float]) -> float:
    n = len(values)
    if n == 0:
        return 0.0
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values)


def _best_step_fit(values: Sequence[float]) -> Tuple[float, int]:
    """Minimum SSE over all single-breakpoint two-segment mean fits.

    Returns ``(sse, k)`` where the segments are ``values[:k]`` and
    ``values[k:]``. Prefix sums make the scan O(n).
    """
    n = len(values)
    prefix = [0.0]
    prefix_sq = [0.0]
    for v in values:
        prefix.append(prefix[-1] + v)
        prefix_sq.append(prefix_sq[-1] + v * v)
    best_sse = math.inf
    best_k = 1
    for k in range(1, n):
        left = prefix_sq[k] - prefix[k] ** 2 / k
        right = (prefix_sq[n] - prefix_sq[k]) \
            - (prefix[n] - prefix[k]) ** 2 / (n - k)
        sse = left + right
        if sse < best_sse - 1e-15:
            best_sse = sse
            best_k = k
    return best_sse, best_k


def _best_linear_fit(values: Sequence[float]) -> Tuple[float, float]:
    """OLS fit against the run index; returns ``(sse, slope)``."""
    n = len(values)
    xs = range(n)
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (values[x] - mean_y) for x in xs)
    slope = sxy / sxx if sxx > 0 else 0.0
    sse = sum((values[x] - (mean_y + slope * (x - mean_x))) ** 2 for x in xs)
    return sse, slope


def detect_change_point(
        points: Sequence[Tuple[int, float]],
        penalty_scale: float = DEFAULT_PENALTY_SCALE) -> Dict[str, Any]:
    """Classify one series as ``stable`` / ``stepped`` / ``trending``.

    Noise sigma comes from the median absolute first difference (robust:
    a single jump among n-1 differences cannot move the median), scaled
    by 1.4826/sqrt(2) to estimate per-point sigma. A step or linear fit
    must beat the constant-mean fit by more than
    ``penalty_scale * sigma^2 * log(n)`` to count — an MDL/BIC-style
    penalty, so longer histories require proportionally more evidence.

    ``stepped`` carries ``change_seq``: the registry seq of the first run
    *after* the breakpoint, i.e. the run that moved.
    """
    values = [v for _, v in points]
    seqs = [int(s) for s, _ in points]
    n = len(values)
    result: Dict[str, Any] = {"state": "stable", "n": n}
    if n < 5:
        result["note"] = "insufficient-history"
        return result
    spread = max(values) - min(values)
    if spread <= 1e-9 * max(1.0, abs(values[0])):
        return result  # flat to within float dust
    diffs = [abs(values[i + 1] - values[i]) for i in range(n - 1)]
    sigma = 1.4826 * _median(diffs) / math.sqrt(2.0)
    if sigma <= 0.0:
        # A series constant except for jumps: any real structure should
        # win, so fall back to a floor far below the observed spread.
        sigma = 1e-6 * spread
    sse_const = _sse_about_mean(values)
    sse_step, split = _best_step_fit(values)
    sse_linear, slope = _best_linear_fit(values)
    penalty = penalty_scale * sigma * sigma * math.log(n)
    if sse_const - min(sse_step, sse_linear) <= penalty:
        return result
    if sse_step <= sse_linear:
        before = values[:split]
        after = values[split:]
        delta = sum(after) / len(after) - sum(before) / len(before)
        result.update({
            "state": "stepped",
            "change_seq": seqs[split],
            "delta": _round(delta),
            "direction": "up" if delta > 0 else "down",
        })
    else:
        result.update({
            "state": "trending",
            "slope": _round(slope),
            "delta": _round(slope * (n - 1)),
            "direction": "up" if slope > 0 else "down",
        })
    return result


# ---------------------------------------------------------------------------
# SLO layer: declarative objectives over series, with burn rates.
# ---------------------------------------------------------------------------


def _normalize_slo(spec: Dict[str, Any], index: int) -> Dict[str, Any]:
    if not isinstance(spec, dict):
        raise WatchConfigError(f"slo[{index}]: expected a table/dict")
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise WatchConfigError(f"slo[{index}]: missing 'name'")
    pattern = spec.get("series")
    if not isinstance(pattern, str) or not pattern:
        raise WatchConfigError(f"slo '{name}': missing 'series' pattern")
    objective = spec.get("objective")
    if objective not in _OBJECTIVES:
        raise WatchConfigError(
            f"slo '{name}': objective must be one of {_OBJECTIVES}")
    threshold = spec.get("threshold")
    if objective in ("max", "min"):
        if not isinstance(threshold, (int, float)) or \
                isinstance(threshold, bool):
            raise WatchConfigError(
                f"slo '{name}': {objective} objective needs a numeric "
                f"'threshold'")
        threshold = float(threshold)
    else:
        threshold = None
    window = spec.get("window", 8)
    if not isinstance(window, int) or isinstance(window, bool) or window < 2:
        raise WatchConfigError(f"slo '{name}': window must be an int >= 2")
    burn = spec.get("burn_rate", 0.0)
    if not isinstance(burn, (int, float)) or isinstance(burn, bool) or \
            not 0.0 <= float(burn) <= 1.0:
        raise WatchConfigError(f"slo '{name}': burn_rate must be in [0, 1]")
    known = {"name", "series", "objective", "threshold", "window",
             "burn_rate"}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise WatchConfigError(f"slo '{name}': unknown keys {unknown}")
    return {
        "name": name,
        "series": pattern,
        "objective": objective,
        "threshold": threshold,
        "window": window,
        "burn_rate": float(burn),
    }


def load_slo_config(
        source: Union[str, Path, Dict[str, Any], None]) -> List[Dict[str, Any]]:
    """Normalize an SLO config from a ``.toml``/``.json`` path or a dict.

    The canonical shape is ``{"slo": [{name, series, objective, ...}]}``
    (TOML ``[[slo]]`` tables). ``None`` yields :data:`DEFAULT_SLOS`.
    Raises :class:`WatchConfigError` on any schema violation, including
    duplicate SLO names.
    """
    if source is None:
        data: Dict[str, Any] = {"slo": [dict(s) for s in DEFAULT_SLOS]}
    elif isinstance(source, dict):
        data = source
    else:
        path = Path(source)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise WatchConfigError(f"cannot read SLO config: {exc}") from exc
        if path.suffix.lower() == ".toml":
            import tomllib
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise WatchConfigError(f"bad TOML in {path}: {exc}") from exc
        else:
            try:
                data = json.loads(text)
            except ValueError as exc:
                raise WatchConfigError(f"bad JSON in {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise WatchConfigError(f"{path}: top level must be a table")
    specs = data.get("slo")
    if not isinstance(specs, list) or not specs:
        raise WatchConfigError("SLO config needs a non-empty [[slo]] list")
    normalized = [_normalize_slo(spec, i) for i, spec in enumerate(specs)]
    names = [s["name"] for s in normalized]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise WatchConfigError(f"duplicate slo names: {dupes}")
    return normalized


def _match_series(name: str, pattern: str) -> bool:
    """fnmatch with *literal* brackets: series names embed ``[span]``
    suffixes, so ``[`` must never open a character class."""
    return fnmatch.fnmatchcase(name, pattern.replace("[", "[[]"))


def _eval_budget_slo(slo: Dict[str, Any],
                     name: str,
                     points: Sequence[Tuple[int, float]]) -> Dict[str, Any]:
    window = points[-slo["window"]:]
    threshold = slo["threshold"]
    if slo["objective"] == "max":
        breaching = [int(s) for s, v in window if v > threshold + 1e-12]
    else:
        breaching = [int(s) for s, v in window if v < threshold - 1e-12]
    observed = len(breaching) / len(window)
    return {
        "series": name,
        "n": len(window),
        "observed_burn_rate": _round(observed),
        "breaching_seqs": breaching,
        "met": bool(observed <= slo["burn_rate"] + 1e-12),
    }


def _eval_stable_slo(slo: Dict[str, Any],
                     name: str,
                     points: Sequence[Tuple[int, float]]) -> Dict[str, Any]:
    analysis = detect_change_point(points[-slo["window"]:])
    state = analysis.get("state", "stable")
    direction = analysis.get("direction")
    # Every fleet series is smaller-is-better (times, shares, failures,
    # rejects, NLP, bias), so only upward movement breaches stability;
    # a downward step is an improvement worth seeing, not a page.
    worsened = state in ("stepped", "trending") and direction == "up"
    detail: Dict[str, Any] = {
        "series": name,
        "n": analysis.get("n", len(points)),
        "state": state,
        "met": not worsened,
    }
    for key in ("change_seq", "delta", "slope", "direction", "note"):
        if key in analysis:
            detail[key] = analysis[key]
    return detail


def evaluate_slos(slos: Sequence[Dict[str, Any]],
                  series: Dict[str, List[Tuple[int, float]]]) -> Dict[str, Any]:
    """Evaluate every SLO against collected series; publish ``slo`` events.

    Returns the ``watch-slo`` artifact payload. Pattern matching is
    fnmatch over sorted series names; an SLO whose pattern matches no
    series is reported ``met`` with ``"no-data"`` — a registry that never
    produced a series cannot breach an objective about it.
    """
    names = sorted(series)
    results: List[Dict[str, Any]] = []
    breaches: List[Dict[str, Any]] = []
    for slo in slos:
        matched = [n for n in names if _match_series(n, slo["series"])]
        details: List[Dict[str, Any]] = []
        for name in matched:
            points = series[name]
            if slo["objective"] == "stable":
                details.append(_eval_stable_slo(slo, name, points))
            else:
                details.append(_eval_budget_slo(slo, name, points))
        met = all(d["met"] for d in details) if details else True
        result = {
            "name": slo["name"],
            "objective": slo["objective"],
            "series_pattern": slo["series"],
            "window": slo["window"],
            "burn_rate": slo["burn_rate"],
            "met": met,
            "series": details,
        }
        if slo["threshold"] is not None:
            result["threshold"] = slo["threshold"]
        if not details:
            result["note"] = "no-data"
        results.append(result)
        for detail in details:
            if not detail["met"]:
                breach = {"slo": slo["name"], "series": detail["series"]}
                for key in ("state", "change_seq", "delta",
                            "observed_burn_rate", "breaching_seqs"):
                    if key in detail:
                        breach[key] = detail[key]
                breaches.append(breach)
        _publish_slo_event(result)
    return {
        "schema": WATCH_SCHEMA,
        "kind": "watch-slo",
        "slos": results,
        "breaches": breaches,
        "met": not breaches,
    }


def _publish_slo_event(result: Dict[str, Any]) -> None:
    import repro.obs as obs
    if not obs.events_active():
        return
    obs.event(
        "slo",
        slo=result["name"],
        objective=result["objective"],
        met=result["met"],
        breaching=[d["series"] for d in result["series"] if not d["met"]],
    )


# ---------------------------------------------------------------------------
# Report assembly (optionally executor-parallel per series).
# ---------------------------------------------------------------------------


def _series_task(payload: Tuple[str, List[Tuple[int, float]], float, float,
                                float]) -> Tuple[str, Dict[str, Any],
                                                 Dict[str, Any]]:
    """Per-series analysis; module-level so process executors can pickle it."""
    name, points, halflife, envelope_k, penalty_scale = payload
    return (name,
            robust_baseline(points, halflife, envelope_k),
            detect_change_point(points, penalty_scale))


def build_watch_report(registry: RunRegistry,
                       slos: Optional[Sequence[Dict[str, Any]]] = None,
                       last: int = 0,
                       halflife_runs: float = DEFAULT_HALFLIFE_RUNS,
                       envelope_k: float = DEFAULT_ENVELOPE_K,
                       penalty_scale: float = DEFAULT_PENALTY_SCALE,
                       executor: Any = None) -> Dict[str, Any]:
    """Baselines + change-points + SLO verdicts for one registry.

    Returns ``{"n_runs", "baseline", "trend", "slo"}`` where the three
    artifact payloads each carry their own ``kind``. ``executor`` accepts
    anything :func:`repro.parallel.resolve_executor` does; per-series
    analysis order is pinned to sorted names, so serial and process
    executors produce byte-identical artifacts.
    """
    entries = registry.entries()
    if not entries:
        raise WatchConfigError(
            f"no recorded runs under {registry.runs_dir} "
            f"(missing or empty index.jsonl)")
    slos = load_slo_config(None) if slos is None else list(slos)
    series = collect_series(registry, last=last)
    payloads = [(name, points, halflife_runs, envelope_k, penalty_scale)
                for name, points in series.items()]
    if executor is None or executor == "serial":
        analyzed = [_series_task(p) for p in payloads]
    else:
        from repro.parallel import resolve_executor
        analyzed = list(resolve_executor(executor).map_ordered(
            _series_task, payloads))
    baselines = {name: baseline for name, baseline, _ in analyzed}
    trends = {name: trend for name, _, trend in analyzed}
    n_runs = len(entries if last <= 0 else entries[-last:])
    baseline_payload = {
        "schema": WATCH_SCHEMA,
        "kind": "watch-baseline",
        "n_runs": n_runs,
        "halflife_runs": halflife_runs,
        "envelope_k": envelope_k,
        "series": baselines,
    }
    trend_payload = {
        "schema": WATCH_SCHEMA,
        "kind": "watch-trend",
        "n_runs": n_runs,
        "penalty_scale": penalty_scale,
        "series": trends,
    }
    slo_payload = evaluate_slos(slos, series)
    slo_payload["n_runs"] = n_runs
    return {
        "n_runs": n_runs,
        "n_series": len(series),
        "baseline": baseline_payload,
        "trend": trend_payload,
        "slo": slo_payload,
    }


def write_watch_artifact(payload: Dict[str, Any],
                         path: Union[str, Path]) -> Path:
    """Atomically write one watch artifact, key-sorted and compact.

    Byte identity contract: the same payload always serializes to the
    same bytes (sorted keys, no whitespace, trailing newline).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# ---------------------------------------------------------------------------
# Rendering + exit code for ``autosens watch``.
# ---------------------------------------------------------------------------


def _describe_drift(trend: Dict[str, Any]) -> str:
    state = trend.get("state", "stable")
    if state == "stepped":
        return (f"stepped {trend.get('direction', '?')} at "
                f"seq {trend.get('change_seq', '?')} "
                f"(delta {trend.get('delta', 0.0):+g})")
    if state == "trending":
        return (f"trending {trend.get('direction', '?')} "
                f"(slope {trend.get('slope', 0.0):+g}/run)")
    return "stable"


def render_watch(report: Dict[str, Any]) -> str:
    """Human rendering of one watch evaluation: drift, then SLO verdicts."""
    lines = [f"fleet watch: {report.get('n_runs', 0)} runs, "
             f"{report.get('n_series', 0)} series"]
    trends = report.get("trend", {}).get("series", {})
    moved = {name: t for name, t in sorted(trends.items())
             if t.get("state") != "stable"}
    baselines = report.get("baseline", {}).get("series", {})
    escaped = {name: b for name, b in sorted(baselines.items())
               if b.get("within_envelope") is False and name not in moved}
    lines.append("drift:")
    if not moved and not escaped:
        lines.append(f"  all {len(trends)} series stable")
    for name, trend in moved.items():
        lines.append(f"  {name}: {_describe_drift(trend)}")
    for name, baseline in escaped.items():
        lines.append(
            f"  {name}: last {baseline.get('last')} outside envelope "
            f"[{baseline.get('lo')}, {baseline.get('hi')}]")
    lines.append("slos:")
    for slo in report.get("slo", {}).get("slos", []):
        status = "ok    " if slo.get("met") else "BREACH"
        desc = f"{slo.get('objective')}"
        if slo.get("threshold") is not None:
            sign = "<=" if slo.get("objective") == "max" else ">="
            desc += f" {sign} {slo.get('threshold'):g}"
        if slo.get("note") == "no-data":
            desc += "  (no data)"
        lines.append(f"  [{status}] {slo.get('name')}  {desc}")
        for detail in slo.get("series", []):
            if detail.get("met"):
                continue
            if "state" in detail:
                lines.append(
                    f"           {detail.get('series')}: "
                    f"{_describe_drift(detail)}")
            else:
                lines.append(
                    f"           {detail.get('series')}: burn rate "
                    f"{detail.get('observed_burn_rate', 0.0):g} > "
                    f"{slo.get('burn_rate', 0.0):g} allowed "
                    f"(breaching seqs {detail.get('breaching_seqs')})")
    slo_payload = report.get("slo", {})
    total = len(slo_payload.get("slos", []))
    met = sum(1 for s in slo_payload.get("slos", []) if s.get("met"))
    lines.append(f"summary: {met}/{total} SLOs met")
    return "\n".join(lines)


def watch_exit_code(report: Dict[str, Any]) -> int:
    """0 when every SLO is met; 1 on any breach (the ``--check`` gate)."""
    return 0 if report.get("slo", {}).get("met", False) else 1
