"""Global observability state shared by the whole process.

One :class:`ObsContext` is installed at a time. The default is
:data:`DISABLED` — a frozen context whose tracer is the no-op singleton and
whose logging threshold sits above every level, so instrumented code paths
cost a couple of attribute loads and nothing else when observability is off.

This module sits below :mod:`repro.obs.log` and the instrumented packages
in the import graph on purpose: it imports only :mod:`repro.obs.trace`,
:mod:`repro.obs.metrics` and :mod:`repro.obs.events` (leaf modules), which
keeps the obs package free of circular imports no matter which pipeline
module is loaded first.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DISABLED_TRACER, Tracer

__all__ = ["ObsContext", "DISABLED", "current", "install"]

#: Numeric thresholds, aligned with the stdlib for familiarity.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: A threshold no real level reaches — logging off.
LEVEL_OFF = 100


class ObsContext:
    """Everything the instrumented pipeline reads at runtime.

    ``enabled`` gates span creation; ``level_no`` gates log emission
    independently (a run may want logs without tracing). ``degradations``
    accumulates free-form notes (e.g. starved slices) for the run manifest;
    ``findings`` accumulates estimator-health probe results
    (:mod:`repro.obs.probes`) for the health report.
    """

    __slots__ = (
        "enabled", "level_no", "log_json", "log_stream",
        "tracer", "metrics", "deterministic", "run_id", "degradations",
        "findings", "bus",
    )

    def __init__(
        self,
        enabled: bool = False,
        level: str = "warning",
        log_json: bool = False,
        log_stream: Optional[TextIO] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        deterministic: bool = False,
        run_id: str = "",
    ) -> None:
        self.enabled = enabled
        self.level_no = LEVELS.get(level, LEVEL_OFF) if enabled else LEVEL_OFF
        self.log_json = log_json
        self.log_stream = log_stream if log_stream is not None else sys.stderr
        if tracer is not None:
            self.tracer = tracer
        elif enabled:
            self.tracer = Tracer(trace_id=run_id or "autosens",
                                 deterministic=deterministic)
        else:
            self.tracer = DISABLED_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.deterministic = deterministic
        self.run_id = run_id
        self.degradations: List[Dict[str, Any]] = []
        self.findings: List[Dict[str, Any]] = []
        # The live-telemetry event bus. Always present (so call sites need
        # no None checks) but inert — and near-free — until a sink attaches
        # via repro.obs.attach_sink.
        self.bus = EventBus()


#: The do-nothing context active unless :func:`repro.obs.configure` ran.
DISABLED = ObsContext(enabled=False)

_state: ObsContext = DISABLED


def current() -> ObsContext:
    """The active context (never ``None``; defaults to :data:`DISABLED`)."""
    return _state


def install(ctx: ObsContext) -> ObsContext:
    """Swap the active context; returns the previous one for restoration."""
    global _state
    previous = _state
    _state = ctx
    return previous
