"""Privacy utilities mirroring the paper's data-handling constraints.

The paper analyzes *only large user aggregates* with anonymized GUIDs and
never inspects content (Section 1, footnote; Section 3.4). This module
provides the two mechanisms the reproduction uses to honor that:

- :func:`anonymize_user_id` — deterministic keyed hashing of raw user ids
  into GUID-shaped opaque tokens, so raw ids never reach a log file;
- :func:`require_min_aggregate` — a guard raising :class:`PrivacyError`
  whenever a per-group statistic would be computed over fewer than a
  configurable number of distinct users.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable

import numpy as np

from repro.errors import PrivacyError
from repro.telemetry.log_store import LogStore

#: Default minimum distinct users per analyzed aggregate.
DEFAULT_MIN_AGGREGATE = 50


def anonymize_user_id(raw_id: str, key: bytes = b"autosens-repro") -> str:
    """Map a raw user id to a stable GUID-shaped opaque token.

    Uses HMAC-SHA256 so anonymization is deterministic per key but raw ids
    cannot be recovered without the key.
    """
    digest = hmac.new(key, raw_id.encode("utf-8"), hashlib.sha256).hexdigest()
    return (
        f"{digest[0:8]}-{digest[8:12]}-{digest[12:16]}-"
        f"{digest[16:20]}-{digest[20:32]}"
    )


def anonymize_all(raw_ids: Iterable[str], key: bytes = b"autosens-repro") -> list:
    """Anonymize an iterable of raw ids, preserving order."""
    return [anonymize_user_id(r, key) for r in raw_ids]


def require_min_aggregate(
    logs: LogStore,
    min_users: int = DEFAULT_MIN_AGGREGATE,
    what: str = "aggregate",
) -> LogStore:
    """Return ``logs`` unchanged if it covers enough distinct users.

    Raises :class:`PrivacyError` otherwise. Call this before reporting
    any per-group statistic.
    """
    n = logs.n_users() if len(logs) else 0
    if n < min_users:
        raise PrivacyError(
            f"{what} covers only {n} distinct users "
            f"(minimum {min_users}); refusing to report per-group statistics"
        )
    return logs


def is_guid_shaped(token: str) -> bool:
    """Check a token has the 8-4-4-4-12 hex GUID shape."""
    parts = token.split("-")
    if [len(p) for p in parts] != [8, 4, 4, 4, 12]:
        return False
    try:
        int("".join(parts), 16)
    except ValueError:
        return False
    return True
