"""The telemetry record schema.

AutoSens needs only ``(T, A, L, M)`` tuples per the paper's Section 2.1: a
start timestamp, the action type, the client-measured end-to-end latency,
and optional metadata (anonymized user id, subscription class). We add a
success flag (the paper discards errored actions) and a timezone offset so
time-of-day analyses can run in the user's local time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import SchemaError


@dataclass(frozen=True)
class ActionRecord:
    """One logged user action.

    Attributes
    ----------
    time:
        Action start time, seconds since the epoch of the log (the simulator
        uses seconds since the start of the simulated period).
    action:
        Action type name, e.g. ``"SelectMail"``.
    latency_ms:
        Client-measured end-to-end latency in milliseconds.
    user_id:
        Anonymized user identifier (GUID-like string). Never inspected
        beyond grouping; see :mod:`repro.telemetry.anonymize`.
    user_class:
        Subscription tier, e.g. ``"business"`` or ``"consumer"``.
    success:
        Whether the action completed successfully. AutoSens analyses only
        successful actions.
    tz_offset_hours:
        The user's local-time offset from log time, in hours.
    extra:
        Free-form additional metadata; carried through IO, ignored by the
        analyses.
    """

    time: float
    action: str
    latency_ms: float
    user_id: str = ""
    user_class: str = ""
    success: bool = True
    tz_offset_hours: float = 0.0
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.action, str) or not self.action:
            raise SchemaError(f"action must be a non-empty string, got {self.action!r}")
        if self.latency_ms < 0:
            raise SchemaError(f"latency must be non-negative, got {self.latency_ms}")
        if not -24.0 <= self.tz_offset_hours <= 24.0:
            raise SchemaError(
                f"tz_offset_hours out of range [-24, 24]: {self.tz_offset_hours}"
            )

    def local_time(self) -> float:
        """Action start time shifted into the user's local clock."""
        return self.time + 3600.0 * self.tz_offset_hours

    def to_dict(self) -> dict:
        """Flat dict representation used by the JSONL/CSV writers."""
        out = {
            "time": self.time,
            "action": self.action,
            "latency_ms": self.latency_ms,
            "user_id": self.user_id,
            "user_class": self.user_class,
            "success": self.success,
            "tz_offset_hours": self.tz_offset_hours,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ActionRecord":
        """Inverse of :meth:`to_dict`; raises :class:`SchemaError` on bad input."""
        try:
            return cls(
                time=float(data["time"]),
                action=str(data["action"]),
                latency_ms=float(data["latency_ms"]),
                user_id=str(data.get("user_id", "")),
                user_class=str(data.get("user_class", "")),
                success=bool(data.get("success", True)),
                tz_offset_hours=float(data.get("tz_offset_hours", 0.0)),
                extra=dict(data.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed record {data!r}: {exc}") from exc
