"""Telemetry substrate: record schema, columnar store, IO, privacy guards.

The paper's substrate is OWA server-side logging (Section 3.1); this package
is its reproduction-scale equivalent: a schema for ``(T, A, L, M)`` tuples,
a NumPy-backed columnar store with vectorized slicing, JSONL/CSV round-trip
IO, composable filters, sessionization, and the anonymization/aggregate-size
guards the paper's ethics posture requires.
"""

from repro.telemetry.anonymize import (
    DEFAULT_MIN_AGGREGATE,
    anonymize_all,
    anonymize_user_id,
    is_guid_shaped,
    require_min_aggregate,
)
from repro.telemetry.csvio import iter_csv, read_csv, write_csv
from repro.telemetry.ingest import (
    INGEST_MODES,
    BadRow,
    IngestCollector,
    IngestPolicy,
    IngestReport,
    read_quarantine,
    validate_record,
)
from repro.telemetry.jsonl import iter_jsonl, read_jsonl, write_jsonl
from repro.telemetry.log_store import LogStore
from repro.telemetry.quality import QualityFlag, QualityReport, quality_report
from repro.telemetry.record import ActionRecord
from repro.telemetry.session import (
    DEFAULT_SESSION_GAP_SECONDS,
    Session,
    session_length_vs_latency,
    sessionize,
)
from repro.telemetry import filters, timeutil

__all__ = [
    "ActionRecord",
    "QualityFlag",
    "QualityReport",
    "quality_report",
    "LogStore",
    "INGEST_MODES",
    "BadRow",
    "IngestCollector",
    "IngestPolicy",
    "IngestReport",
    "read_quarantine",
    "validate_record",
    "read_jsonl",
    "write_jsonl",
    "iter_jsonl",
    "read_csv",
    "write_csv",
    "iter_csv",
    "anonymize_user_id",
    "anonymize_all",
    "is_guid_shaped",
    "require_min_aggregate",
    "DEFAULT_MIN_AGGREGATE",
    "Session",
    "sessionize",
    "session_length_vs_latency",
    "DEFAULT_SESSION_GAP_SECONDS",
    "filters",
    "timeutil",
]
