"""Telemetry quality assessment.

Before trusting an AutoSens run on real logs, check the raw material: time
coverage (gaps starve the unbiased estimator), error share (the analysis
drops failures), duplicate-timestamp share (batched logging), latency
sanity, and per-slice volumes. :func:`quality_report` computes all of it
and flags conditions known to degrade the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import EmptyDataError
from repro.telemetry.ingest import IngestReport
from repro.telemetry.log_store import LogStore


@dataclass
class QualityFlag:
    """One detected data-quality concern."""

    severity: str      # "info" | "warn" | "error"
    message: str


@dataclass
class QualityReport:
    """Aggregate telemetry health metrics plus flags."""

    n_rows: int
    n_users: int
    span_days: float
    error_share: float
    duplicate_time_share: float
    largest_gap_s: float
    coverage_share: float          # share of 10-min windows with >= 1 action
    latency_percentiles: Dict[str, float]
    rows_per_action: Dict[str, int]
    flags: List[QualityFlag] = field(default_factory=list)
    ingest: Optional[IngestReport] = None

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.flags)

    def rows(self) -> List[Tuple[str, object]]:
        """Tabular key/value form for printers."""
        out: List[Tuple[str, object]] = [
            ("rows", self.n_rows),
            ("distinct users", self.n_users),
            ("span (days)", round(self.span_days, 2)),
            ("error share", round(self.error_share, 4)),
            ("duplicate-timestamp share", round(self.duplicate_time_share, 4)),
            ("largest gap (s)", round(self.largest_gap_s, 1)),
            ("10-min window coverage", round(self.coverage_share, 3)),
        ]
        for name, value in self.latency_percentiles.items():
            out.append((f"latency {name} (ms)", round(value, 1)))
        for action, count in sorted(self.rows_per_action.items()):
            out.append((f"rows[{action}]", count))
        if self.ingest is not None:
            out.extend(self.ingest.rows())
        return out


def quality_report(
    logs: LogStore,
    min_rows: int = 1000,
    max_error_share: float = 0.1,
    coverage_window_s: float = 600.0,
    ingest: Optional[IngestReport] = None,
) -> QualityReport:
    """Assess a telemetry batch; never raises on bad data (only on empty).

    ``ingest`` defaults to the store's own :attr:`LogStore.ingest_report`
    (set by the file readers), so rejected-row statistics flow into the
    report and its flags automatically.
    """
    if logs.is_empty:
        raise EmptyDataError("cannot assess empty logs")
    if ingest is None:
        ingest = logs.ingest_report
    flags: List[QualityFlag] = []
    if ingest is not None and ingest.n_bad > 0:
        severity = "warn" if ingest.within_budget else "error"
        breakdown = ", ".join(
            f"{r}={c}" for r, c in sorted(ingest.reasons.items()))
        message = (f"ingestion rejected {ingest.n_bad} rows "
                   f"({ingest.bad_share:.2%}) by fault class: {breakdown}")
        if ingest.quarantine_path:
            message += f"; rejected rows quarantined to {ingest.quarantine_path}"
        flags.append(QualityFlag(severity, message))

    times = np.sort(logs.times)
    start, end = float(times[0]), float(times[-1])
    span_days = (end - start) / 86400.0

    error_share = float(1.0 - logs.success.mean())
    diffs = np.diff(times)
    duplicate_share = float((diffs == 0).mean()) if diffs.size else 0.0
    largest_gap = float(diffs.max()) if diffs.size else 0.0

    if end > start:
        n_windows = int(np.ceil((end - start) / coverage_window_s))
        idx = np.minimum(((times - start) / coverage_window_s).astype(np.int64),
                         n_windows - 1)
        coverage = float(np.unique(idx).size / n_windows)
    else:
        coverage = 0.0

    lat = logs.latencies_ms
    percentiles = {
        "p50": float(np.percentile(lat, 50)),
        "p90": float(np.percentile(lat, 90)),
        "p99": float(np.percentile(lat, 99)),
    }
    per_action = {
        name: int(count) for name, count in zip(
            *np.unique(logs.actions, return_counts=True))
    }

    if len(logs) < min_rows:
        flags.append(QualityFlag(
            "error", f"only {len(logs)} rows; the pipeline needs volume "
                     f"(>= {min_rows} per analyzed slice)"))
    if error_share > max_error_share:
        flags.append(QualityFlag(
            "warn", f"{error_share:.1%} of actions failed; the analysis "
                    "drops them — check for an error storm"))
    if span_days < 1.0:
        flags.append(QualityFlag(
            "warn", f"span is {span_days:.2f} days; the hour-of-day alpha "
                    "correction needs at least one full day"))
    if coverage < 0.6:
        flags.append(QualityFlag(
            "warn", f"only {coverage:.0%} of {coverage_window_s / 60:.0f}-min "
                    "windows contain actions; the unbiased estimator will "
                    "borrow latencies across gaps"))
    if largest_gap > 6 * 3600.0:
        flags.append(QualityFlag(
            "warn", f"largest silence is {largest_gap / 3600.0:.1f} h; "
                    "availability inside it is unobservable"))
    if duplicate_share > 0.5:
        flags.append(QualityFlag(
            "info", f"{duplicate_share:.0%} of consecutive rows share a "
                    "timestamp (batched logging); ties are broken randomly"))
    if percentiles["p50"] <= 0.0:
        flags.append(QualityFlag("warn", "median latency is zero"))
    if (lat < 0).any():
        flags.append(QualityFlag("error", "negative latencies present"))

    return QualityReport(
        n_rows=len(logs),
        n_users=logs.n_users(),
        span_days=span_days,
        error_share=error_share,
        duplicate_time_share=duplicate_share,
        largest_gap_s=largest_gap,
        coverage_share=coverage,
        latency_percentiles=percentiles,
        rows_per_action=per_action,
        flags=flags,
        ingest=ingest,
    )
