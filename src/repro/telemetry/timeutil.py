"""Time discretization helpers.

The paper discretizes time into 1-hour slots for the α estimation
(Section 2.4.1) and into four 6-hour local-time periods for the
time-of-day analyses (Section 3.6). These helpers map raw timestamps to
those discrete labels, honoring per-record timezone offsets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.types import DayPeriod

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def hour_of_day(times: np.ndarray, tz_offset_hours: np.ndarray | float = 0.0) -> np.ndarray:
    """Local hour of day in ``[0, 24)`` for each timestamp."""
    t = np.asarray(times, dtype=float)
    local = t + SECONDS_PER_HOUR * np.asarray(tz_offset_hours, dtype=float)
    return (local % SECONDS_PER_DAY) / SECONDS_PER_HOUR


def hour_slot(times: np.ndarray, tz_offset_hours: np.ndarray | float = 0.0) -> np.ndarray:
    """Integer hour-of-day slot 0..23 (the paper's 1-hour α slots)."""
    return np.floor(hour_of_day(times, tz_offset_hours)).astype(np.int64)


def absolute_hour_slot(times: np.ndarray) -> np.ndarray:
    """Integer slot counting hours since the epoch (not wrapped by day).

    Useful when α should be estimated per *calendar* hour rather than per
    hour-of-day, e.g. for short traces that span only a couple of days.
    """
    return np.floor(np.asarray(times, dtype=float) / SECONDS_PER_HOUR).astype(np.int64)


def day_index(times: np.ndarray, tz_offset_hours: np.ndarray | float = 0.0) -> np.ndarray:
    """Integer day number since the epoch, in local time."""
    t = np.asarray(times, dtype=float)
    local = t + SECONDS_PER_HOUR * np.asarray(tz_offset_hours, dtype=float)
    return np.floor(local / SECONDS_PER_DAY).astype(np.int64)


def day_period(times: np.ndarray, tz_offset_hours: np.ndarray | float = 0.0) -> np.ndarray:
    """Map timestamps to the paper's four 6-hour periods.

    Returns an object array of :class:`repro.types.DayPeriod`.
    """
    hours = hour_of_day(times, tz_offset_hours)
    out = np.empty(hours.shape, dtype=object)
    for i, h in enumerate(hours.ravel()):
        out.ravel()[i] = DayPeriod.of_hour(float(h))
    return out


def month_index(times: np.ndarray, days_per_month: int = 30) -> np.ndarray:
    """Integer month number under a fixed-length synthetic calendar.

    The simulator uses a simplified calendar of ``days_per_month`` days so
    "January vs February" (Figure 9) becomes month 0 vs month 1.
    """
    if days_per_month <= 0:
        raise ConfigError(f"days_per_month must be positive, got {days_per_month}")
    t = np.asarray(times, dtype=float)
    return np.floor(t / (days_per_month * SECONDS_PER_DAY)).astype(np.int64)


def window_index(times: np.ndarray, window_seconds: float) -> np.ndarray:
    """Integer index of the fixed-width time window containing each time."""
    if window_seconds <= 0:
        raise ConfigError(f"window_seconds must be positive, got {window_seconds}")
    return np.floor(np.asarray(times, dtype=float) / window_seconds).astype(np.int64)
