"""Policy-driven resilient ingestion.

Server logs in the wild always have a few bad rows. This module decides
what happens to them. Every telemetry reader threads its rows through an
:class:`IngestPolicy`:

- ``strict`` — the first bad row raises :class:`~repro.errors.SchemaError`
  with the file and line number (the historical default, unchanged).
- ``lenient`` — bad rows are counted and skipped; the read succeeds as long
  as the bad-row share stays within the policy's error budget.
- ``quarantine`` — like ``lenient``, but every bad row is additionally
  written to a quarantine JSONL sink (one object per bad row: line number,
  reason, raw text) so nothing is silently lost.

The quarantine sink is *crash-safe*: every record is serialized whole
(newline included) and lands in one ``os.write`` on an ``O_APPEND``
descriptor, so a process dying mid-quarantine can at worst truncate the
final record — it can never interleave or tear an earlier line. The sink
is fsynced on close, and :func:`read_quarantine` tolerates a truncated
trailing record, so a quarantine file survives its writer's crash and
never poisons re-ingestion.

Every read produces an :class:`IngestReport` — row/bad-row counts, a
per-reason breakdown, a sample of the first offenders — which the readers
attach to the returned :class:`~repro.telemetry.log_store.LogStore` and the
CLI ``quality``/``preflight`` commands print. Exceeding the error budget
raises :class:`~repro.errors.IngestError` carrying the report.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import repro.obs as obs
from repro.errors import ConfigError, IngestError

_log = obs.get_logger(__name__)

__all__ = [
    "INGEST_MODES",
    "BadRow",
    "IngestPolicy",
    "IngestReport",
    "IngestCollector",
    "read_quarantine",
    "validate_record",
]

#: Accepted ``IngestPolicy.mode`` values.
INGEST_MODES = ("strict", "lenient", "quarantine")

#: How many offending rows an :class:`IngestReport` keeps verbatim.
_SAMPLE_LIMIT = 10

#: Quarantined raw lines are truncated to this many characters.
_RAW_LIMIT = 500


@dataclass(frozen=True)
class IngestPolicy:
    """How a reader treats rows that fail to parse or validate.

    ``max_bad_share`` is the error budget: in ``lenient``/``quarantine``
    mode the read fails with :class:`~repro.errors.IngestError` once more
    than that share of seen rows is bad (checked at end of file, and
    eagerly once enough rows have been seen to make the verdict stable).
    ``quarantine_path`` is required in ``quarantine`` mode.
    """

    mode: str = "strict"
    max_bad_share: float = 0.05
    quarantine_path: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.mode not in INGEST_MODES:
            raise ConfigError(
                f"unknown ingest mode {self.mode!r}; pick one of {INGEST_MODES}"
            )
        if not 0.0 <= self.max_bad_share <= 1.0:
            raise ConfigError(
                f"max_bad_share must be in [0, 1], got {self.max_bad_share}"
            )
        if self.mode == "quarantine" and self.quarantine_path is None:
            raise ConfigError("quarantine mode needs a quarantine_path")

    @classmethod
    def of(cls, spec: Union[None, str, "IngestPolicy"],
           quarantine_path: Optional[Union[str, Path]] = None) -> "IngestPolicy":
        """Coerce a user-facing spec (name or policy) into a policy."""
        if spec is None:
            return cls()
        if isinstance(spec, IngestPolicy):
            return spec
        if isinstance(spec, str):
            return cls(mode=spec, quarantine_path=quarantine_path)
        raise ConfigError(f"cannot interpret ingest policy spec {spec!r}")


@dataclass(frozen=True)
class BadRow:
    """One rejected input row: where it was, why, and what it said."""

    lineno: int
    reason: str
    raw: str = ""


@dataclass
class IngestReport:
    """Structured outcome of one telemetry read.

    ``n_rows`` counts rows that made it into the store; ``n_bad`` counts
    rejected rows. ``reasons`` maps a short reason category (e.g.
    ``"json-decode"``, ``"schema"``, ``"non-finite"``) to its count, and
    ``sample`` keeps the first few offenders verbatim for debugging.
    """

    source: str = ""
    mode: str = "strict"
    n_rows: int = 0
    n_bad: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)
    sample: List[BadRow] = field(default_factory=list)
    quarantine_path: Optional[str] = None
    max_bad_share: float = 0.05

    @property
    def n_seen(self) -> int:
        return self.n_rows + self.n_bad

    @property
    def bad_share(self) -> float:
        seen = self.n_seen
        return (self.n_bad / seen) if seen else 0.0

    @property
    def within_budget(self) -> bool:
        return self.n_bad == 0 or self.bad_share <= self.max_bad_share

    @property
    def clean(self) -> bool:
        return self.n_bad == 0

    def rows(self) -> List[Tuple[str, object]]:
        """Tabular key/value form for the CLI printers."""
        out: List[Tuple[str, object]] = [
            ("ingest mode", self.mode),
            ("rows ingested", self.n_rows),
            ("rows rejected", self.n_bad),
            ("bad-row share", round(self.bad_share, 4)),
            ("error budget", self.max_bad_share),
        ]
        for reason, count in sorted(self.reasons.items()):
            out.append((f"rejected[{reason}]", count))
        if self.quarantine_path:
            out.append(("quarantine file", self.quarantine_path))
        return out

    def summary(self) -> str:
        if self.clean:
            return f"{self.n_rows} rows, no rejects"
        reasons = ", ".join(
            f"{reason}={count}" for reason, count in sorted(self.reasons.items())
        )
        return (
            f"{self.n_rows} rows, {self.n_bad} rejected "
            f"({self.bad_share:.2%}; {reasons})"
        )


def validate_record(record) -> None:
    """Value-level checks the schema alone cannot express.

    ``NaN`` slips past :class:`~repro.telemetry.record.ActionRecord`'s
    range checks (``nan < 0`` is false), and an infinite timestamp would
    poison every downstream histogram, so the readers reject non-finite
    numerics here. Raises :class:`~repro.errors.SchemaError`.
    """
    import math

    from repro.errors import SchemaError

    for name in ("time", "latency_ms", "tz_offset_hours"):
        value = getattr(record, name)
        if not math.isfinite(value):
            raise SchemaError(f"{name} is not finite: {value!r}")


class IngestCollector:
    """Accumulates an :class:`IngestReport` while a reader streams rows.

    The readers call :meth:`good` per accepted row and :meth:`bad` per
    rejected one; :meth:`bad` re-raises under the strict policy and feeds
    the quarantine sink otherwise. :meth:`finish` closes the sink and
    enforces the error budget.
    """

    def __init__(self, policy: IngestPolicy, source: Union[str, Path] = "") -> None:
        self.policy = policy
        self.report = IngestReport(
            source=str(source),
            mode=policy.mode,
            max_bad_share=policy.max_bad_share,
            quarantine_path=(
                str(policy.quarantine_path)
                if policy.mode == "quarantine" and policy.quarantine_path
                else None
            ),
        )
        self._sink = None

    def good(self) -> None:
        self.report.n_rows += 1

    def bad(self, lineno: int, reason: str, raw: str, exc: Exception) -> None:
        """Record one rejected row; raises under the strict policy."""
        if self.policy.mode == "strict":
            from repro.errors import SchemaError

            raise SchemaError(f"{self.report.source}:{lineno}: {exc}") from exc
        self.report.n_bad += 1
        self.report.reasons[reason] = self.report.reasons.get(reason, 0) + 1
        truncated = raw[:_RAW_LIMIT]
        if len(self.report.sample) < _SAMPLE_LIMIT:
            self.report.sample.append(
                BadRow(lineno=lineno, reason=reason, raw=truncated)
            )
        if self.policy.mode == "quarantine":
            if self._sink is None:
                path = Path(self.policy.quarantine_path)
                path.parent.mkdir(parents=True, exist_ok=True)
                # A fresh file per read, appended atomically thereafter:
                # each record goes down in ONE os.write of the complete
                # line, so a crash mid-quarantine can only truncate the
                # final record, never tear or interleave an earlier one.
                self._sink = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND,
                    0o644,
                )
            line = json.dumps({
                "source": self.report.source,
                "lineno": lineno,
                "reason": reason,
                "error": str(exc),
                "raw": truncated,
            }, separators=(",", ":")) + "\n"
            os.write(self._sink, line.encode("utf-8"))

    def finish(self) -> IngestReport:
        """Close the quarantine sink and enforce the error budget.

        Also flushes the read's totals into the metrics registry — once per
        read, not per row, so the streaming loop stays untouched:
        ``autosens_ingest_rows_total{mode,outcome}`` with ``outcome`` one of
        ``read`` (accepted), ``skipped`` (rejected, lenient) or
        ``quarantined`` (rejected and written to the quarantine sink).
        """
        if self._sink is not None:
            os.fsync(self._sink)
            os.close(self._sink)
            self._sink = None
        report = self.report
        mode = self.policy.mode
        if report.n_rows:
            obs.inc("autosens_ingest_rows_total", float(report.n_rows),
                    mode=mode, outcome="read")
        if report.n_bad:
            outcome = "quarantined" if mode == "quarantine" else "skipped"
            obs.inc("autosens_ingest_rows_total", float(report.n_bad),
                    mode=mode, outcome=outcome)
            for reason, count in sorted(report.reasons.items()):
                obs.inc("autosens_ingest_rejects_total", float(count),
                        mode=mode, reason=reason)
            _log.warning(
                "ingest rejects", source=report.source, mode=mode,
                n_bad=report.n_bad, bad_share=round(report.bad_share, 4),
                quarantine=report.quarantine_path or "",
            )
        if not report.within_budget:
            raise IngestError(
                f"{report.source}: {report.summary()} — exceeds the "
                f"error budget of {self.policy.max_bad_share:.2%}",
                report=report,
            )
        return report


def read_quarantine(path: Union[str, Path]) -> List[dict]:
    """Read a quarantine JSONL file back, surviving a torn final record.

    Because the sink appends each record in a single write, the only
    possible corruption is a truncated *trailing* line (the writer died
    mid-record). That line is dropped with a counted warning; a torn line
    anywhere else means the file was not produced by the atomic sink and
    raises :class:`~repro.errors.IngestError`.
    """
    path = Path(path)
    records: List[dict] = []
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lines = fh.read().split("\n")
    # A well-formed file ends with "\n" → the final split element is "".
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                obs.inc("autosens_quarantine_torn_total")
                _log.warning(
                    "quarantine file ends in a torn record; dropped",
                    source=str(path), lineno=i + 1,
                )
                continue
            raise IngestError(
                f"{path}: line {i + 1} is not valid JSON — the file was "
                "not written by the atomic quarantine sink"
            )
    return records
