"""JSON-lines reader/writer for telemetry logs.

One JSON object per line with the :meth:`ActionRecord.to_dict` fields.
The reader is streaming (constant memory until materialized into a
:class:`LogStore`) and strict by default: malformed lines raise
:class:`SchemaError` with the line number — server logs in the wild always
have a few bad rows, so pass an :class:`~repro.telemetry.ingest.IngestPolicy`
(``"lenient"`` or ``"quarantine"``) to route them to a quarantine sink under
an error budget instead. :func:`read_jsonl` attaches the resulting
:class:`~repro.telemetry.ingest.IngestReport` to the returned store
(``store.ingest_report``; ``store.n_skipped_rows`` is the skip count).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.errors import SchemaError
from repro.telemetry.ingest import IngestCollector, IngestPolicy, validate_record
from repro.telemetry.log_store import LogStore
from repro.telemetry.record import ActionRecord

PathLike = Union[str, Path]
PolicyLike = Union[None, str, IngestPolicy]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_jsonl(records: Iterable[ActionRecord], path: PathLike) -> int:
    """Write records to a (optionally ``.gz``) JSONL file; returns row count."""
    path = Path(path)
    count = 0
    with _open_text(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record.to_dict(), separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def _resolve_policy(strict: bool, policy: PolicyLike) -> IngestPolicy:
    """The legacy ``strict`` flag maps onto the policy modes."""
    if policy is not None:
        return IngestPolicy.of(policy)
    return IngestPolicy(mode="strict" if strict else "lenient", max_bad_share=1.0)


def iter_jsonl(
    path: PathLike,
    strict: bool = True,
    policy: PolicyLike = None,
    collector: Optional[IngestCollector] = None,
) -> Iterator[ActionRecord]:
    """Stream records from a JSONL file.

    ``policy`` (an :class:`~repro.telemetry.ingest.IngestPolicy` or mode
    name) supersedes the legacy ``strict`` flag; ``strict=False`` alone is
    equivalent to a lenient policy with an unlimited error budget. Pass a
    ``collector`` to receive per-row accounting — or use :func:`read_jsonl`,
    which does so and attaches the report to the store.
    """
    path = Path(path)
    own_collector = collector is None
    if collector is None:
        collector = IngestCollector(_resolve_policy(strict, policy), source=path)
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                collector.bad(lineno, "json-decode", line, exc)
                continue
            try:
                if not isinstance(data, dict):
                    raise SchemaError(f"expected a JSON object, got {type(data).__name__}")
                record = ActionRecord.from_dict(data)
                validate_record(record)
            except SchemaError as exc:
                reason = "non-finite" if "not finite" in str(exc) else "schema"
                collector.bad(lineno, reason, line, exc)
                continue
            collector.good()
            yield record
    if own_collector:
        collector.finish()


def read_jsonl(
    path: PathLike,
    strict: bool = True,
    policy: PolicyLike = None,
) -> LogStore:
    """Read a whole JSONL file into a :class:`LogStore`.

    The returned store carries the read's
    :class:`~repro.telemetry.ingest.IngestReport` as ``ingest_report``
    (``n_skipped_rows`` exposes the lenient-mode skip count that used to be
    silently lost). Raises :class:`~repro.errors.IngestError` when the
    policy's error budget is exceeded.
    """
    path = Path(path)
    collector = IngestCollector(_resolve_policy(strict, policy), source=path)
    store = LogStore.from_records(
        iter_jsonl(path, strict=strict, policy=policy, collector=collector)
    )
    store.ingest_report = collector.finish()
    return store
