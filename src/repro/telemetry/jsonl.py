"""JSON-lines reader/writer for telemetry logs.

One JSON object per line with the :meth:`ActionRecord.to_dict` fields.
The reader is streaming (constant memory until materialized into a
:class:`LogStore`) and strict by default: malformed lines raise
:class:`SchemaError` with the line number, or are counted and skipped when
``strict=False`` — server logs in the wild always have a few bad rows.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import SchemaError
from repro.telemetry.log_store import LogStore
from repro.telemetry.record import ActionRecord

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_jsonl(records: Iterable[ActionRecord], path: PathLike) -> int:
    """Write records to a (optionally ``.gz``) JSONL file; returns row count."""
    path = Path(path)
    count = 0
    with _open_text(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record.to_dict(), separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def iter_jsonl(path: PathLike, strict: bool = True) -> Iterator[ActionRecord]:
    """Stream records from a JSONL file.

    With ``strict=False`` malformed lines are skipped silently; use
    :func:`read_jsonl` to get the skip count.
    """
    path = Path(path)
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield ActionRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, SchemaError) as exc:
                if strict:
                    raise SchemaError(f"{path}:{lineno}: {exc}") from exc


def read_jsonl(path: PathLike, strict: bool = True) -> LogStore:
    """Read a whole JSONL file into a :class:`LogStore`."""
    return LogStore.from_records(iter_jsonl(path, strict=strict))
