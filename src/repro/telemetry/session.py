"""Sessionization of per-user action streams.

Not required by the core AutoSens pipeline, but used by extension analyses:
the "stay-or-leave" framing in the paper's Section 2.1 ("when the service is
fast and responsive, users would likely stay on and do more actions") is
naturally examined via sessions — maximal runs of one user's actions with no
gap exceeding a timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError, EmptyDataError
from repro.telemetry.log_store import LogStore

DEFAULT_SESSION_GAP_SECONDS = 30 * 60.0


@dataclass(frozen=True)
class Session:
    """A maximal run of one user's actions separated by gaps <= the timeout."""

    user_code: int
    start: float
    end: float
    n_actions: int
    mean_latency_ms: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def sessionize(
    logs: LogStore,
    gap_seconds: float = DEFAULT_SESSION_GAP_SECONDS,
) -> List[Session]:
    """Split logs into per-user sessions.

    Rows are grouped by user, sorted by time, and cut wherever the
    inter-action gap exceeds ``gap_seconds``.
    """
    if gap_seconds <= 0:
        raise ConfigError(f"gap_seconds must be positive, got {gap_seconds}")
    if logs.is_empty:
        return []
    order = np.lexsort((logs.times, logs.user_codes))
    users = logs.user_codes[order]
    times = logs.times[order]
    lats = logs.latencies_ms[order]

    sessions: List[Session] = []
    start_idx = 0
    n = users.size
    for i in range(1, n + 1):
        boundary = (
            i == n
            or users[i] != users[start_idx]
            or times[i] - times[i - 1] > gap_seconds
        )
        if boundary:
            seg_lats = lats[start_idx:i]
            sessions.append(
                Session(
                    user_code=int(users[start_idx]),
                    start=float(times[start_idx]),
                    end=float(times[i - 1]),
                    n_actions=int(i - start_idx),
                    mean_latency_ms=float(seg_lats.mean()),
                )
            )
            start_idx = i
    return sessions


def session_length_vs_latency(
    sessions: List[Session],
    latency_split_ms: float,
) -> tuple[float, float]:
    """Mean session length (actions) for sessions below/above a latency split.

    Returns ``(mean_actions_fast, mean_actions_slow)``. An extension
    diagnostic: with a genuine latency preference, fast sessions run longer.
    """
    if not sessions:
        raise EmptyDataError("no sessions to analyze")
    fast = [s.n_actions for s in sessions if s.mean_latency_ms < latency_split_ms]
    slow = [s.n_actions for s in sessions if s.mean_latency_ms >= latency_split_ms]
    if not fast or not slow:
        raise EmptyDataError(
            f"latency split {latency_split_ms} ms leaves an empty side "
            f"({len(fast)} fast, {len(slow)} slow sessions)"
        )
    return float(np.mean(fast)), float(np.mean(slow))
