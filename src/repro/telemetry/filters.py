"""Composable row predicates over a :class:`LogStore`.

:meth:`LogStore.where` covers the common conjunctive slices; these predicate
objects cover the long tail — arbitrary boolean combinations, reusable slice
definitions for the experiment registry, and serializable descriptions for
report headers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple, Union

import numpy as np

from repro.telemetry import timeutil
from repro.telemetry.log_store import LogStore, _PERIOD_HOURS
from repro.types import ActionType, DayPeriod, UserClass


class Predicate:
    """A named boolean row-mask over a log store, supporting ``& | ~``."""

    def __init__(self, fn: Callable[[LogStore], np.ndarray], name: str) -> None:
        self._fn = fn
        self.name = name

    def mask(self, logs: LogStore) -> np.ndarray:
        out = np.asarray(self._fn(logs), dtype=bool)
        if out.shape != logs.times.shape:
            raise ValueError(f"predicate {self.name!r} returned a bad mask shape")
        return out

    def apply(self, logs: LogStore) -> LogStore:
        return logs.filter(self.mask(logs))

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda logs: self.mask(logs) & other.mask(logs),
            f"({self.name} & {other.name})",
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda logs: self.mask(logs) | other.mask(logs),
            f"({self.name} | {other.name})",
        )

    def __invert__(self) -> "Predicate":
        return Predicate(lambda logs: ~self.mask(logs), f"~{self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate({self.name})"


def action_is(action: Union[str, ActionType]) -> Predicate:
    """Rows whose action type matches."""
    name = action.value if isinstance(action, ActionType) else str(action)

    def fn(logs: LogStore) -> np.ndarray:
        if name not in logs.action_vocab:
            return np.zeros(len(logs), dtype=bool)
        return logs.action_codes == logs.action_vocab.index(name)

    return Predicate(fn, f"action={name}")


def user_class_is(user_class: Union[str, UserClass]) -> Predicate:
    """Rows whose user class matches."""
    name = user_class.value if isinstance(user_class, UserClass) else str(user_class)

    def fn(logs: LogStore) -> np.ndarray:
        if name not in logs.class_vocab:
            return np.zeros(len(logs), dtype=bool)
        return logs.class_codes == logs.class_vocab.index(name)

    return Predicate(fn, f"class={name}")


def in_period(period: DayPeriod) -> Predicate:
    """Rows in one of the four six-hour local-time periods."""

    def fn(logs: LogStore) -> np.ndarray:
        hours = timeutil.hour_of_day(logs.times, logs.tz_offsets)
        lo, hi = _PERIOD_HOURS[period]
        if lo < hi:
            return (hours >= lo) & (hours < hi)
        return (hours >= lo) | (hours < hi)

    return Predicate(fn, f"period={period.value}")


def in_month(month: int, days_per_month: int = 30) -> Predicate:
    """Rows in a synthetic-calendar month (0-based)."""

    def fn(logs: LogStore) -> np.ndarray:
        return timeutil.month_index(logs.times, days_per_month) == month

    return Predicate(fn, f"month={month}")


def latency_between(low_ms: float, high_ms: float) -> Predicate:
    """Rows with latency in ``[low_ms, high_ms)``."""

    def fn(logs: LogStore) -> np.ndarray:
        return (logs.latencies_ms >= low_ms) & (logs.latencies_ms < high_ms)

    return Predicate(fn, f"latency=[{low_ms},{high_ms})")


def time_between(start: float, end: float) -> Predicate:
    """Rows with timestamp in ``[start, end)``."""

    def fn(logs: LogStore) -> np.ndarray:
        return (logs.times >= start) & (logs.times < end)

    return Predicate(fn, f"time=[{start},{end})")


def successful() -> Predicate:
    """Rows whose action succeeded (the paper drops errors)."""
    return Predicate(lambda logs: logs.success.copy(), "success")


def everything() -> Predicate:
    """The trivially-true predicate (useful as a fold seed)."""
    return Predicate(lambda logs: np.ones(len(logs), dtype=bool), "all")
