"""CSV reader/writer for telemetry logs.

A flat-file interchange format for spreadsheets and other tools. The column
set matches :meth:`ActionRecord.to_dict` minus the free-form ``extra``
mapping (CSV is flat); ``extra`` is dropped on write. The reader honors the
same :class:`~repro.telemetry.ingest.IngestPolicy` machinery as the JSONL
reader: bad rows raise, are skipped under a budget, or land in a quarantine
sink, and :func:`read_csv` attaches an
:class:`~repro.telemetry.ingest.IngestReport` to the returned store.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.errors import SchemaError
from repro.telemetry.ingest import IngestCollector, IngestPolicy, validate_record
from repro.telemetry.jsonl import _resolve_policy
from repro.telemetry.log_store import LogStore
from repro.telemetry.record import ActionRecord

PathLike = Union[str, Path]
PolicyLike = Union[None, str, IngestPolicy]

FIELDS = [
    "time",
    "action",
    "latency_ms",
    "user_id",
    "user_class",
    "success",
    "tz_offset_hours",
]


def write_csv(records: Iterable[ActionRecord], path: PathLike) -> int:
    """Write records to CSV with a header row; returns row count."""
    path = Path(path)
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=FIELDS, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            row = record.to_dict()
            row["success"] = int(row["success"])
            writer.writerow(row)
            count += 1
    return count


def iter_csv(
    path: PathLike,
    strict: bool = True,
    policy: PolicyLike = None,
    collector: Optional[IngestCollector] = None,
) -> Iterator[ActionRecord]:
    """Stream records from a CSV file written by :func:`write_csv`.

    Same policy semantics as :func:`~repro.telemetry.jsonl.iter_jsonl`.
    A missing/incomplete header is never survivable and raises
    :class:`SchemaError` under every policy.
    """
    path = Path(path)
    own_collector = collector is None
    if collector is None:
        collector = IngestCollector(_resolve_policy(strict, policy), source=path)
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        missing = set(("time", "action", "latency_ms")) - set(reader.fieldnames or [])
        if missing:
            raise SchemaError(f"{path}: missing required CSV columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            try:
                record = ActionRecord(
                    time=float(row["time"]),
                    action=row["action"],
                    latency_ms=float(row["latency_ms"]),
                    user_id=row.get("user_id", "") or "",
                    user_class=row.get("user_class", "") or "",
                    success=bool(int(row.get("success", 1) or 1)),
                    tz_offset_hours=float(row.get("tz_offset_hours", 0) or 0),
                )
                validate_record(record)
            except (TypeError, ValueError, SchemaError) as exc:
                reason = ("non-finite" if "not finite" in str(exc) else
                          "schema" if isinstance(exc, SchemaError) else "parse")
                raw = ",".join("" if v is None else str(v) for v in row.values())
                collector.bad(lineno, reason, raw, exc)
                continue
            collector.good()
            yield record
    if own_collector:
        collector.finish()


def read_csv(
    path: PathLike,
    strict: bool = True,
    policy: PolicyLike = None,
) -> LogStore:
    """Read a whole CSV file into a :class:`LogStore`.

    Attaches the read's :class:`~repro.telemetry.ingest.IngestReport` as
    ``store.ingest_report``; raises :class:`~repro.errors.IngestError` when
    the policy's error budget is exceeded.
    """
    path = Path(path)
    collector = IngestCollector(_resolve_policy(strict, policy), source=path)
    store = LogStore.from_records(
        iter_csv(path, strict=strict, policy=policy, collector=collector)
    )
    store.ingest_report = collector.finish()
    return store
