"""CSV reader/writer for telemetry logs.

A flat-file interchange format for spreadsheets and other tools. The column
set matches :meth:`ActionRecord.to_dict` minus the free-form ``extra``
mapping (CSV is flat); ``extra`` is dropped on write.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import SchemaError
from repro.telemetry.log_store import LogStore
from repro.telemetry.record import ActionRecord

PathLike = Union[str, Path]

FIELDS = [
    "time",
    "action",
    "latency_ms",
    "user_id",
    "user_class",
    "success",
    "tz_offset_hours",
]


def write_csv(records: Iterable[ActionRecord], path: PathLike) -> int:
    """Write records to CSV with a header row; returns row count."""
    path = Path(path)
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=FIELDS, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            row = record.to_dict()
            row["success"] = int(row["success"])
            writer.writerow(row)
            count += 1
    return count


def iter_csv(path: PathLike, strict: bool = True) -> Iterator[ActionRecord]:
    """Stream records from a CSV file written by :func:`write_csv`."""
    path = Path(path)
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        missing = set(("time", "action", "latency_ms")) - set(reader.fieldnames or [])
        if missing:
            raise SchemaError(f"{path}: missing required CSV columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            try:
                yield ActionRecord(
                    time=float(row["time"]),
                    action=row["action"],
                    latency_ms=float(row["latency_ms"]),
                    user_id=row.get("user_id", "") or "",
                    user_class=row.get("user_class", "") or "",
                    success=bool(int(row.get("success", 1) or 1)),
                    tz_offset_hours=float(row.get("tz_offset_hours", 0) or 0),
                )
            except (TypeError, ValueError, SchemaError) as exc:
                if strict:
                    raise SchemaError(f"{path}:{lineno}: {exc}") from exc


def read_csv(path: PathLike, strict: bool = True) -> LogStore:
    """Read a whole CSV file into a :class:`LogStore`."""
    return LogStore.from_records(iter_csv(path, strict=strict))
