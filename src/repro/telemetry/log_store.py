"""Columnar, NumPy-backed telemetry store.

At the paper's scale (billions of rows) telemetry lives in a data warehouse;
at reproduction scale a columnar in-memory store with vectorized filtering
plays that role. Strings (action names, user ids, user classes) are
dictionary-encoded: each :class:`LogStore` carries integer code columns plus
shared vocabularies, so filtering and grouping never touch Python strings.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import EmptyDataError, SchemaError
from repro.telemetry.record import ActionRecord
from repro.telemetry import timeutil
from repro.types import ActionType, DayPeriod, UserClass


def _encode(values: Sequence[str], vocab: List[str]) -> np.ndarray:
    """Dictionary-encode ``values`` into ``vocab`` (extended in place)."""
    index = {name: i for i, name in enumerate(vocab)}
    codes = np.empty(len(values), dtype=np.int64)
    for i, name in enumerate(values):
        code = index.get(name)
        if code is None:
            code = len(vocab)
            vocab.append(name)
            index[name] = code
        codes[i] = code
    return codes


def _as_name(value: Union[str, ActionType, UserClass]) -> str:
    if isinstance(value, (ActionType, UserClass)):
        return value.value
    return str(value)


class LogStore:
    """An immutable columnar batch of :class:`ActionRecord` rows.

    Construction is via :meth:`from_records`, :meth:`from_arrays`, or the
    telemetry readers. All filtering methods return new stores sharing the
    vocabularies (cheap views of the underlying arrays where possible).

    Stores built by the file readers carry the read's
    :class:`~repro.telemetry.ingest.IngestReport` as ``ingest_report``
    (``None`` for stores built in memory); :attr:`n_skipped_rows` exposes
    its skip count.
    """

    #: Set by the telemetry readers; ``None`` for in-memory stores.
    ingest_report = None

    def __init__(
        self,
        times: np.ndarray,
        latencies_ms: np.ndarray,
        action_codes: np.ndarray,
        user_codes: np.ndarray,
        class_codes: np.ndarray,
        success: np.ndarray,
        tz_offsets: np.ndarray,
        action_vocab: List[str],
        user_vocab: List[str],
        class_vocab: List[str],
    ) -> None:
        n = len(times)
        columns = (latencies_ms, action_codes, user_codes, class_codes, success, tz_offsets)
        if any(len(c) != n for c in columns):
            raise SchemaError("all columns must have equal length")
        self.times = np.asarray(times, dtype=float)
        self.latencies_ms = np.asarray(latencies_ms, dtype=float)
        self.action_codes = np.asarray(action_codes, dtype=np.int64)
        self.user_codes = np.asarray(user_codes, dtype=np.int64)
        self.class_codes = np.asarray(class_codes, dtype=np.int64)
        self.success = np.asarray(success, dtype=bool)
        self.tz_offsets = np.asarray(tz_offsets, dtype=float)
        self.action_vocab = action_vocab
        self.user_vocab = user_vocab
        self.class_vocab = class_vocab

    # -- constructors --------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[ActionRecord]) -> "LogStore":
        """Build a store from an iterable of records."""
        rows = list(records)
        action_vocab: List[str] = []
        user_vocab: List[str] = []
        class_vocab: List[str] = []
        return cls(
            times=np.array([r.time for r in rows], dtype=float),
            latencies_ms=np.array([r.latency_ms for r in rows], dtype=float),
            action_codes=_encode([r.action for r in rows], action_vocab),
            user_codes=_encode([r.user_id for r in rows], user_vocab),
            class_codes=_encode([r.user_class for r in rows], class_vocab),
            success=np.array([r.success for r in rows], dtype=bool),
            tz_offsets=np.array([r.tz_offset_hours for r in rows], dtype=float),
            action_vocab=action_vocab,
            user_vocab=user_vocab,
            class_vocab=class_vocab,
        )

    @classmethod
    def from_arrays(
        cls,
        times: np.ndarray,
        latencies_ms: np.ndarray,
        actions: Sequence[str],
        user_ids: Optional[Sequence[str]] = None,
        user_classes: Optional[Sequence[str]] = None,
        success: Optional[np.ndarray] = None,
        tz_offsets: Optional[np.ndarray] = None,
    ) -> "LogStore":
        """Build a store from parallel arrays; missing metadata defaults."""
        n = len(times)
        action_vocab: List[str] = []
        user_vocab: List[str] = []
        class_vocab: List[str] = []
        if user_ids is None:
            user_ids = [""] * n
        if user_classes is None:
            user_classes = [""] * n
        return cls(
            times=np.asarray(times, dtype=float),
            latencies_ms=np.asarray(latencies_ms, dtype=float),
            action_codes=_encode(list(actions), action_vocab),
            user_codes=_encode(list(user_ids), user_vocab),
            class_codes=_encode(list(user_classes), class_vocab),
            success=(np.ones(n, dtype=bool) if success is None
                     else np.asarray(success, dtype=bool)),
            tz_offsets=(np.zeros(n, dtype=float) if tz_offsets is None
                        else np.asarray(tz_offsets, dtype=float)),
            action_vocab=action_vocab,
            user_vocab=user_vocab,
            class_vocab=class_vocab,
        )

    @classmethod
    def from_coded_arrays(
        cls,
        times: np.ndarray,
        latencies_ms: np.ndarray,
        action_codes: np.ndarray,
        action_vocab: Sequence[str],
        user_codes: np.ndarray,
        user_vocab: Sequence[str],
        class_codes: np.ndarray,
        class_vocab: Sequence[str],
        success: Optional[np.ndarray] = None,
        tz_offsets: Optional[np.ndarray] = None,
    ) -> "LogStore":
        """Zero-copy constructor for already dictionary-encoded columns."""
        n = len(times)
        return cls(
            times=times,
            latencies_ms=latencies_ms,
            action_codes=action_codes,
            user_codes=user_codes,
            class_codes=class_codes,
            success=(np.ones(n, dtype=bool) if success is None else success),
            tz_offsets=(np.zeros(n, dtype=float) if tz_offsets is None else tz_offsets),
            action_vocab=list(action_vocab),
            user_vocab=list(user_vocab),
            class_vocab=list(class_vocab),
        )

    # -- basic views -----------------------------------------------------

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def n_skipped_rows(self) -> int:
        """Rows the reader rejected while building this store (0 if none).

        This is the lenient-mode skip count that ``read_jsonl`` historically
        lost; see :attr:`ingest_report` for the full breakdown.
        """
        return self.ingest_report.n_bad if self.ingest_report is not None else 0

    @property
    def actions(self) -> np.ndarray:
        """Action names as an object array (decoded)."""
        vocab = np.asarray(self.action_vocab, dtype=object)
        return vocab[self.action_codes]

    @property
    def user_classes(self) -> np.ndarray:
        """User class names as an object array (decoded)."""
        vocab = np.asarray(self.class_vocab, dtype=object)
        return vocab[self.class_codes]

    @property
    def local_times(self) -> np.ndarray:
        """Timestamps shifted into each user's local clock."""
        return self.times + 3600.0 * self.tz_offsets

    def time_range(self) -> Tuple[float, float]:
        """(min, max) timestamp; raises on an empty store."""
        if self.is_empty:
            raise EmptyDataError("empty log store has no time range")
        return float(self.times.min()), float(self.times.max())

    def duration(self) -> float:
        """Observation span in seconds."""
        lo, hi = self.time_range()
        return hi - lo

    def action_names(self) -> List[str]:
        """Distinct action names actually present, in vocab order."""
        present = np.unique(self.action_codes)
        return [self.action_vocab[int(c)] for c in present]

    def class_names(self) -> List[str]:
        """Distinct user class names actually present, in vocab order."""
        present = np.unique(self.class_codes)
        return [self.class_vocab[int(c)] for c in present]

    def n_users(self) -> int:
        """Number of distinct users present."""
        return int(np.unique(self.user_codes).size)

    def tz_offsets_present(self) -> List[float]:
        """Distinct timezone offsets (regions) present, sorted."""
        return sorted(float(x) for x in np.unique(self.tz_offsets))

    # -- filtering ---------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "LogStore":
        """Return the rows where ``mask`` is true (vocabularies shared)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.times.shape:
            raise SchemaError("mask must have one entry per row")
        return LogStore(
            times=self.times[mask],
            latencies_ms=self.latencies_ms[mask],
            action_codes=self.action_codes[mask],
            user_codes=self.user_codes[mask],
            class_codes=self.class_codes[mask],
            success=self.success[mask],
            tz_offsets=self.tz_offsets[mask],
            action_vocab=self.action_vocab,
            user_vocab=self.user_vocab,
            class_vocab=self.class_vocab,
        )

    def where(
        self,
        action: Union[str, ActionType, None] = None,
        user_class: Union[str, UserClass, None] = None,
        period: Optional[DayPeriod] = None,
        month: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
        user_codes: Optional[np.ndarray] = None,
        tz_offset: Optional[float] = None,
        success_only: bool = True,
        days_per_month: int = 30,
    ) -> "LogStore":
        """Vectorized multi-criteria slice.

        All criteria are conjunctive; ``None`` means "no constraint". The
        paper's analyses only consider successful actions, hence
        ``success_only`` defaults to true.
        """
        mask = np.ones(len(self), dtype=bool)
        if success_only:
            mask &= self.success
        if action is not None:
            name = _as_name(action)
            try:
                code = self.action_vocab.index(name)
            except ValueError:
                return self.filter(np.zeros(len(self), dtype=bool))
            mask &= self.action_codes == code
        if user_class is not None:
            name = _as_name(user_class)
            try:
                code = self.class_vocab.index(name)
            except ValueError:
                return self.filter(np.zeros(len(self), dtype=bool))
            mask &= self.class_codes == code
        if period is not None:
            hours = timeutil.hour_of_day(self.times, self.tz_offsets)
            lo, hi = _PERIOD_HOURS[period]
            if lo < hi:
                mask &= (hours >= lo) & (hours < hi)
            else:  # wraps midnight
                mask &= (hours >= lo) | (hours < hi)
        if month is not None:
            mask &= timeutil.month_index(self.times, days_per_month) == month
        if time_range is not None:
            lo_t, hi_t = time_range
            mask &= (self.times >= lo_t) & (self.times < hi_t)
        if user_codes is not None:
            mask &= np.isin(self.user_codes, np.asarray(user_codes, dtype=np.int64))
        if tz_offset is not None:
            mask &= np.isclose(self.tz_offsets, tz_offset)
        return self.filter(mask)

    def successful(self) -> "LogStore":
        """Only the rows where the action succeeded."""
        return self.filter(self.success)

    def sorted_by_time(self) -> "LogStore":
        """Rows ordered by timestamp (stable sort)."""
        order = np.argsort(self.times, kind="mergesort")
        return LogStore(
            times=self.times[order],
            latencies_ms=self.latencies_ms[order],
            action_codes=self.action_codes[order],
            user_codes=self.user_codes[order],
            class_codes=self.class_codes[order],
            success=self.success[order],
            tz_offsets=self.tz_offsets[order],
            action_vocab=self.action_vocab,
            user_vocab=self.user_vocab,
            class_vocab=self.class_vocab,
        )

    def concat(self, other: "LogStore") -> "LogStore":
        """Concatenate two stores, re-encoding the other's vocabularies."""
        other_actions = [other.action_vocab[c] for c in other.action_codes]
        other_users = [other.user_vocab[c] for c in other.user_codes]
        other_classes = [other.class_vocab[c] for c in other.class_codes]
        action_vocab = list(self.action_vocab)
        user_vocab = list(self.user_vocab)
        class_vocab = list(self.class_vocab)
        return LogStore(
            times=np.concatenate([self.times, other.times]),
            latencies_ms=np.concatenate([self.latencies_ms, other.latencies_ms]),
            action_codes=np.concatenate(
                [self.action_codes, _encode(other_actions, action_vocab)]
            ),
            user_codes=np.concatenate(
                [self.user_codes, _encode(other_users, user_vocab)]
            ),
            class_codes=np.concatenate(
                [self.class_codes, _encode(other_classes, class_vocab)]
            ),
            success=np.concatenate([self.success, other.success]),
            tz_offsets=np.concatenate([self.tz_offsets, other.tz_offsets]),
            action_vocab=action_vocab,
            user_vocab=user_vocab,
            class_vocab=class_vocab,
        )

    # -- aggregation -------------------------------------------------------

    def per_user_median_latency(self) -> Tuple[np.ndarray, np.ndarray]:
        """(user_codes, median_latency_ms) for every distinct user.

        Vectorized: sorts rows by user code and slices runs.
        """
        if self.is_empty:
            raise EmptyDataError("no rows to compute per-user medians from")
        order = np.argsort(self.user_codes, kind="mergesort")
        codes = self.user_codes[order]
        lats = self.latencies_ms[order]
        distinct, starts = np.unique(codes, return_index=True)
        boundaries = np.append(starts, codes.size)
        medians = np.empty(distinct.size, dtype=float)
        for i in range(distinct.size):
            medians[i] = np.median(lats[boundaries[i]:boundaries[i + 1]])
        return distinct, medians

    def per_user_action_count(self) -> Tuple[np.ndarray, np.ndarray]:
        """(user_codes, action_count) for every distinct user."""
        if self.is_empty:
            raise EmptyDataError("no rows to count per user")
        distinct, counts = np.unique(self.user_codes, return_counts=True)
        return distinct, counts

    # -- record round-trip ---------------------------------------------------

    def iter_records(self) -> Iterator[ActionRecord]:
        """Decode rows back into :class:`ActionRecord` objects (slow path)."""
        for i in range(len(self)):
            yield ActionRecord(
                time=float(self.times[i]),
                action=self.action_vocab[int(self.action_codes[i])],
                latency_ms=float(self.latencies_ms[i]),
                user_id=self.user_vocab[int(self.user_codes[i])],
                user_class=self.class_vocab[int(self.class_codes[i])],
                success=bool(self.success[i]),
                tz_offset_hours=float(self.tz_offsets[i]),
            )

    def to_records(self) -> List[ActionRecord]:
        return list(self.iter_records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "LogStore(empty)"
        lo, hi = self.time_range()
        return (
            f"LogStore(rows={len(self)}, users={self.n_users()}, "
            f"actions={self.action_names()}, span={hi - lo:.0f}s)"
        )


#: Local-hour boundaries for each six-hour period: (start, end), end exclusive.
_PERIOD_HOURS = {
    DayPeriod.MORNING: (8.0, 14.0),
    DayPeriod.AFTERNOON: (14.0, 20.0),
    DayPeriod.NIGHT: (20.0, 2.0),
    DayPeriod.LATE_NIGHT: (2.0, 8.0),
}
