"""Perf-regression suite: stage timings for generator → pipeline → sweep.

This is the measurement half of the performance work: every stage that the
tensor refactor, the slice cache, or the executor subsystem touched is timed
against a faithful copy of the pre-refactor reference implementation (the
per-slot / per-sample Python loops), and the results land in
``BENCH_pipeline.json`` so future PRs inherit a trajectory instead of a
guess.

The legacy copies below are deliberately verbatim ports of the old
``repro.core.alpha`` loops, so every timed pair is also checked for
numerical agreement (``PerfReport.stage('slotted_counts').max_abs_diff``).
Deterministic stages (biased counts, period slots, corrected contraction)
agree bit-for-bit; the Monte Carlo unbiased draw changed its batch schedule
in the single-draw sampler rewrite, so its time fractions agree only up to
sampling noise — the reported ``max_abs_diff`` for those stages is the
statistical equivalence bound, not a bitwise one.

Run from the CLI::

    PYTHONPATH=src python tools/bench_report.py --scale full

or programmatically::

    from repro.analysis.perf import run_perf_suite
    report = run_perf_suite(scale="smoke", seed=0)
    print(report.render())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

import repro.obs as obs
from repro.analysis.base import FULL, Scale
from repro.core.alpha import (
    SlottedCounts,
    alpha_from_counts,
    corrected_histograms_from_counts,
    slot_of_times,
    slotted_counts,
)
from repro.core.pipeline import AutoSens, AutoSensConfig
from repro.core.preference import average_results
from repro.core.result import PreferenceResult
from repro.errors import EmptyDataError
from repro.stats.histogram import Histogram1D, HistogramBins
from repro.stats.rng import SeedLike, spawn_rng
from repro.telemetry import timeutil
from repro.telemetry.log_store import LogStore
from repro.types import ALL_DAY_PERIODS, DayPeriod
from repro.workload.scenarios import owa_scenario

#: Tiny scale for CI smoke runs: a few thousand actions, a couple of
#: seconds end to end. Regression ratios at this scale are noisy but a
#: genuine O(n_slots·N) → O(N) regression still shows up as >2×.
SMOKE = Scale(duration_days=2.0, n_users=80, candidates_per_user_day=40.0)

#: Millions-of-actions scale (~5M candidates, >2M accepted actions): the
#: headroom proof for the single-draw sampler. Run with ``legacy=False``
#: (``bench_report.py --no-legacy``) — the per-slot legacy loops take
#: minutes at this size and prove nothing new.
XL = Scale(duration_days=14.0, n_users=1800, candidates_per_user_day=200.0)

#: Named scales accepted by :func:`run_perf_suite` and the CLI.
PERF_SCALES: Dict[str, Scale] = {"full": FULL, "smoke": SMOKE, "xl": XL}


# --------------------------------------------------------------------------
# Legacy reference implementations (pre-tensor, verbatim ports).
# --------------------------------------------------------------------------


def _legacy_nearest_time_sample(
    sample_times: np.ndarray,
    query_times: np.ndarray,
    rng: SeedLike = None,
    tie_tolerance: float = 0.0,
) -> np.ndarray:
    """The old nearest-sample kernel: two extra per-query searchsorted calls.

    Duplicate-timestamp runs were located by bisecting every query's winning
    time back into the sample array; the shipped version finds the runs with
    one linear pass over the samples instead.
    """
    times = np.asarray(sample_times, dtype=float)
    queries = np.asarray(query_times, dtype=float)
    if times.size == 0:
        raise EmptyDataError("no samples to draw from")

    right = np.searchsorted(times, queries, side="left")
    left = np.clip(right - 1, 0, times.size - 1)
    right = np.clip(right, 0, times.size - 1)
    dist_left = np.abs(queries - times[left])
    dist_right = np.abs(times[right] - queries)
    take_right = dist_right < dist_left
    nearest = np.where(take_right, right, left)

    generator = spawn_rng(rng)

    tied_lr = np.abs(dist_left - dist_right) <= tie_tolerance
    tied_lr &= left != right
    if np.any(tied_lr):
        flips = generator.random(int(tied_lr.sum())) < 0.5
        chosen = np.where(flips, left[tied_lr], right[tied_lr])
        nearest = nearest.copy()
        nearest[tied_lr] = chosen

    winning_times = times[nearest]
    run_start = np.searchsorted(times, winning_times, side="left")
    run_end = np.searchsorted(times, winning_times, side="right")
    run_len = run_end - run_start
    multi = run_len > 1
    if np.any(multi):
        offsets = (generator.random(int(multi.sum())) * run_len[multi]).astype(np.int64)
        nearest = nearest.copy()
        nearest[multi] = run_start[multi] + offsets
    return nearest


def _legacy_draw_unbiased_samples(logs, n_samples=None, rng=None):
    """The old unbiased draw, wired to the old nearest-sample kernel."""
    from repro.core.unbiased import UnbiasedDraw
    from repro.stats.sampling import random_times

    if logs.is_empty:
        raise EmptyDataError("cannot estimate the unbiased distribution from empty logs")
    generator = spawn_rng(rng)
    order = np.argsort(logs.times, kind="mergesort")
    times = logs.times[order]
    latencies = logs.latencies_ms[order]
    lo, hi = float(times[0]), float(times[-1])
    if hi <= lo:
        hi = lo + 1.0
    if n_samples is None:
        n_samples = int(np.ceil(2.0 * times.size))
    queries = random_times(lo, hi, n_samples, rng=generator)
    selected = _legacy_nearest_time_sample(times, queries, rng=generator)
    return UnbiasedDraw(
        query_times=queries,
        selected_indices=selected,
        sample_times=times,
        sample_latencies=latencies,
    )


def _legacy_period_slots(
    times: np.ndarray, tz_offset_hours: Union[np.ndarray, float] = 0.0
) -> np.ndarray:
    """The old ``period`` branch of ``slot_of_times``: a Python loop."""
    hours = timeutil.hour_of_day(times, tz_offset_hours)
    period_index = {p: i for i, p in enumerate(ALL_DAY_PERIODS)}
    out = np.empty(hours.shape, dtype=np.int64)
    flat = out.ravel()
    for i, h in enumerate(hours.ravel()):
        flat[i] = period_index[DayPeriod.of_hour(float(h))]
    return out


def _legacy_slot_time_coverage(
    start: float,
    end: float,
    scheme: str,
    slot_ids: np.ndarray,
    tz_offset_hours: float = 0.0,
    resolution_s: float = 60.0,
) -> np.ndarray:
    """The old per-slot loop over the minute grid."""
    if end <= start:
        return np.zeros(len(slot_ids), dtype=float)
    grid = np.arange(start, end, resolution_s)
    grid_slots = slot_of_times(grid, scheme, tz_offset_hours)
    out = np.zeros(len(slot_ids), dtype=float)
    for i, slot in enumerate(slot_ids):
        out[i] = float((grid_slots == slot).sum()) * resolution_s
    return out


def _legacy_slotted_counts(
    logs: LogStore,
    bins: HistogramBins,
    scheme: str = "hour-of-day",
    n_unbiased_samples: Optional[int] = None,
    rng: SeedLike = None,
    estimator: str = "sampling",
) -> SlottedCounts:
    """The old ``slotted_counts``: one masked pass over the data per slot.

    Deterministic outputs (biased counts, slot ids, slot seconds) are
    bit-identical to the shipped version. The unbiased time fractions are
    not: this reference keeps the old fixed-size 12-batch redraw schedule,
    while the shipped sampler draws one waste-compensated batch, so the two
    consume the RNG differently and agree only statistically.
    """
    if logs.is_empty:
        raise EmptyDataError("cannot slot empty logs")
    generator = spawn_rng(rng)

    action_slots = slot_of_times(logs.times, scheme, logs.tz_offsets)
    slot_ids = np.unique(action_slots)
    n_slots = slot_ids.size

    c = np.zeros((n_slots, bins.count), dtype=float)
    bin_idx = bins.index_of(logs.latencies_ms)
    in_grid = bin_idx >= 0
    for row, slot in enumerate(slot_ids):
        mask = (action_slots == slot) & in_grid
        np.add.at(c[row], bin_idx[mask], 1.0)

    tz = float(np.median(logs.tz_offsets)) if len(logs) else 0.0
    u = np.zeros((n_slots, bins.count), dtype=float)
    if estimator == "voronoi":
        from repro.core.unbiased import voronoi_weights

        order = np.argsort(logs.times, kind="mergesort")
        sorted_times = logs.times[order]
        sorted_latencies = logs.latencies_ms[order]
        sorted_tz = logs.tz_offsets[order]
        weights = voronoi_weights(sorted_times)
        sample_slots = slot_of_times(sorted_times, scheme, sorted_tz)
        v_bin_idx = bins.index_of(sorted_latencies)
        v_in_grid = v_bin_idx >= 0
        for row, slot in enumerate(slot_ids):
            mask = (sample_slots == slot) & v_in_grid
            np.add.at(u[row], v_bin_idx[mask], weights[mask])
    else:
        target = n_unbiased_samples if n_unbiased_samples is not None else 2 * len(logs)
        accepted = 0
        for _ in range(12):
            draw = _legacy_draw_unbiased_samples(logs, n_samples=target, rng=generator)
            query_slots = slot_of_times(draw.query_times, scheme, tz)
            u_bin_idx = bins.index_of(draw.selected_latencies)
            u_in_grid = u_bin_idx >= 0
            for row, slot in enumerate(slot_ids):
                mask = (query_slots == slot) & u_in_grid
                accepted += int(mask.sum())
                np.add.at(u[row], u_bin_idx[mask], 1.0)
            if accepted >= target:
                break
    slot_totals = u.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        f = np.where(slot_totals > 0, u / slot_totals, 0.0)

    t0, t1 = logs.time_range()
    seconds = _legacy_slot_time_coverage(t0, t1, scheme, slot_ids, tz_offset_hours=tz)
    return SlottedCounts(
        scheme=scheme, slot_ids=slot_ids, biased_counts=c, time_fractions=f,
        bins=bins, slot_seconds=seconds,
    )


def _legacy_corrected_histograms(logs, bins, alpha):
    """The old ``corrected_histograms``: rescans every raw action.

    This is what the per-reference loop in ``preference_curve`` used to
    call once *per reference slot* — the rescan the tensor contraction
    removed.
    """
    if logs.is_empty:
        raise EmptyDataError("cannot build corrected histograms from empty logs")
    slot_index = {int(s): i for i, s in enumerate(alpha.slot_ids)}
    action_slots = slot_of_times(logs.times, alpha.scheme, logs.tz_offsets)
    weights = np.empty(len(logs), dtype=float)
    for slot, row in slot_index.items():
        a = alpha.alpha_by_slot[row]
        weights[action_slots == slot] = 1.0 / a if a > 0 else 0.0

    biased = Histogram1D(bins)
    biased.add(logs.latencies_ms, weights=weights)

    unbiased = Histogram1D(bins)
    pooled = alpha.time_fractions.sum(axis=0)
    unbiased.add_counts(pooled * 10_000.0)
    return biased, unbiased


# --------------------------------------------------------------------------
# Report containers.
# --------------------------------------------------------------------------


@dataclass
class StageTiming:
    """One timed stage, optionally against its legacy reference."""

    name: str
    seconds: float
    baseline_seconds: Optional[float] = None
    max_abs_diff: Optional[float] = None
    detail: str = ""

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline_seconds is None or self.seconds <= 0:
            return None
        return self.baseline_seconds / self.seconds

    def to_dict(self) -> Dict:
        return {
            "seconds": round(self.seconds, 6),
            "baseline_seconds": (
                None if self.baseline_seconds is None
                else round(self.baseline_seconds, 6)
            ),
            "speedup": None if self.speedup is None else round(self.speedup, 3),
            "max_abs_diff": (
                None if self.max_abs_diff is None else float(self.max_abs_diff)
            ),
            "detail": self.detail,
        }


@dataclass
class PerfReport:
    """All stage timings for one scale, JSON-serializable."""

    scale_name: str
    seed: int
    n_actions: int
    n_users: int
    duration_days: float
    stages: List[StageTiming] = field(default_factory=list)
    #: Wall-clock per span name from one traced corrected-path run:
    #: ``{span_name: {"count": n, "seconds": total}}``. Complements the
    #: stage table with the tracer's own view of where time went.
    span_timings: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def stage(self, name: str) -> StageTiming:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")

    def span_shares(self) -> Dict[str, float]:
        """Each span's share of the total traced wall time (0..1).

        The "where does the next optimization live" column: the largest
        share is the current bottleneck, readable straight from
        ``BENCH_pipeline.json`` without summing anything by hand.
        """
        total = sum(agg.get("seconds", 0.0) for agg in self.span_timings.values())
        if total <= 0:
            return {name: 0.0 for name in self.span_timings}
        return {
            name: agg.get("seconds", 0.0) / total
            for name, agg in self.span_timings.items()
        }

    def to_dict(self) -> Dict:
        shares = self.span_shares()
        return {
            "scale": self.scale_name,
            "seed": self.seed,
            "n_actions": self.n_actions,
            "n_users": self.n_users,
            "duration_days": self.duration_days,
            "stages": {s.name: s.to_dict() for s in self.stages},
            "span_timings": {
                name: {**agg, "share": round(shares[name], 4)}
                for name, agg in sorted(self.span_timings.items())
            },
        }

    def render(self) -> str:
        lines = [
            f"perf suite [{self.scale_name}] — {self.n_actions} actions, "
            f"{self.n_users} users, {self.duration_days:g} days (seed {self.seed})",
            f"  {'stage':<28} {'new (s)':>10} {'legacy (s)':>11} {'speedup':>8}",
        ]
        for s in self.stages:
            base = f"{s.baseline_seconds:11.3f}" if s.baseline_seconds is not None else " " * 11
            speed = f"{s.speedup:7.1f}x" if s.speedup is not None else " " * 8
            lines.append(f"  {s.name:<28} {s.seconds:10.3f} {base} {speed}")
            if s.detail:
                lines.append(f"    {s.detail}")
        if self.span_timings:
            shares = self.span_shares()
            lines.append(f"  {'span':<28} {'count':>7} {'total (s)':>10} {'share':>7}")
            for name, agg in sorted(self.span_timings.items()):
                lines.append(
                    f"  {name:<28} {int(agg['count']):7d} {agg['seconds']:10.4f} "
                    f"{shares[name]:6.1%}")
        return "\n".join(lines)


def _timed(fn, repeats: int = 1):
    """(best wall seconds, last result) over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _curve_diff(a: PreferenceResult, b: PreferenceResult) -> float:
    mask = np.isfinite(a.nlp) & np.isfinite(b.nlp)
    if not mask.any():
        return 0.0
    return float(np.max(np.abs(a.nlp[mask] - b.nlp[mask])))


def _corrected_path(logs: LogStore, config: AutoSensConfig, legacy: bool) -> PreferenceResult:
    """The full time-corrected multi-reference path, one implementation.

    ``legacy=True`` reproduces the pre-refactor flow: per-slot loops in
    ``slotted_counts``, then one full rescan of the raw actions per
    reference slot. ``legacy=False`` is the shipped tensor flow.
    """
    bins = config.bins()
    computer = config.computer()
    n_unbiased = int(np.ceil(config.unbiased_oversample * len(logs)))
    build = _legacy_slotted_counts if legacy else slotted_counts
    counts = build(
        logs, bins, scheme=config.slot_scheme,
        n_unbiased_samples=n_unbiased, rng=config.seed,
        estimator=config.unbiased_estimator,
    )
    references = counts.busiest_slots(config.n_reference_slots)
    per_reference = []
    for reference in references:
        alpha = alpha_from_counts(
            counts,
            reference_slot=reference,
            bin_average=config.alpha_bin_average,
            min_bin_count=config.alpha_min_bin_count,
        )
        if legacy:
            biased, unbiased = _legacy_corrected_histograms(logs, bins, alpha)
        else:
            biased, unbiased = corrected_histograms_from_counts(counts, alpha)
        per_reference.append(
            computer.compute(
                biased, unbiased,
                slice_description="perf", n_actions=len(logs),
            )
        )
    return average_results(per_reference, slice_description="perf")


def run_perf_suite(
    scale: Union[str, Scale] = "full",
    seed: int = 0,
    repeats: int = 2,
    legacy: bool = True,
) -> PerfReport:
    """Time every refactored stage at the given scale.

    Stages (new vs legacy where a legacy reference exists):

    - ``generate``: workload synthesis (chunked; serial executor).
    - ``period_slots``: the hour→period lookup vs the old Python loop.
    - ``slotted_counts``: the single-draw sampler + count tensor vs the
      old per-slot masks and 12-batch redraw loop.
    - ``slotted_counts_sharded``: the same draw split over 4 serial time
      shards — documents the stratification overhead and the
      sharded-vs-unsharded equivalence bound (no legacy baseline).
    - ``corrected_multi_reference``: the full time-corrected
      multi-reference path — the acceptance-criterion stage.
    - ``preference_curve``: one cold engine call (absolute time only).
    - ``sweep_by_action``: ``curves_by_action`` cold, then re-swept with a
      warm slice cache as the baselineless "cached" variant.

    ``legacy=False`` skips every legacy reference run (their baselines and
    diffs are reported as null) — the only practical way to run the ``xl``
    scale, where the per-slot Python loops take minutes.
    """
    if isinstance(scale, str):
        try:
            scale = PERF_SCALES[scale]
            scale_name = [k for k, v in PERF_SCALES.items() if v is scale][0]
        except KeyError:
            raise ValueError(
                f"unknown perf scale {scale!r}; pick one of {sorted(PERF_SCALES)}"
            ) from None
    else:
        scale_name = "custom"
    for name, known in PERF_SCALES.items():
        if known == scale:
            scale_name = name

    scenario = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    )
    gen_seconds, result = _timed(lambda: scenario.generate())
    logs = result.logs

    report = PerfReport(
        scale_name=scale_name,
        seed=seed,
        n_actions=len(logs),
        n_users=scale.n_users,
        duration_days=scale.duration_days,
    )
    report.stages.append(StageTiming(
        name="generate", seconds=gen_seconds,
        detail=f"{result.n_accepted} accepted of {result.n_candidates} candidates",
    ))

    config = AutoSensConfig(seed=seed)
    bins = config.bins()
    sliced = logs.successful()

    # Stage: period slot lookup (satellite vectorization).
    new_s, new_slots = _timed(lambda: slot_of_times(sliced.times, "period", sliced.tz_offsets), repeats)
    if legacy:
        old_s, old_slots = _timed(lambda: _legacy_period_slots(sliced.times, sliced.tz_offsets), repeats)
        slots_diff = float(np.max(np.abs(new_slots - old_slots))) if len(sliced) else 0.0
    else:
        old_s, slots_diff = None, None
    report.stages.append(StageTiming(
        name="period_slots", seconds=new_s, baseline_seconds=old_s,
        max_abs_diff=slots_diff,
    ))

    # Stage: the count tensor + single-draw sampler. The deterministic half
    # (biased counts) stays bit-identical to the legacy loops; the Monte
    # Carlo half (time fractions) uses a different draw schedule, so its
    # diff is sampling noise — max_abs_diff reports that statistical bound,
    # and the detail line records the (always 0) biased diff separately.
    n_unbiased = int(np.ceil(config.unbiased_oversample * len(sliced)))
    new_s, new_counts = _timed(lambda: slotted_counts(
        sliced, bins, n_unbiased_samples=n_unbiased, rng=seed), repeats)
    if legacy:
        old_s, old_counts = _timed(lambda: _legacy_slotted_counts(
            sliced, bins, n_unbiased_samples=n_unbiased, rng=seed), repeats)
        biased_diff = float(np.max(np.abs(new_counts.biased_counts - old_counts.biased_counts)))
        fraction_diff = float(np.max(np.abs(new_counts.time_fractions - old_counts.time_fractions)))
        counts_detail = (
            f"{new_counts.slot_ids.size} slots x {bins.count} bins; "
            f"biased_diff={biased_diff:g} (bitwise), fraction diff is MC noise"
        )
    else:
        old_s, fraction_diff = None, None
        counts_detail = f"{new_counts.slot_ids.size} slots x {bins.count} bins"
    report.stages.append(StageTiming(
        name="slotted_counts", seconds=new_s, baseline_seconds=old_s,
        max_abs_diff=fraction_diff,
        detail=counts_detail,
    ))

    # Stage: the same draw stratified over 4 serial time shards. No legacy
    # baseline — this documents the sharding overhead (expected ~1x on one
    # core) and the sharded-vs-unsharded equivalence bound in one place.
    shard_s, shard_counts = _timed(lambda: slotted_counts(
        sliced, bins, n_unbiased_samples=n_unbiased, rng=seed, n_shards=4), repeats)
    report.stages.append(StageTiming(
        name="slotted_counts_sharded", seconds=shard_s,
        max_abs_diff=float(np.max(np.abs(
            shard_counts.time_fractions - new_counts.time_fractions))),
        detail="4 serial time shards vs unsharded; diff is stratified-MC noise",
    ))

    # Stage: the acceptance criterion — the end-to-end time-corrected
    # multi-reference path (counts + one correction per reference slot).
    new_s, new_curve = _timed(lambda: _corrected_path(sliced, config, legacy=False), repeats)
    if legacy:
        old_s, old_curve = _timed(lambda: _corrected_path(sliced, config, legacy=True), repeats)
        curve_diff = _curve_diff(new_curve, old_curve)
    else:
        old_s, curve_diff = None, None
    report.stages.append(StageTiming(
        name="corrected_multi_reference", seconds=new_s, baseline_seconds=old_s,
        max_abs_diff=curve_diff,
        detail=f"{config.n_reference_slots} reference slots",
    ))

    # Stage: one cold preference_curve through the engine (absolute time).
    engine = AutoSens(config)
    action = logs.action_names()[0]
    curve_s, _ = _timed(lambda: AutoSens(config).preference_curve(logs, action=action))
    report.stages.append(StageTiming(name="preference_curve", seconds=curve_s,
                                     detail=f"action={action}"))

    # Stage: the by-action sweep, cold vs warm slice cache.
    cold_s, _ = _timed(lambda: engine.curves_by_action(logs))
    warm_s, _ = _timed(lambda: engine.curves_by_action(logs))
    report.stages.append(StageTiming(
        name="sweep_by_action", seconds=warm_s, baseline_seconds=cold_s,
        detail=f"{len(logs.action_names())} actions; warm cache vs cold "
               f"({engine.cache.hits} hits / {engine.cache.misses} misses)",
    ))

    # Stage: observability overhead. The corrected path again, traced vs
    # untraced — "baseline" is the untraced run, so a healthy build shows a
    # speedup near 1.0 and a tracing regression drags it toward 0. The
    # traced run also feeds ``span_timings``: the tracer's own account of
    # where the wall time went, aggregated per span name.
    off_s, _ = _timed(lambda: _corrected_path(sliced, config, legacy=False), repeats)
    with obs.session(enabled=True, level="error"):
        on_s, _ = _timed(lambda: _corrected_path(sliced, config, legacy=False), repeats)
        report.span_timings = obs.aggregate_span_timings(obs.trace_records())
    report.stages.append(StageTiming(
        name="obs_overhead", seconds=on_s, baseline_seconds=off_s,
        detail="corrected path traced vs untraced; ratio ~1.0 means "
               "tracing is near-free",
    ))
    return report
