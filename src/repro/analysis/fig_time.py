"""Drivers for Figures 7 (time of day), 8 (α profile) and 9 (months)."""

from __future__ import annotations

import numpy as np

from repro.analysis.base import FULL, ExperimentOutcome, Scale, nlp_rows
from repro.core import AutoSens, AutoSensConfig
from repro.types import ALL_DAY_PERIODS, ActionType, DayPeriod, UserClass
from repro.viz.ascii_plot import line_plot
from repro.workload import timeofday_scenario, two_month_scenario
from repro.workload.preference import PERIOD_EXPONENTS, paper_curve

PROBE_LATENCIES = (500.0, 1000.0, 1500.0)


def run_fig7(seed: int = 41, scale: Scale = FULL, executor=None) -> ExperimentOutcome:
    """Figure 7: SelectMail NLP for business users across 6-hour periods.

    Paper expectation: preference decreases with latency in every period,
    with a sharper drop during daytime periods than nighttime ones.
    """
    scenario = timeofday_scenario(
        seed=seed,
        duration_days=max(scale.duration_days, 14.0),
        n_users=max(scale.n_users, 600),
        candidates_per_user_day=scale.candidates_per_user_day,
    )
    result = scenario.generate()
    engine = AutoSens(AutoSensConfig(seed=seed), executor=executor)
    curves = engine.curves_by_period(
        result.logs, action=ActionType.SELECT_MAIL, user_class=UserClass.BUSINESS
    )
    pooled = engine.preference_curve(
        result.logs, action=ActionType.SELECT_MAIL, user_class=UserClass.BUSINESS
    )
    curves_with_pooled = dict(curves)
    curves_with_pooled["pooled (all hours)"] = pooled

    outcome = ExperimentOutcome(
        experiment_id="fig7",
        title="Latency sensitivity across times of day (SelectMail, business)",
        description="Paper Fig. 7: four 6-hour local-time periods.",
    )
    outcome.add_table(
        "NLP at probe latencies",
        ["period"] + [f"{int(latency)} ms" for latency in PROBE_LATENCIES],
        nlp_rows(curves_with_pooled, PROBE_LATENCIES),
    )
    truth = paper_curve(ActionType.SELECT_MAIL, UserClass.BUSINESS)
    expected_rows = []
    for period in ALL_DAY_PERIODS:
        exponent = PERIOD_EXPONENTS[period]
        expected_rows.append(
            [period.value]
            + [float(truth.normalized(np.asarray([latency]), exponent=exponent)[0])
               for latency in PROBE_LATENCIES]
        )
    outcome.add_table(
        "Ground-truth per-period curves",
        ["period"] + [f"{int(latency)} ms" for latency in PROBE_LATENCIES],
        expected_rows,
    )
    series = {}
    for label, curve in curves_with_pooled.items():
        mask = curve.valid & (curve.latencies <= 2000.0)
        series[label] = (curve.latencies[mask], curve.nlp[mask])
        outcome.series[f"fig7_{label}"] = curve.series()
    outcome.plots.append(line_plot(series, title="NLP by time of day",
                                   x_label="latency ms"))

    # Night periods are fast, so their curves can run out of support above
    # ~1 s; probe at 800 ms (well populated in every period) and clamp any
    # probe to the curve's valid range.
    def at_or_edge(curve, latency):
        lo, hi = curve.valid_range()
        return float(curve.at(min(max(latency, lo), hi)))

    probe = 800.0
    day = [at_or_edge(curves[p.value], probe)
           for p in (DayPeriod.MORNING, DayPeriod.AFTERNOON)]
    night = [at_or_edge(curves[p.value], probe)
             for p in (DayPeriod.NIGHT, DayPeriod.LATE_NIGHT)]
    outcome.add_check(
        "daytime periods more sensitive than nighttime at 800 ms",
        float(np.mean(day)) < float(np.mean(night)) - 0.02
        and min(day) < min(night),
        f"day NLP={['%.3f' % v for v in day]}, night NLP={['%.3f' % v for v in night]}",
    )
    for label, curve in curves.items():
        low, high = at_or_edge(curve, 400.0), at_or_edge(curve, 1000.0)
        outcome.add_check(
            f"{label}: preference declines with latency",
            high < low,
            f"NLP(400)={low:.3f} > NLP(~1000)={high:.3f}",
        )
    pooled_at = at_or_edge(pooled, probe)
    lo = min(day + night)
    hi = max(day + night)
    outcome.add_check(
        "pooled curve lies within the per-period range at 800 ms",
        lo - 0.03 <= pooled_at <= hi + 0.03,
        f"pooled={pooled_at:.3f}, range=[{lo:.3f}, {hi:.3f}]",
    )
    return outcome


def run_fig8(seed: int = 41, scale: Scale = FULL) -> ExperimentOutcome:
    """Figure 8: the time-based activity factor α across periods and latency.

    Paper expectation: α is lower at night (8am-2pm as reference) and
    roughly flat across the latency range, supporting the bin-averaging in
    Section 2.4.1.
    """
    scenario = timeofday_scenario(
        seed=seed,
        duration_days=max(scale.duration_days, 14.0),
        n_users=max(scale.n_users, 600),
        candidates_per_user_day=scale.candidates_per_user_day,
    )
    result = scenario.generate()
    engine = AutoSens(AutoSensConfig(seed=seed))
    alpha = engine.alpha_profile(
        result.logs, scheme="period",
        action=ActionType.SELECT_MAIL, user_class=UserClass.BUSINESS,
    )

    outcome = ExperimentOutcome(
        experiment_id="fig8",
        title="Time-based activity factor across times of day",
        description=(
            "α per 6-hour period with 8am-2pm as the reference, and its "
            "variation across latency bins (paper Fig. 8)."
        ),
    )
    labels = alpha.labels()
    outcome.add_table(
        "Overall α per period",
        ["period", "alpha"],
        [[label, float(a)] for label, a in zip(labels, alpha.alpha_by_slot)],
    )
    # α vs latency, coarsened into 100 ms bands for display.
    centers = alpha.bins.centers
    series = {}
    band_edges = np.arange(0.0, 1600.0, 100.0)
    for row, label in enumerate(labels):
        xs, ys = [], []
        for lo, hi in zip(band_edges[:-1], band_edges[1:]):
            sel = (centers >= lo) & (centers < hi)
            vals = alpha.alpha_matrix[row, sel]
            vals = vals[~np.isnan(vals)]
            if vals.size:
                xs.append((lo + hi) / 2.0)
                ys.append(float(vals.mean()))
        series[label] = (np.array(xs), np.array(ys))
        outcome.series[f"fig8_{label}"] = {
            "latency_ms": np.array(xs), "alpha": np.array(ys)
        }
    outcome.plots.append(line_plot(series, title="alpha vs latency by period",
                                   x_label="latency ms", y_label="alpha"))

    by_label = dict(zip(labels, alpha.alpha_by_slot))
    outcome.add_check(
        "alpha lower at night than in the reference (8am-2pm) period",
        by_label[DayPeriod.NIGHT.value] < 0.7
        and by_label[DayPeriod.LATE_NIGHT.value] < 0.7,
        f"night={by_label[DayPeriod.NIGHT.value]:.3f}, "
        f"late-night={by_label[DayPeriod.LATE_NIGHT.value]:.3f}",
    )
    flatness = alpha.flatness()
    outcome.add_check(
        "alpha approximately flat across latency bins (CV < 0.5)",
        flatness < 0.5,
        f"mean coefficient of variation across bins: {flatness:.3f}",
    )
    return outcome


def run_fig9(seed: int = 21, scale: Scale = FULL, executor=None) -> ExperimentOutcome:
    """Figure 9: NLP stability across two consecutive months.

    Paper expectation: SelectMail and SwitchFolder curves nearly coincide
    for January and February.
    """
    scenario = two_month_scenario(
        seed=seed,
        n_users=max(200, scale.n_users // 2),
        candidates_per_user_day=scale.candidates_per_user_day / 2.0,
    )
    result = scenario.generate()
    engine = AutoSens(AutoSensConfig(seed=seed), executor=executor)

    outcome = ExperimentOutcome(
        experiment_id="fig9",
        title="Stability of latency preference across months",
        description="Paper Fig. 9: month 0 ('January') vs month 1 ('February').",
    )
    curves = {}
    for action in (ActionType.SELECT_MAIL, ActionType.SWITCH_FOLDER):
        by_month = engine.curves_by_month(result.logs, action=action)
        for month, curve in by_month.items():
            curves[f"{action.value}/m{month}"] = curve
    outcome.add_table(
        "NLP at probe latencies",
        ["series"] + [f"{int(latency)} ms" for latency in PROBE_LATENCIES],
        nlp_rows(curves, PROBE_LATENCIES),
    )
    series = {}
    for label, curve in curves.items():
        mask = curve.valid & (curve.latencies <= 2000.0)
        series[label] = (curve.latencies[mask], curve.nlp[mask])
        outcome.series[f"fig9_{label}"] = curve.series()
    outcome.plots.append(line_plot(series, title="NLP by month",
                                   x_label="latency ms"))

    for action in (ActionType.SELECT_MAIL, ActionType.SWITCH_FOLDER):
        a = float(curves[f"{action.value}/m0"].at(1000.0))
        b = float(curves[f"{action.value}/m1"].at(1000.0))
        outcome.add_check(
            f"{action.value}: months agree within 0.08 at 1000 ms",
            abs(a - b) <= 0.08,
            f"month0={a:.3f}, month1={b:.3f}",
        )

    # Whole-curve stability, not just one probe point.
    from repro.core.compare import stability_report

    for action in (ActionType.SELECT_MAIL, ActionType.SWITCH_FOLDER):
        pair = {label: curve for label, curve in curves.items()
                if label.startswith(action.value)}
        report = stability_report(pair)
        outcome.add_table(
            f"Whole-curve month-to-month gap ({action.value})",
            ["pair", "mean |gap|", "max |gap|", "worst at (ms)"],
            report.rows(),
        )
        outcome.add_check(
            f"{action.value}: mean whole-curve gap below 0.06",
            report.mean_abs_gap < 0.06,
            f"mean |gap| = {report.mean_abs_gap:.3f}",
        )
    return outcome
