"""Drivers for Figures 4 (action types), 5 (user classes), 6 (quartiles)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.base import FULL, ExperimentOutcome, Scale, nlp_rows
from repro.core import AutoSens, AutoSensConfig, compare_to_truth, monotone_ordering
from repro.core.quartiles import QUARTILE_NAMES, assign_quartiles
from repro.types import ALL_ACTION_TYPES, ActionType, UserClass
from repro.viz.ascii_plot import line_plot
from repro.workload import conditioning_scenario, owa_scenario
from repro.workload.preference import paper_curve

PROBE_LATENCIES = (500.0, 1000.0, 1500.0, 2000.0)


def _curve_plot(curves: Dict[str, "PreferenceResult"], title: str) -> str:
    series = {}
    for label, curve in curves.items():
        mask = curve.valid & (curve.latencies <= 2000.0)
        series[label] = (curve.latencies[mask], curve.nlp[mask])
    return line_plot(series, title=title, x_label="latency ms",
                     y_label="normalized latency preference")


def run_fig4(seed: int = 11, scale: Scale = FULL, executor=None) -> ExperimentOutcome:
    """Figure 4: NLP per action type, business users, reference 300 ms.

    Paper expectation: SelectMail drops most sharply, then SwitchFolder;
    Search is flatter (users tolerate slow search); ComposeSend is nearly
    flat (asynchronous send). SelectMail anchors: 0.88/0.68/0.61 at
    500/1000/1500 ms.
    """
    result = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    engine = AutoSens(AutoSensConfig(seed=seed), executor=executor)
    curves = engine.curves_by_action(
        result.logs,
        actions=list(ALL_ACTION_TYPES),
        user_class=UserClass.BUSINESS,
    )

    outcome = ExperimentOutcome(
        experiment_id="fig4",
        title="Normalized latency preference across action types",
        description="Business users, reference latency 300 ms (paper Fig. 4).",
    )
    outcome.add_table(
        "NLP at probe latencies",
        ["action"] + [f"{int(latency)} ms" for latency in PROBE_LATENCIES],
        nlp_rows(curves, PROBE_LATENCIES),
    )
    expected_rows = []
    for action in ALL_ACTION_TYPES:
        truth = paper_curve(action, UserClass.BUSINESS)
        expected_rows.append(
            [action.value]
            + [float(truth.normalized(np.asarray([latency]))[0])
               for latency in PROBE_LATENCIES]
        )
    outcome.add_table(
        "Ground truth (paper-derived anchors)",
        ["action"] + [f"{int(latency)} ms" for latency in PROBE_LATENCIES],
        expected_rows,
    )
    outcome.plots.append(_curve_plot(curves, "NLP by action type"))
    for label, curve in curves.items():
        outcome.series[f"fig4_{label}"] = curve.series()

    # Qualitative ordering at 1000 ms: SelectMail < SwitchFolder < Search < ComposeSend.
    ordering = monotone_ordering(curves, at_latency=1000.0)
    expected_order = [a.value for a in ALL_ACTION_TYPES]
    outcome.add_check(
        "sensitivity ordering at 1000 ms (SelectMail steepest ... ComposeSend flat)",
        ordering == expected_order,
        f"measured order: {ordering}",
    )
    report = compare_to_truth(
        curves[ActionType.SELECT_MAIL.value],
        lambda latencies: paper_curve(ActionType.SELECT_MAIL, UserClass.BUSINESS).normalized(latencies),
        anchor_latencies=(500.0, 1000.0),
    )
    outcome.add_check(
        "SelectMail anchors within 0.08 of paper values (500/1000 ms)",
        report.passes(0.08),
        "; ".join(
            f"{a.latency_ms:.0f}ms: measured {a.measured:.3f} vs paper {a.expected:.3f}"
            for a in report.anchors
        ),
    )
    compose = curves[ActionType.COMPOSE_SEND.value]
    outcome.add_check(
        "ComposeSend nearly flat at 1000 ms",
        float(compose.at(1000.0)) > 0.9,
        f"ComposeSend NLP(1000)={float(compose.at(1000.0)):.3f}",
    )
    return outcome


def run_fig5(seed: int = 11, scale: Scale = FULL, executor=None) -> ExperimentOutcome:
    """Figure 5: SelectMail NLP for business vs consumer users.

    Paper expectation: the drop-off is sharper for (paying) business users.
    """
    result = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    engine = AutoSens(AutoSensConfig(seed=seed), executor=executor)
    curves = engine.curves_by_user_class(result.logs, action=ActionType.SELECT_MAIL)

    outcome = ExperimentOutcome(
        experiment_id="fig5",
        title="Business vs consumer latency sensitivity (SelectMail)",
        description="Paper Fig. 5: paying users are less latency-tolerant.",
    )
    outcome.add_table(
        "NLP at probe latencies",
        ["class"] + [f"{int(latency)} ms" for latency in PROBE_LATENCIES],
        nlp_rows(curves, PROBE_LATENCIES),
    )
    outcome.plots.append(_curve_plot(curves, "SelectMail NLP by user class"))
    for label, curve in curves.items():
        outcome.series[f"fig5_{label}"] = curve.series()

    business = float(curves[UserClass.BUSINESS.value].at(1000.0))
    consumer = float(curves[UserClass.CONSUMER.value].at(1000.0))
    outcome.add_check(
        "business users more sensitive than consumers at 1000 ms",
        business < consumer,
        f"business NLP={business:.3f} < consumer NLP={consumer:.3f}",
    )
    for name, user_class in (("business", UserClass.BUSINESS),
                             ("consumer", UserClass.CONSUMER)):
        report = compare_to_truth(
            curves[user_class.value],
            lambda latencies, uc=user_class: paper_curve(
                ActionType.SELECT_MAIL, uc).normalized(latencies),
            anchor_latencies=(500.0, 1000.0),
        )
        outcome.add_check(
            f"{name} anchors within 0.08 (500/1000 ms)",
            report.passes(0.08),
            "; ".join(
                f"{a.latency_ms:.0f}ms: {a.measured:.3f} vs {a.expected:.3f}"
                for a in report.anchors
            ),
        )
    return outcome


def run_fig6(seed: int = 31, scale: Scale = FULL, executor=None) -> ExperimentOutcome:
    """Figure 6: NLP by per-user median-latency quartile.

    Paper expectation: sensitivity decreases monotonically from Q1
    (fastest users) to Q4 (slowest) — conditioning to speed.
    """
    scenario = conditioning_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=max(scale.n_users, 400),
        candidates_per_user_day=scale.candidates_per_user_day,
    )
    result = scenario.generate()
    engine = AutoSens(AutoSensConfig(seed=seed), executor=executor)
    curves = engine.curves_by_quartile(result.logs, action=ActionType.SELECT_MAIL)

    outcome = ExperimentOutcome(
        experiment_id="fig6",
        title="Conditioning to speed: NLP by median-latency quartile",
        description=(
            "Users grouped into quartiles of per-user median latency "
            "(Q1 fastest); paper Fig. 6."
        ),
    )
    outcome.add_table(
        "NLP at probe latencies",
        ["quartile"] + [f"{int(latency)} ms" for latency in PROBE_LATENCIES],
        nlp_rows(curves, PROBE_LATENCIES),
    )
    assignment = assign_quartiles(
        result.logs.where(action=ActionType.SELECT_MAIL), min_actions_per_user=5
    )
    outcome.add_table(
        "Quartile cut points (median latency)",
        ["cut", "ms"],
        [["Q1|Q2", assignment.cuts_ms[0]],
         ["Q2|Q3", assignment.cuts_ms[1]],
         ["Q3|Q4", assignment.cuts_ms[2]]],
    )
    outcome.plots.append(_curve_plot(curves, "SelectMail NLP by latency quartile"))
    for label, curve in curves.items():
        outcome.series[f"fig6_{label}"] = curve.series()

    values = [float(curves[q].at(1000.0)) for q in QUARTILE_NAMES]
    outcome.add_check(
        "sensitivity decreases monotonically Q1 -> Q4 at 1000 ms",
        all(a < b for a, b in zip(values, values[1:])),
        "NLP(1000) = " + ", ".join(
            f"{q}:{v:.3f}" for q, v in zip(QUARTILE_NAMES, values)
        ),
    )
    outcome.add_check(
        "Q1 clearly more sensitive than Q4",
        values[0] < values[3] - 0.05,
        f"Q1={values[0]:.3f} vs Q4={values[3]:.3f}",
    )
    return outcome
