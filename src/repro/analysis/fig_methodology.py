"""Drivers for Figure 3 (methodology overview) and Table 1 (α example)."""

from __future__ import annotations

import numpy as np

from repro.analysis.base import FULL, ExperimentOutcome, Scale
from repro.core import AutoSens, AutoSensConfig, draw_unbiased_samples, worked_example
from repro.core.biased import biased_histogram
from repro.core.preference import PreferenceComputer
from repro.core.unbiased import unbiased_histogram
from repro.stats.histogram import latency_bins
from repro.viz.ascii_plot import line_plot
from repro.workload import owa_scenario


def run_fig3(seed: int = 11, scale: Scale = FULL) -> ExperimentOutcome:
    """Figure 3: (a) the unbiased draw, (b) B and U PDFs, (c) raw+smoothed B/U."""
    result = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    # Restrict the illustration to business hours (10:00-16:00 local): the
    # activity factor is nearly constant there, so the raw B-vs-U contrast
    # shows the preference effect rather than the time confounder (which
    # the full pipeline removes via alpha; see fig4+).
    all_logs = result.logs.where(action="SelectMail")
    hours = (all_logs.times % 86400.0) / 3600.0
    logs = all_logs.filter((hours >= 10.0) & (hours < 16.0))
    bins = latency_bins(3000.0, 10.0)

    outcome = ExperimentOutcome(
        experiment_id="fig3",
        title="AutoSens methodology overview",
        description=(
            "(a) random times select nearest latency samples; (b) the "
            "resulting biased (B) and unbiased (U) PDFs; (c) the latency "
            "preference B/U, raw and Savitzky-Golay smoothed (paper Fig. 3). "
            "Data restricted to 10:00-16:00 so the raw illustration is free "
            "of the time confounder."
        ),
    )

    # (a) a 30-minute zoom of the sampling procedure, anchored at the
    # median action time (guaranteed to land inside the analyzed hours).
    draw = draw_unbiased_samples(logs, n_samples=3 * len(logs), rng=seed)
    t0 = float(np.median(logs.times))
    t1 = t0 + 1800.0
    in_zoom = (draw.sample_times >= t0) & (draw.sample_times < t1)
    sel_times = draw.sample_times[draw.selected_indices]
    sel_lat = draw.selected_latencies
    sel_zoom = (sel_times >= t0) & (sel_times < t1)
    outcome.plots.append(line_plot(
        {"samples": ((draw.sample_times[in_zoom] - t0) / 60.0,
                     draw.sample_latencies[in_zoom]),
         "selected": ((sel_times[sel_zoom] - t0) / 60.0, sel_lat[sel_zoom])},
        title="(a) latency samples (o) and unbiased selections (x), 30 min",
        x_label="minutes",
        y_label="latency ms",
    ))
    outcome.series["fig3a"] = {
        "sample_time_s": draw.sample_times[in_zoom],
        "sample_latency_ms": draw.sample_latencies[in_zoom],
    }

    # (b) B and U PDFs.
    biased = biased_histogram(logs, bins)
    unbiased = unbiased_histogram(logs, bins, n_samples=3 * len(logs), rng=seed + 1)
    b_pdf = biased.pdf()
    u_pdf = unbiased.pdf()
    centers = bins.centers
    show = centers <= 1500.0
    outcome.plots.append(line_plot(
        {"B (biased)": (centers[show], b_pdf[show]),
         "U (unbiased)": (centers[show], u_pdf[show])},
        title="(b) biased vs unbiased latency PDFs",
        x_label="latency ms",
        y_label="density",
    ))
    outcome.series["fig3b"] = {
        "latency_ms": centers,
        "biased_pdf": b_pdf,
        "unbiased_pdf": u_pdf,
    }

    # (c) raw and smoothed preference.
    computer = PreferenceComputer()
    pref = computer.compute(biased, unbiased, slice_description="SelectMail")
    outcome.plots.append(line_plot(
        {"raw": (centers[show], pref.raw_ratio[show]),
         "smoothed": (centers[show], pref.smoothed_ratio[show])},
        title="(c) latency preference B/U, raw and smoothed",
        x_label="latency ms",
        y_label="B/U",
    ))
    outcome.series["fig3c"] = pref.series()

    # Sanity checks on the methodology pieces.
    median_b = biased.quantile(0.5)
    median_u = unbiased.quantile(0.5)
    outcome.add_table(
        "Distribution summaries",
        ["distribution", "median ms", "mean ms"],
        [["B (biased)", median_b, biased.mean()],
         ["U (unbiased)", median_u, unbiased.mean()]],
    )
    outcome.add_check(
        "biased distribution shifted toward lower latency than unbiased",
        median_b < median_u,
        f"median B={median_b:.0f} ms vs U={median_u:.0f} ms",
    )
    raw_valid = ~np.isnan(pref.raw_ratio)
    smooth_valid = ~np.isnan(pref.smoothed_ratio)
    raw_var = float(np.nanstd(np.diff(pref.raw_ratio[raw_valid])))
    smooth_var = float(np.nanstd(np.diff(pref.smoothed_ratio[smooth_valid])))
    outcome.add_check(
        "smoothing reduces bin-to-bin noise",
        smooth_var < raw_var,
        f"raw step sd={raw_var:.3f}, smoothed={smooth_var:.3f}",
    )
    return outcome


def run_table1() -> ExperimentOutcome:
    """Table 1: the paper's worked day/night normalization example.

    This driver is fully deterministic — it reruns the arithmetic of the
    paper's example and compares every intermediate value.
    """
    example = worked_example()
    outcome = ExperimentOutcome(
        experiment_id="table1",
        title="Time-confounder normalization worked example",
        description=(
            "Two time slots (day = reference, night) and two latency bins "
            "(low, high); reproduces every number in the paper's Table 1."
        ),
    )
    paper = {
        "alpha_low": 0.108,
        "alpha_high": 0.100,
        "alpha": 0.104,
        "normalized_low": 250.0,
        "normalized_high": 38.0,
        "corrected_low": 3.09,
        "corrected_high": 1.97,
        "naive_low": 1.05,   # the paper prints 1.04 via a typo: (90+24) for (90+26)
        "naive_high": 1.60,
    }
    measured = {
        "alpha_low": example.alpha_per_bin["low"],
        "alpha_high": example.alpha_per_bin["high"],
        "alpha": example.alpha,
        "normalized_low": example.normalized_counts["low"],
        "normalized_high": example.normalized_counts["high"],
        "corrected_low": example.corrected_rates["low"],
        "corrected_high": example.corrected_rates["high"],
        "naive_low": example.naive_rates["low"],
        "naive_high": example.naive_rates["high"],
    }
    rows = [
        [key, paper[key], measured[key], measured[key] - paper[key]]
        for key in paper
    ]
    outcome.add_table(
        "Paper vs computed",
        ["quantity", "paper", "computed", "difference"],
        rows,
    )
    tolerances = {
        "alpha_low": 0.001, "alpha_high": 0.001, "alpha": 0.001,
        "normalized_low": 1.0, "normalized_high": 1.0,
        "corrected_low": 0.01, "corrected_high": 0.02,
        "naive_low": 0.02, "naive_high": 0.01,
    }
    for key, tolerance in tolerances.items():
        outcome.add_check(
            f"{key} within {tolerance}",
            abs(measured[key] - paper[key]) <= tolerance,
            f"paper={paper[key]}, computed={measured[key]:.4f}",
        )
    outcome.notes.append(
        "The paper's naive low-latency rate (1.04) uses 24 where the table "
        "says 26 — with 26 the value is 1.05, which we treat as correct."
    )
    return outcome
