"""Run summaries: one table over many experiment outcomes."""

from __future__ import annotations

from typing import List

from repro.analysis.base import ExperimentOutcome
from repro.viz.table import format_table


def summarize(outcomes: List[ExperimentOutcome]) -> str:
    """Render a one-line-per-experiment overview table."""
    rows = []
    for outcome in outcomes:
        n_checks = len(outcome.checks)
        n_passed = sum(1 for check in outcome.checks if check.passed)
        rows.append([
            outcome.experiment_id,
            outcome.title[:52],
            f"{n_passed}/{n_checks}",
            "PASS" if outcome.passed else "FAIL",
        ])
    table = format_table(["experiment", "title", "checks", "status"], rows)
    total = len(outcomes)
    passed = sum(1 for outcome in outcomes if outcome.passed)
    return f"{table}\n{passed}/{total} experiments fully passing"


def failing_checks(outcomes: List[ExperimentOutcome]) -> List[str]:
    """Flat list of 'experiment: check — detail' lines for failures."""
    lines = []
    for outcome in outcomes:
        for check in outcome.checks:
            if not check.passed:
                detail = f" — {check.detail}" if check.detail else ""
                lines.append(f"{outcome.experiment_id}: {check.name}{detail}")
    return lines
