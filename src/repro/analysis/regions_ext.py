"""Extension analysis: per-region slices of a multi-timezone population.

The paper analyzes U.S. users only (Section 3.2); this experiment shows
why that segregation matters and what changes across regions. Each region
is analyzed in its own local time; regions whose working day coincides
with the service's quiet (fast) window have less latency dynamic range to
learn from, so their curves are flatter and noisier even under identical
ground-truth preferences.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.base import FULL, ExperimentOutcome, Scale, nlp_rows
from repro.core import AutoSens, AutoSensConfig
from repro.errors import InsufficientDataError
from repro.workload import global_scenario
from repro.workload.preference import paper_curve

PROBES = (500.0, 1000.0)


def run_regions(seed: int = 77, scale: Scale = FULL) -> ExperimentOutcome:
    """Per-region NLP curves for a three-timezone population (extension)."""
    result = global_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=max(scale.n_users, 600),
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    logs = result.logs
    engine = AutoSens(AutoSensConfig(seed=seed))

    curves = {}
    ranges = {}
    for tz in logs.tz_offsets_present():
        label = f"UTC{tz:+.0f}"
        try:
            curve = engine.preference_curve(
                logs.where(tz_offset=tz), action="SelectMail",
                user_class="business",
            )
        except InsufficientDataError:
            continue
        curves[label] = curve
        region = logs.where(tz_offset=tz, action="SelectMail",
                            user_class="business")
        ranges[label] = (float(np.percentile(region.latencies_ms, 10)),
                         float(np.percentile(region.latencies_ms, 90)))

    outcome = ExperimentOutcome(
        experiment_id="regions",
        title="Per-region analysis across timezones (extension)",
        description=(
            "Three regions share one ground-truth preference; each region "
            "is analyzed separately in its local time, as the paper's "
            "U.S.-only slices do."
        ),
    )
    outcome.add_table(
        "NLP at probe latencies (ground truth: 0.88 / 0.68)",
        ["region"] + [f"{int(p)} ms" for p in PROBES],
        nlp_rows(curves, PROBES),
    )
    outcome.add_table(
        "Experienced latency range per region (P10-P90, ms)",
        ["region", "P10", "P90", "dynamic range"],
        [[label, lo, hi, hi / lo] for label, (lo, hi) in ranges.items()],
    )
    truth = paper_curve("SelectMail", "business")
    expected = float(truth.normalized(np.asarray([1000.0]))[0])
    for label, curve in curves.items():
        measured = float(curve.at(1000.0))
        outcome.add_check(
            f"{label}: declining curve",
            measured < float(curve.at(400.0)),
            f"NLP(400)={float(curve.at(400.0)):.3f} > NLP(1000)={measured:.3f}",
        )
    # At least one region should land near the shared anchor; per-region
    # slices carry ~1/3 of the usual data, so the tolerance is looser than
    # the single-region experiments'.
    errors = {label: abs(float(curve.at(1000.0)) - expected)
              for label, curve in curves.items()}
    best = min(errors, key=errors.get)
    outcome.add_check(
        "best region within 0.12 of the shared ground truth at 1000 ms",
        errors[best] < 0.12,
        f"best={best} (|err|={errors[best]:.3f}); all: "
        + ", ".join(f"{k}:{v:.3f}" for k, v in errors.items()),
    )
    outcome.notes.append(
        "All regions share the same true preference; differences between "
        "rows are estimator effects. The region whose workday sits in the "
        "service's fast window (UTC+8 here) sees a compressed latency range "
        "during its active hours and measures a flatter curve."
    )
    return outcome
