"""Common experiment-driver machinery.

Every paper figure/table gets a driver function producing an
:class:`ExperimentOutcome` — a renderable bundle of tables, text plots,
qualitative checks, and paper-vs-measured rows. Benchmarks, the CLI and the
EXPERIMENTS.md generator all consume the same outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.viz.table import format_table


@dataclass(frozen=True)
class Scale:
    """Workload scale knobs shared by all experiment drivers."""

    duration_days: float
    n_users: int
    candidates_per_user_day: float

    def scaled(self, factor: float) -> "Scale":
        return Scale(
            duration_days=self.duration_days,
            n_users=max(4, int(self.n_users * factor)),
            candidates_per_user_day=self.candidates_per_user_day,
        )


#: Quick scale for unit/integration tests.
SMALL = Scale(duration_days=3.0, n_users=150, candidates_per_user_day=60.0)
#: Full scale for benchmark runs (a few hundred thousand actions).
FULL = Scale(duration_days=10.0, n_users=500, candidates_per_user_day=150.0)


@dataclass
class Check:
    """A named qualitative pass/fail with supporting detail."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ExperimentOutcome:
    """Everything an experiment produces, ready to render."""

    experiment_id: str
    title: str
    description: str = ""
    tables: List[Tuple[str, Sequence[str], List[Sequence]]] = field(default_factory=list)
    plots: List[str] = field(default_factory=list)
    series: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Serialized estimator-health report (repro.obs.health), attached by
    #: run_experiment when observability is enabled. Optional so outcomes
    #: checkpointed before this field existed still unpickle cleanly.
    health: Optional[Dict] = None

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def add_table(self, caption: str, headers: Sequence[str], rows: List[Sequence]) -> None:
        self.tables.append((caption, list(headers), rows))

    def add_check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(name=name, passed=bool(passed), detail=detail))

    def render(self, include_plots: bool = True) -> str:
        """Full text report."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.description:
            lines.append(self.description)
        for caption, headers, rows in self.tables:
            lines.append("")
            lines.append(caption)
            lines.append(format_table(headers, rows))
        if include_plots:
            for plot in self.plots:
                lines.append("")
                lines.append(plot)
        if self.checks:
            lines.append("")
            lines.append("Checks:")
            for check in self.checks:
                status = "PASS" if check.passed else "FAIL"
                detail = f" — {check.detail}" if check.detail else ""
                lines.append(f"  [{status}] {check.name}{detail}")
        for note in self.notes:
            lines.append(f"Note: {note}")
        return "\n".join(lines)


def nlp_rows(curves: Dict[str, "PreferenceResult"], latencies: Sequence[float]) -> List[List]:
    """Tabulate NLP(L) for several labelled curves at probe latencies."""
    rows = []
    for label, curve in curves.items():
        row: List = [label]
        for latency in latencies:
            try:
                value = float(curve.at(float(latency)))
            except Exception:
                value = float("nan")
            row.append(None if np.isnan(value) else value)
        rows.append(row)
    return rows
