"""Per-figure analysis drivers and the experiment registry."""

from repro.analysis.base import FULL, SMALL, Check, ExperimentOutcome, Scale
from repro.analysis.bottleneck import run_bottleneck
from repro.analysis.experiments import EXPERIMENTS, run_all, run_experiment
from repro.analysis.fig_locality import run_fig1, run_fig2
from repro.analysis.fig_methodology import run_fig3, run_table1
from repro.analysis.fig_preferences import run_fig4, run_fig5, run_fig6
from repro.analysis.fig_time import run_fig7, run_fig8, run_fig9
from repro.analysis.perf import SMOKE, PerfReport, run_perf_suite
from repro.analysis.recovery import (
    RECOVERY_FIXTURES,
    RECOVERY_SCALES,
    RecoveryFixture,
    RecoveryOutcome,
    run_recovery,
    run_recovery_suite,
)
from repro.analysis.regions_ext import run_regions
from repro.analysis.sensitivity import (
    DEFAULT_SENSITIVITY_NAMES,
    SENSITIVITY_FIXTURES,
    SENSITIVITY_SCALES,
    SensitivityFixture,
    SensitivityOutcome,
    run_sensitivity,
    run_sensitivity_suite,
)
from repro.analysis.sessions_ext import run_sessions
from repro.analysis.summary import failing_checks, summarize

__all__ = [
    "Scale",
    "SMALL",
    "FULL",
    "Check",
    "ExperimentOutcome",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_table1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_bottleneck",
    "run_sessions",
    "run_regions",
    "SMOKE",
    "PerfReport",
    "run_perf_suite",
    "RECOVERY_FIXTURES",
    "RECOVERY_SCALES",
    "RecoveryFixture",
    "RecoveryOutcome",
    "run_recovery",
    "run_recovery_suite",
    "SENSITIVITY_FIXTURES",
    "SENSITIVITY_SCALES",
    "DEFAULT_SENSITIVITY_NAMES",
    "SensitivityFixture",
    "SensitivityOutcome",
    "run_sensitivity",
    "run_sensitivity_suite",
    "summarize",
    "failing_checks",
]
