"""Extension analysis: session-level views and why they mislead.

The paper's intuition (Section 2.1): when the service is fast, users stay
on and do more. A naive session analysis — "are fast sessions longer?" —
seems like the obvious check, and this experiment shows it fails twice on
exactly the kind of data the paper studies:

1. **Pooled**, session length *positively* correlates with latency: busy
   daytime hours produce long sessions *and* high latency (the Section
   2.4.1 time confounder at session granularity).
2. **Hour-controlled** (sessions starting 10:00-16:00 only), the sign is
   still wrong: a session's *mean* latency is computed from its own
   preference-biased actions, so short sessions mechanically report lower
   means (an aggregation artifact).
3. The clean session-level signal is the **within-session action rate**:
   actions per second anti-correlate with session latency, matching the
   ground truth.

This is the session-granularity argument for doing what AutoSens does
instead: compare per-action distributions against time-based availability.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.base import FULL, ExperimentOutcome, Scale
from repro.stats.correlation import spearman
from repro.telemetry.session import sessionize
from repro.workload import owa_scenario


def run_sessions(seed: int = 11, scale: Scale = FULL,
                 gap_seconds: float = 1800.0) -> ExperimentOutcome:
    """Session-level views of latency sensitivity (extension, not a paper fig)."""
    result = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    logs = result.logs.successful()
    sessions = sessionize(logs, gap_seconds=gap_seconds)

    lengths = np.array([s.n_actions for s in sessions], dtype=float)
    latencies = np.array([s.mean_latency_ms for s in sessions], dtype=float)
    rho_naive = spearman(latencies, lengths)

    start_hours = np.array([(s.start % 86400.0) / 3600.0 for s in sessions])
    in_band = (start_hours >= 10.0) & (start_hours < 16.0)
    rho_banded = spearman(latencies[in_band], lengths[in_band])

    durations = np.array([s.duration for s in sessions], dtype=float)
    multi = (lengths > 1) & in_band
    rates = lengths[multi] / np.maximum(durations[multi], 60.0)
    rho_rate = spearman(latencies[multi], rates)

    outcome = ExperimentOutcome(
        experiment_id="sessions",
        title="Why naive session analyses mislead (extension)",
        description=(
            f"Per-user sessions (gap > {gap_seconds / 60:.0f} min starts a "
            "new session). Three session-level estimates of latency "
            "sensitivity, two of which get the sign wrong."
        ),
    )
    outcome.add_table(
        "Session-level correlations with session mean latency",
        ["estimate", "Spearman rho", "sign correct?"],
        [
            ["session length, pooled (naive)", rho_naive, rho_naive < 0],
            ["session length, 10:00-16:00 only", rho_banded, rho_banded < 0],
            ["within-session action rate", rho_rate, rho_rate < 0],
        ],
    )
    outcome.add_table(
        "Scale",
        ["statistic", "value"],
        [["sessions", len(sessions)],
         ["sessions in 10:00-16:00 band", int(in_band.sum())],
         ["multi-action sessions used for rates", int(multi.sum())]],
    )
    outcome.add_check(
        "naive session-length analysis is confounded (sign flipped)",
        rho_naive > 0.02,
        f"pooled rho = {rho_naive:+.3f} (a correct analysis would be negative)",
    )
    outcome.add_check(
        "within-session action rate recovers the true (negative) effect",
        rho_rate < -0.01,
        f"rate rho = {rho_rate:+.3f}",
    )
    outcome.notes.append(
        "Hour-controlling alone does not fix the session-length estimate "
        f"(rho = {rho_banded:+.3f}): short sessions' mean latency is "
        "computed from few preference-biased actions, biasing it low — an "
        "aggregation artifact independent of the time confounder."
    )
    return outcome
