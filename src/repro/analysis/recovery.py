"""Ground-truth recovery gates for the incident scenario library.

The contract this module enforces (ROADMAP open item 2, the queue
backend's whole point): for every incident scenario, running the full
pipeline over incident-contaminated telemetry must either

1. **recover** — the NLP curve stays within tolerance of the incident-free
   run on the same seed (the natural experiment absorbed the regime), or
2. **degrade loudly** — the run records explicit health warnings or
   degradations (``probe_latency_regime``, starved references, ...) so
   ``autosens doctor`` flags it.

A run that drifts beyond tolerance while reporting a clean bill of health
is a **silent-bias** failure — the one outcome the estimator must never
produce — and fails the chaos CI gate.

Every fixture run is deterministic and *backend bit-identical*: telemetry
generation goes through the explicit-executor path (pure per-chunk
streams) and the engine's randomness is stream-keyed, so
``executor="serial"`` and ``executor="process"`` yield byte-identical
outcomes. Artifacts are written as ``obs diff``-compatible curve JSONs so
CI can gate on drift against committed baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core import AutoSens, AutoSensConfig, DegradePolicy
from repro.core.result import PreferenceResult
from repro.errors import ConfigError
from repro.obs import _runtime
from repro.obs._runtime import ObsContext
from repro.obs.health import build_health_report
from repro.obs.probes import (
    DEFAULT_PAIRED_MARGINS,
    PairedRegimeMargins,
    probe_latency_regime,
)
from repro.parallel import resolve_executor
from repro.workload.incidents import (
    AutoscaleStep,
    IncidentPlan,
    IncidentSpec,
    LoadSpike,
    RegionalDegradation,
    RetryStorm,
    SlowDependency,
)
from repro.workload.scenarios import Scenario, queue_scenario

__all__ = [
    "RecoveryFixture",
    "RecoveryOutcome",
    "RECOVERY_FIXTURES",
    "RECOVERY_SCALES",
    "paired_regime_findings",
    "run_recovery",
    "run_recovery_suite",
]

RECOVERY_SCHEMA = "autosens.recovery/v1"

#: Workload sizes per scale: (duration_days, n_users, candidates_per_user_day).
RECOVERY_SCALES: Dict[str, Tuple[float, int, float]] = {
    "small": (2.0, 140, 80.0),
    "full": (5.0, 300, 100.0),
}

VERDICT_RECOVERED = "recovered"
VERDICT_EXPLAINED = "degraded-explained"
VERDICT_SILENT_BIAS = "silent-bias"

#: Paired-detection margins: the incident run's raw-telemetry regime
#: metrics must stay within these factors of the clean run's own values
#: (same seed, same latency stream — only the incident windows differ),
#: or the run is flagged as regime-contaminated. Much tighter than the
#: scenario-agnostic defaults in :func:`probe_latency_regime`, because the
#: clean twin *is* the null hypothesis here. The canonical definition now
#: lives in :class:`repro.obs.probes.PairedRegimeMargins`; these aliases
#: keep the historical names (and identical values).
PAIRED_TAIL_MARGIN = DEFAULT_PAIRED_MARGINS.tail
PAIRED_SPREAD_MARGIN = DEFAULT_PAIRED_MARGINS.spread
_REGIME_EDGES = np.geomspace(20.0, 20000.0, 61)
_REGIME_CENTERS = np.sqrt(_REGIME_EDGES[:-1] * _REGIME_EDGES[1:])


@dataclass(frozen=True)
class RecoveryFixture:
    """One incident regime plus the recovery tolerance it must meet."""

    name: str
    description: str
    specs: Tuple[IncidentSpec, ...]
    #: Max |NLP_incident - NLP_clean| over the compared support.
    tolerance: float = 0.08
    #: Compare only bins up to here — beyond it both curves are tail-sparse.
    compare_max_ms: float = 1200.0

    def scenario(
        self, seed: Optional[int], scale: str, with_incidents: bool
    ) -> Scenario:
        if scale not in RECOVERY_SCALES:
            raise ConfigError(
                f"unknown recovery scale {scale!r}; "
                f"expected one of {sorted(RECOVERY_SCALES)}"
            )
        duration_days, n_users, cpd = RECOVERY_SCALES[scale]
        base = queue_scenario(
            seed=seed, duration_days=duration_days, n_users=n_users,
            candidates_per_user_day=cpd,
        )
        if not with_incidents:
            return base
        return base.with_incidents(IncidentPlan(specs=self.specs, seed=0))


#: The scenario matrix the chaos CI job sweeps: every incident class alone,
#: plus one composed regime (spike + slow dependency overlapping).
RECOVERY_FIXTURES: Dict[str, RecoveryFixture] = {
    fixture.name: fixture
    for fixture in (
        RecoveryFixture(
            name="load-spike",
            description="arrival surge queues requests at the diurnal shoulder",
            specs=(LoadSpike(start_frac=0.35, duration_s=5400.0, peak_mult=2.5),),
        ),
        RecoveryFixture(
            name="slow-dependency",
            description="bimodal service mixture from a degraded downstream",
            specs=(SlowDependency(
                start_frac=0.45, duration_s=7200.0,
                slow_share=0.35, extra_ms=700.0,
            ),),
        ),
        RecoveryFixture(
            name="regional-degradation",
            description="part of the fleet serves slow for three hours",
            specs=(RegionalDegradation(
                start_frac=0.3, duration_s=10800.0,
                service_mult=1.8, region_share=0.4,
            ),),
        ),
        RecoveryFixture(
            name="autoscale-step",
            description="over-eager scale-in removes a server for two hours",
            specs=(AutoscaleStep(
                start_frac=0.5, duration_s=7200.0, server_delta=-1,
            ),),
        ),
        RecoveryFixture(
            name="retry-storm",
            description="load and per-request work inflate together",
            specs=(RetryStorm(
                start_frac=0.4, duration_s=3600.0,
                load_mult=1.7, service_mult=1.25,
            ),),
        ),
        RecoveryFixture(
            name="composite",
            description="load spike overlapping a slow dependency",
            specs=(
                LoadSpike(start_frac=0.3, duration_s=5400.0, peak_mult=2.0),
                SlowDependency(
                    start_frac=0.35, duration_s=7200.0,
                    slow_share=0.25, extra_ms=500.0,
                ),
            ),
        ),
    )
}


@dataclass
class RecoveryOutcome:
    """Everything one fixture run produced, JSON-stable for diffing."""

    fixture: str
    verdict: str
    max_abs_nlp_diff: float
    tolerance: float
    n_compared_bins: int
    seed: int
    scale: str
    executor: str
    incident_windows: List[dict]
    health: Dict[str, Any]
    regime: List[dict]
    clean_n_actions: int
    incident_n_actions: int
    curve: PreferenceResult
    clean_curve: PreferenceResult

    @property
    def gate_passed(self) -> bool:
        """The CI contract: anything but a silent clean-but-biased curve."""
        return self.verdict != VERDICT_SILENT_BIAS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RECOVERY_SCHEMA,
            "fixture": self.fixture,
            "verdict": self.verdict,
            "gate_passed": self.gate_passed,
            "max_abs_nlp_diff": round(float(self.max_abs_nlp_diff), 6),
            "tolerance": float(self.tolerance),
            "n_compared_bins": int(self.n_compared_bins),
            "seed": int(self.seed),
            "scale": self.scale,
            "executor": self.executor,
            "incident_windows": list(self.incident_windows),
            "health": self.health,
            "regime": list(self.regime),
            "clean_n_actions": int(self.clean_n_actions),
            "incident_n_actions": int(self.incident_n_actions),
        }


def _run_pipeline(
    scenario: Scenario,
    seed: int,
    executor_spec: str,
    run_id: str,
) -> Tuple[PreferenceResult, "Any", Dict[str, Any]]:
    """One generate + estimate pass under a scoped observability context.

    The context is scoped (installed and restored) so recovery runs never
    leak findings into a surrounding instrumented run, and vice versa.
    Returns the curve, the telemetry and the folded health summary.
    """
    ctx = ObsContext(enabled=True, deterministic=True, run_id=run_id)
    previous = _runtime.install(ctx)
    try:
        executor = resolve_executor(executor_spec)
        telemetry = scenario.generate(seed=seed, executor=executor)
        engine = AutoSens(
            AutoSensConfig(seed=seed),
            executor=executor,
            degrade=DegradePolicy(),
        )
        curve = engine.preference_curve(telemetry.logs)
        report = build_health_report(
            findings=list(ctx.findings), degradations=list(ctx.degradations)
        )
        health = {
            "verdict": report.verdict,
            "counts": report.counts(),
            "worst": [
                {k: f.get(k) for k in ("probe", "stage", "severity", "message")}
                for f in report.worst_findings(limit=5)
                if f.get("severity") != "ok"
            ],
        }
        return curve, telemetry, health
    finally:
        _runtime.install(previous)


def _regime_matrix(logs: Any) -> np.ndarray:
    """Hour-of-day x latency-bin counts straight off the raw telemetry.

    Raw latencies keep the incident's full upper tail (the estimator's
    slot/bin tensor clips and reweights it), so the paired comparison sees
    a 10-20x tail-ratio signal where the curve-level one sees 1.1-3x.
    """
    slots = ((np.asarray(logs.times) // 3600.0) % 24).astype(int)
    bins = np.clip(
        np.digitize(np.asarray(logs.latencies_ms), _REGIME_EDGES) - 1,
        0, _REGIME_CENTERS.size - 1,
    )
    matrix = np.zeros((24, _REGIME_CENTERS.size))
    np.add.at(matrix, (slots, bins), 1.0)
    return matrix


def paired_regime_findings(
    clean_logs: Any,
    other_logs: Any,
    margins: Optional[PairedRegimeMargins] = None,
) -> List[dict]:
    """Regime probe on a run, thresholded by its clean same-seed twin.

    Runs :func:`probe_latency_regime` twice: once on the clean run with
    unreachable thresholds (to read off the baseline tail ratio and median
    spread), then on the other run with warn thresholds at
    ``baseline * margin`` and fail thresholds at the margins' fail
    factors. Inherits the probe's never-raise contract. Shared by the
    recovery gates and the sensitivity suite.
    """
    margins = margins or DEFAULT_PAIRED_MARGINS
    baseline = {
        f.probe: f.value
        for f in probe_latency_regime(
            _regime_matrix(clean_logs), _REGIME_CENTERS,
            slice_description="clean twin",
            warn_tail_ratio=np.inf, fail_tail_ratio=np.inf,
            warn_median_spread=np.inf, fail_median_spread=np.inf,
        )
        if f.value is not None
    }
    clean_tail = baseline.get("latency_tail_inflation")
    clean_spread = baseline.get("latency_regime_shift")
    if clean_tail is None or clean_spread is None:
        # Clean twin itself not assessable — nothing to pair against.
        return [f.to_dict() for f in probe_latency_regime(
            _regime_matrix(other_logs), _REGIME_CENTERS,
            slice_description="paired vs clean (unpaired fallback)",
        )]
    findings = probe_latency_regime(
        _regime_matrix(other_logs), _REGIME_CENTERS,
        slice_description="paired vs clean",
        warn_tail_ratio=clean_tail * margins.tail,
        fail_tail_ratio=clean_tail * margins.tail * margins.tail_fail_factor,
        warn_median_spread=clean_spread * margins.spread,
        fail_median_spread=(
            clean_spread * margins.spread * margins.spread_fail_factor
        ),
    )
    out = []
    for f in findings:
        d = f.to_dict()
        d["context"]["clean_baseline"] = {
            "latency_tail_inflation": round(float(clean_tail), 6),
            "latency_regime_shift": round(float(clean_spread), 6),
        }
        out.append(d)
    return out


#: Backward-compatible alias (pre-sensitivity-suite private name).
_paired_regime_findings = paired_regime_findings


def _curve_distance(
    incident: PreferenceResult,
    clean: PreferenceResult,
    compare_max_ms: float,
) -> Tuple[float, int]:
    """Max |ΔNLP| over the bins both curves support, up to compare_max_ms."""
    mask = (
        incident.valid & clean.valid
        & (incident.latencies <= compare_max_ms)
    )
    n = int(mask.sum())
    if n == 0:
        return float("inf"), 0
    diff = np.abs(incident.nlp[mask] - clean.nlp[mask])
    return float(diff.max()), n


def run_recovery(
    fixture: Union[str, RecoveryFixture],
    seed: int = 7,
    scale: str = "small",
    executor: str = "serial",
) -> RecoveryOutcome:
    """Run one recovery fixture end to end and classify the outcome.

    Generates the incident-free and incident-contaminated workloads on the
    *same seed* (identical population, candidate streams and engine
    randomness — the only difference is the latency regime), estimates
    both NLP curves, and compares them on their common support.
    """
    if isinstance(fixture, str):
        if fixture not in RECOVERY_FIXTURES:
            raise ConfigError(
                f"unknown recovery fixture {fixture!r}; "
                f"expected one of {sorted(RECOVERY_FIXTURES)}"
            )
        fixture = RECOVERY_FIXTURES[fixture]

    clean_scenario = fixture.scenario(seed, scale, with_incidents=False)
    incident_scenario = fixture.scenario(seed, scale, with_incidents=True)

    clean_curve, clean_telemetry, _ = _run_pipeline(
        clean_scenario, seed, executor, run_id=f"recover:{fixture.name}:clean"
    )
    incident_curve, incident_telemetry, health = _run_pipeline(
        incident_scenario, seed, executor,
        run_id=f"recover:{fixture.name}:incident",
    )
    incident_windows = [w.to_dict() for w in incident_telemetry.incident_windows]
    regime = paired_regime_findings(
        clean_telemetry.logs, incident_telemetry.logs
    )
    regime_flagged = any(f.get("severity") in ("warn", "fail") for f in regime)

    max_abs, n_compared = _curve_distance(
        incident_curve, clean_curve, fixture.compare_max_ms
    )
    if n_compared > 0 and max_abs <= fixture.tolerance:
        verdict = VERDICT_RECOVERED
    elif (
        regime_flagged
        or health["verdict"] != "ok"
        or health["counts"]["warn"] > 0
    ):
        verdict = VERDICT_EXPLAINED
    else:
        verdict = VERDICT_SILENT_BIAS

    return RecoveryOutcome(
        fixture=fixture.name,
        verdict=verdict,
        max_abs_nlp_diff=max_abs,
        tolerance=fixture.tolerance,
        n_compared_bins=n_compared,
        seed=seed,
        scale=scale,
        executor=executor,
        incident_windows=incident_windows,
        health=health,
        regime=regime,
        clean_n_actions=len(clean_telemetry.logs),
        incident_n_actions=len(incident_telemetry.logs),
        curve=incident_curve,
        clean_curve=clean_curve,
    )


def run_recovery_suite(
    names: Optional[List[str]] = None,
    seed: int = 7,
    scale: str = "small",
    executor: str = "serial",
    out_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, RecoveryOutcome]:
    """Run a fixture matrix; optionally write diffable artifacts.

    ``out_dir`` receives, per fixture, the incident-run curve
    (``<name>.curve.json`` — ``obs diff`` sniffs it as a curve artifact)
    and the recovery verdict (``<name>.recovery.json``), plus a
    ``summary.json`` for the whole matrix.
    """
    selected = names or sorted(RECOVERY_FIXTURES)
    outcomes: Dict[str, RecoveryOutcome] = {}
    for name in selected:
        outcomes[name] = run_recovery(
            name, seed=seed, scale=scale, executor=executor
        )
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, outcome in outcomes.items():
            outcome.curve.save_json(out / f"{name}.curve.json")
            (out / f"{name}.recovery.json").write_text(
                json.dumps(outcome.to_dict(), indent=1, sort_keys=True)
            )
        summary = {
            "schema": RECOVERY_SCHEMA,
            "seed": seed,
            "scale": scale,
            "executor": executor,
            "fixtures": {
                name: {
                    "verdict": o.verdict,
                    "gate_passed": o.gate_passed,
                    "max_abs_nlp_diff": round(float(o.max_abs_nlp_diff), 6),
                }
                for name, o in outcomes.items()
            },
            "gate_passed": all(o.gate_passed for o in outcomes.values()),
        }
        (out / "summary.json").write_text(
            json.dumps(summary, indent=1, sort_keys=True)
        )
    return outcomes
