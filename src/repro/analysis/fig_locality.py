"""Drivers for Figure 1 (MSD/MAD locality) and Figure 2 (activity vs latency)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.base import FULL, ExperimentOutcome, Scale
from repro.core import AutoSens, AutoSensConfig
from repro.viz.ascii_plot import bar_chart, line_plot
from repro.workload import owa_scenario


def run_fig1(seed: int = 11, scale: Scale = FULL) -> ExperimentOutcome:
    """Figure 1: MSD/MAD of the latency series vs shuffled and sorted.

    Paper expectation: the actual series sits far below the shuffled
    extreme (≈1) and well above the sorted extreme (≈0) — latency is
    locally predictable.
    """
    result = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    engine = AutoSens(AutoSensConfig(seed=seed))
    comparison = engine.locality(result.logs)

    outcome = ExperimentOutcome(
        experiment_id="fig1",
        title="MSD/MAD locality of the latency time series",
        description=(
            "Compares the mean successive difference / mean absolute "
            "difference ratio of the observed latency series against its "
            "randomly shuffled and fully sorted extremes (paper Fig. 1)."
        ),
    )
    outcome.add_table(
        "MSD/MAD ratio",
        ["series", "msd/mad"],
        [
            ["actual", comparison.actual],
            ["shuffled", comparison.shuffled],
            ["sorted", comparison.sorted],
        ],
    )
    outcome.plots.append(bar_chart(
        {"actual": comparison.actual,
         "shuffled": comparison.shuffled,
         "sorted": comparison.sorted},
        title="MSD/MAD ratio (lower = more locality)",
    ))
    outcome.series["fig1"] = {
        "series": np.array(["actual", "shuffled", "sorted"], dtype=object),
        "msd_mad": np.array(
            [comparison.actual, comparison.shuffled, comparison.sorted]
        ),
    }
    outcome.add_check(
        "actual well below shuffled",
        comparison.actual < 0.8 * comparison.shuffled,
        f"actual={comparison.actual:.3f}, shuffled={comparison.shuffled:.3f}",
    )
    outcome.add_check(
        "shuffled near 1",
        0.9 < comparison.shuffled < 1.1,
        f"shuffled={comparison.shuffled:.3f}",
    )
    outcome.add_check(
        "sorted near 0",
        comparison.sorted < 0.05,
        f"sorted={comparison.sorted:.4f}",
    )
    return outcome


def run_fig2(seed: int = 11, scale: Scale = FULL, plot_days: float = 2.0) -> ExperimentOutcome:
    """Figure 2: normalized latency level and activity rate over two days.

    Paper expectation: periods of low latency show a higher rate of user
    activity. On the synthetic workload the *raw* per-minute correlation is
    confounded by the diurnal cycle (busy hours are both slower and more
    active — the very problem Section 2.4.1 addresses); the within-hour
    (detrended) correlation is clearly negative.
    """
    result = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    engine = AutoSens(AutoSensConfig(seed=seed))
    series = engine.density_series(result.logs, window_seconds=60.0)

    raw = series.pearson_correlation
    detrended = series.detrended_correlation()

    outcome = ExperimentOutcome(
        experiment_id="fig2",
        title="Latency level vs rate of user activity (2-day window)",
        description=(
            "Per-minute action counts against per-minute mean latency "
            "(paper Fig. 2; axes normalized)."
        ),
    )
    # Clip to the first plot_days for the visual, smooth over 15-min bins.
    n = min(int(plot_days * 24 * 60), series.window_starts.size)
    counts, lats = series.normalized()
    stride = 15
    t_hours = series.window_starts[:n:stride] / 3600.0

    def block_mean(x: np.ndarray) -> np.ndarray:
        blocks = [x[i : i + stride] for i in range(0, n, stride)]
        return np.array([np.nanmean(b) if np.any(~np.isnan(b)) else np.nan for b in blocks])

    outcome.plots.append(line_plot(
        {"activity": (t_hours, block_mean(counts)),
         "latency": (t_hours, block_mean(lats))},
        title="normalized activity (o) and latency (x) vs hour",
        x_label="hours",
    ))
    outcome.add_table(
        "Density-latency correlation over 1-minute windows",
        ["measure", "value"],
        [["raw Pearson", raw],
         ["raw Spearman", series.spearman_correlation],
         ["detrended (within-hour) Pearson", detrended]],
    )
    outcome.series["fig2"] = {
        "window_start_s": series.window_starts[:n],
        "action_count": series.action_counts[:n],
        "mean_latency_ms": series.mean_latency_ms[:n],
    }
    outcome.add_check(
        "within-hour correlation negative (activity drops when latency spikes)",
        detrended < -0.1,
        f"detrended={detrended:.3f}",
    )
    outcome.notes.append(
        "The raw correlation mixes in the diurnal confounder "
        f"(raw={raw:+.3f}); the detrended value isolates the preference effect."
    )
    return outcome
