"""Sensitivity suite: estimator robustness under degraded telemetry.

The recovery gates (:mod:`repro.analysis.recovery`) ask a binary question
about incident regimes. This module asks the *graded* one: how fast does
the NLP estimate drift as real-world telemetry pathologies are dialed up —
irregular diurnal-tied sampling, informative (MNAR) missingness, heavy-user
skew, and reduced probing (event/user/time subsampling) — and is every
drift **loud**?

For each fixture the harness generates one clean workload, then runs each
degraded variant against its clean same-seed twin. Degradation is applied
*post hoc* to the same realized telemetry (unlike recovery, which
re-simulates with incidents), so one generation serves the whole ladder
and every latency/candidate draw is shared between twin and cell. The
output is a **frontier artifact** per fixture: per-level NLP bias (L∞ and
signed area), a CI-band-inflation proxy, paired health-probe verdicts, and
deterministic compute cost (span counts; wall seconds go to an ungated
``timings.json`` sidecar so the frontier stays byte-identical across
backends and reruns).

Verdict taxonomy per cell:

- ``robust`` — bias within tolerance on the common support;
- ``degraded-explained`` — bias beyond tolerance (or no comparable
  support) *but* a paired probe, a health warning, or a typed
  :class:`~repro.errors.InsufficientDataError` refusal flagged the cell;
- ``silent-bias`` — biased beyond tolerance with a clean bill of health.
  The one outcome the estimator must never produce; any such cell fails
  the CI gate.

Every run is deterministic and backend bit-identical: generation uses the
explicit-executor path, engine randomness is stream-keyed, degradations
draw from per-spec named streams, and cells fan out over
``executor.map_ordered`` with pure payloads.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.recovery import _curve_distance, paired_regime_findings
from repro.core import AutoSens, AutoSensConfig, DegradePolicy, SubsamplePolicy
from repro.core.result import PreferenceResult
from repro.errors import ConfigError, EmptyDataError, InsufficientDataError
from repro.obs import _runtime
from repro.obs._runtime import ObsContext
from repro.obs.health import build_health_report
from repro.obs.probes import (
    DEFAULT_PAIRED_MARGINS,
    PairedRegimeMargins,
    probe_missingness,
)
from repro.obs.trace import aggregate_span_timings
from repro.parallel import resolve_executor, task_seeds
from repro.telemetry.log_store import LogStore
from repro.workload.degradations import DEGRADATION_BUILDERS, DegradationPlan
from repro.workload.scenarios import SCENARIOS, Scenario

__all__ = [
    "SensitivityFixture",
    "SensitivityOutcome",
    "SENSITIVITY_FIXTURES",
    "SENSITIVITY_SCALES",
    "DEFAULT_SENSITIVITY_NAMES",
    "run_sensitivity",
    "run_sensitivity_suite",
]

SENSITIVITY_SCHEMA = "autosens.sensitivity/v1"

#: Workload sizes per scale: (duration_days, n_users, candidates_per_user_day).
#: ``smoke`` matches the recovery suite's ``small`` scale — proven to yield
#: healthy curves while keeping a 1/8 subsample above ``min_actions``.
SENSITIVITY_SCALES: Dict[str, Tuple[float, int, float]] = {
    "smoke": (2.0, 140, 80.0),
    "full": (5.0, 300, 100.0),
}

VERDICT_ROBUST = "robust"
VERDICT_EXPLAINED = "degraded-explained"
VERDICT_SILENT_BIAS = "silent-bias"

_SUBSAMPLE_AXES = ("event", "user", "time")


@dataclass(frozen=True)
class SensitivityFixture:
    """One degradation operator and the level ladder to sweep it over."""

    name: str
    description: str
    #: ``"degrade"`` (post-hoc LogStore operator) or ``"subsample"``
    #: (in-engine :class:`~repro.core.SubsamplePolicy`).
    kind: str
    #: For ``degrade``: a :data:`~repro.workload.degradations.DEGRADATION_BUILDERS`
    #: key. For ``subsample``: the axis (``event``/``user``/``time``).
    operator: str
    #: Degradation levels in [0, 1] (``degrade``) or kept fractions in
    #: (0, 1] (``subsample``). One frontier cell per level.
    levels: Tuple[float, ...]
    #: Max |NLP_cell - NLP_clean| a cell may show and still be robust.
    tolerance: float = 0.08
    #: Compare only bins up to here — beyond it both curves are tail-sparse.
    compare_max_ms: float = 1200.0
    #: Whether the default suite sweep includes this fixture. The
    #: deliberately-silent demo fixture is excluded so the default gate
    #: stays green while CI can still invoke it by name to prove the gate
    #: goes red.
    in_default: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("degrade", "subsample"):
            raise ConfigError(
                f"kind must be 'degrade' or 'subsample', got {self.kind!r}")
        if self.kind == "degrade" and self.operator not in DEGRADATION_BUILDERS:
            raise ConfigError(
                f"unknown degradation operator {self.operator!r}; "
                f"expected one of {sorted(DEGRADATION_BUILDERS)}")
        if self.kind == "subsample" and self.operator not in _SUBSAMPLE_AXES:
            raise ConfigError(
                f"unknown subsample axis {self.operator!r}; "
                f"expected one of {_SUBSAMPLE_AXES}")
        if not self.levels:
            raise ConfigError(f"fixture {self.name!r} has no levels")

    def subsample_policy(self, level: float) -> SubsamplePolicy:
        return SubsamplePolicy(**{f"{self.operator}_fraction": level})


#: The default frontier matrix: every operator family across a level
#: ladder, plus the named silent-bias demo (``in_default=False``).
SENSITIVITY_FIXTURES: Dict[str, SensitivityFixture] = {
    fixture.name: fixture
    for fixture in (
        SensitivityFixture(
            name="diurnal-thinning",
            description="collector sheds load at the diurnal peak",
            kind="degrade", operator="diurnal-thinning",
            levels=(0.3, 0.6, 0.9),
        ),
        SensitivityFixture(
            name="mnar-latency",
            description="slow requests drop out of the logging path (MNAR)",
            kind="degrade", operator="mnar-latency",
            levels=(0.25, 0.5, 0.75),
        ),
        SensitivityFixture(
            name="user-skew-mild",
            description=(
                "heavy users moderately over-represented; duplication "
                "preserves every row, so the drift stays inside the "
                "smoke-scale noise envelope — the committed robust class"),
            kind="degrade", operator="user-skew",
            levels=(0.25, 0.5),
            tolerance=0.20,
        ),
        SensitivityFixture(
            name="subsample-events",
            description="uniform probe subsampling (keep a fraction of events)",
            kind="subsample", operator="event",
            levels=(0.5, 0.25, 0.125),
        ),
        SensitivityFixture(
            name="subsample-users",
            description="per-device sampling flags (keep whole users)",
            kind="subsample", operator="user",
            levels=(0.5, 0.25, 0.125),
        ),
        SensitivityFixture(
            name="subsample-time",
            description="collector off for whole time windows",
            kind="subsample", operator="time",
            levels=(0.5, 0.25, 0.125),
        ),
        SensitivityFixture(
            name="user-skew-heavy",
            description=(
                "strong heavy-user duplication: the committed silent-bias "
                "demonstration (no regime or missingness fingerprint)"),
            kind="degrade", operator="user-skew",
            levels=(1.0,),
            in_default=False,
        ),
    )
}

#: Fixture names the no-argument suite (and CI's green gate) sweeps.
DEFAULT_SENSITIVITY_NAMES: Tuple[str, ...] = tuple(
    name for name, f in sorted(SENSITIVITY_FIXTURES.items()) if f.in_default
)


@dataclass
class SensitivityOutcome:
    """One fixture's frontier: a verdict-graded bias-vs-cost ladder."""

    fixture: str
    description: str
    kind: str
    operator: str
    tolerance: float
    compare_max_ms: float
    seed: int
    scale: str
    scenario: str
    executor: str
    clean: Dict[str, Any]
    cells: List[Dict[str, Any]]
    clean_curve: PreferenceResult
    cell_curves: Dict[float, Optional[PreferenceResult]]
    margins: Dict[str, float]
    #: Wall seconds per cell (and the clean twin) — *not* part of the
    #: frontier artifact; written to the ungated timings sidecar only.
    wall_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def gate_passed(self) -> bool:
        """The CI contract: no cell may be silently biased."""
        return all(c["verdict"] != VERDICT_SILENT_BIAS for c in self.cells)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SENSITIVITY_SCHEMA,
            "fixture": self.fixture,
            "description": self.description,
            "kind": self.kind,
            "operator": self.operator,
            "tolerance": float(self.tolerance),
            "compare_max_ms": float(self.compare_max_ms),
            "seed": int(self.seed),
            "scale": self.scale,
            "scenario": self.scenario,
            # The executor label is deliberately NOT serialized: the gated
            # frontier must be byte-identical across backends, so runtime
            # provenance lives in the ungated timings sidecar instead.
            "margins": dict(self.margins),
            "clean": self.clean,
            "cells": list(self.cells),
            "gate_passed": self.gate_passed,
        }


def _cell_task(payload: Tuple) -> Tuple:
    """Top-level (picklable) cell task: one engine pass on one variant.

    Installs a fresh deterministic observability context so each cell's
    findings, degradations, and span counts are its own — independent of
    which worker runs it and in what order. A typed
    :class:`InsufficientDataError` (a starved subsample, say) comes back
    as an ``error`` string, never an exception: a refusal is a loud,
    classifiable outcome, not a crash.
    """
    logs, seed, subsample, run_id = payload
    ctx = ObsContext(enabled=True, deterministic=True, run_id=run_id)
    previous = _runtime.install(ctx)
    start = time.perf_counter()
    try:
        engine = AutoSens(
            AutoSensConfig(seed=seed),
            degrade=DegradePolicy(),
            subsample=subsample,
        )
        curve: Optional[PreferenceResult] = None
        error: Optional[str] = None
        try:
            curve = engine.preference_curve(logs)
        except (InsufficientDataError, EmptyDataError) as exc:
            error = f"{type(exc).__name__}: {exc}"
        report = build_health_report(
            findings=list(ctx.findings), degradations=list(ctx.degradations)
        )
        health = {
            "verdict": report.verdict,
            "counts": report.counts(),
            "worst": [
                {k: f.get(k) for k in ("probe", "stage", "severity", "message")}
                for f in report.worst_findings(limit=5)
                if f.get("severity") != "ok"
            ],
        }
        spans = aggregate_span_timings(ctx.tracer.finished())
        span_counts = {name: info["count"] for name, info in spans.items()}
    finally:
        _runtime.install(previous)
    wall = time.perf_counter() - start
    return curve, health, span_counts, error, wall


def _band_halfwidths(curve: PreferenceResult) -> np.ndarray:
    """Delta-method CI-halfwidth proxy per bin: |nlp| * sqrt(1/B + 1/U).

    Not a bootstrap band (that would re-run the pipeline dozens of times
    per cell); a deterministic count-based proxy whose *ratio* between a
    degraded cell and its clean twin measures variance inflation. Exactly
    1.0 for an identity cell, since twin and cell share every count.
    """
    eps = 1e-9
    b = np.maximum(np.nan_to_num(curve.biased_counts, nan=0.0), eps)
    u = np.maximum(np.nan_to_num(curve.unbiased_counts, nan=0.0), eps)
    return np.abs(np.nan_to_num(curve.nlp, nan=0.0)) * np.sqrt(1.0 / b + 1.0 / u)


def _bias_metrics(
    cell: PreferenceResult,
    clean: PreferenceResult,
    compare_max_ms: float,
) -> Dict[str, Optional[float]]:
    """L∞ / signed-area / band-inflation of a cell vs its clean twin.

    All values are ``None`` (never ``inf`` — the artifact is JSON) when
    the curves share no comparable support.
    """
    linf, n_compared = _curve_distance(cell, clean, compare_max_ms)
    if n_compared == 0:
        return {
            "bias_linf": None,
            "bias_signed_area": None,
            "ci_band_inflation": None,
            "n_compared_bins": 0,
        }
    mask = cell.valid & clean.valid & (cell.latencies <= compare_max_ms)
    signed_area = float(
        (cell.nlp[mask] - clean.nlp[mask]).sum() * clean.bins.width
    )
    cell_hw = float(_band_halfwidths(cell)[mask].mean())
    clean_hw = float(_band_halfwidths(clean)[mask].mean())
    inflation = cell_hw / clean_hw if clean_hw > 0 else None
    return {
        "bias_linf": round(float(linf), 6),
        "bias_signed_area": round(signed_area, 6),
        "ci_band_inflation": (
            round(inflation, 6) if inflation is not None else None
        ),
        "n_compared_bins": int(n_compared),
    }


def _paired_missingness_findings(
    clean_logs: LogStore, cell_logs: LogStore
) -> List[dict]:
    return [
        f.to_dict()
        for f in probe_missingness(
            cell_logs.times, cell_logs.latencies_ms,
            reference_times=clean_logs.times,
            reference_latencies_ms=clean_logs.latencies_ms,
            slice_description="paired vs clean",
        )
    ]


def _resolve_scenario(scenario: str, scale: str) -> Scenario:
    if scenario not in SCENARIOS:
        raise ConfigError(
            f"unknown scenario {scenario!r}; "
            f"expected one of {sorted(SCENARIOS)}"
        )
    if scale not in SENSITIVITY_SCALES:
        raise ConfigError(
            f"unknown sensitivity scale {scale!r}; "
            f"expected one of {sorted(SENSITIVITY_SCALES)}"
        )
    duration_days, n_users, cpd = SENSITIVITY_SCALES[scale]
    return SCENARIOS[scenario]().scaled(
        duration_days=duration_days, n_users=n_users,
        candidates_per_user_day=cpd,
    )


def _generate_clean(
    scenario: Scenario, seed: int, executor: Any, run_id: str
) -> LogStore:
    """One scoped, deterministic generation — the suite's single dataset."""
    ctx = ObsContext(enabled=True, deterministic=True, run_id=run_id)
    previous = _runtime.install(ctx)
    try:
        telemetry = scenario.generate(seed=seed, executor=executor)
    finally:
        _runtime.install(previous)
    return telemetry.logs


def _resolve_fixture(
    fixture: Union[str, SensitivityFixture]
) -> SensitivityFixture:
    if isinstance(fixture, str):
        if fixture not in SENSITIVITY_FIXTURES:
            raise ConfigError(
                f"unknown sensitivity fixture {fixture!r}; "
                f"expected one of {sorted(SENSITIVITY_FIXTURES)}"
            )
        return SENSITIVITY_FIXTURES[fixture]
    return fixture


def _run_fixture(
    fixture: SensitivityFixture,
    clean_logs: LogStore,
    seed: int,
    scale: str,
    scenario_name: str,
    executor_spec: str,
    margins: PairedRegimeMargins,
) -> SensitivityOutcome:
    """Sweep one fixture's ladder against an already-generated dataset."""
    executor = resolve_executor(executor_spec)
    # One degradation-plan seed per fixture, derived purely from the suite
    # seed and the fixture name: every level of the ladder shares the same
    # per-row draws (monotone nesting), adding a fixture never moves
    # another's draws, and the engine seed stays the suite seed so each
    # cell is the clean run's true twin.
    plan_seed = task_seeds(seed, f"sensitivity/{fixture.name}", 1)[0]

    cell_logs: List[Optional[LogStore]] = []
    payloads: List[Tuple] = [
        (clean_logs, seed, None, f"sensitivity:{fixture.name}:clean")
    ]
    for i, level in enumerate(fixture.levels):
        if fixture.kind == "degrade":
            spec = DEGRADATION_BUILDERS[fixture.operator](level)
            degraded = DegradationPlan(specs=(spec,), seed=plan_seed).apply(
                clean_logs
            )
            cell_logs.append(degraded)
            subsample = None
        else:
            degraded = clean_logs
            cell_logs.append(None)  # thinning happens inside the engine
            subsample = fixture.subsample_policy(level)
        payloads.append(
            (degraded, seed, subsample,
             f"sensitivity:{fixture.name}:{i}")
        )

    results = executor.map_ordered(_cell_task, payloads)
    clean_curve, clean_health, clean_spans, clean_error, clean_wall = results[0]
    if clean_curve is None:
        raise InsufficientDataError(
            f"clean twin for fixture {fixture.name!r} produced no curve: "
            f"{clean_error}"
        )

    wall_seconds = {"clean": round(clean_wall, 6)}
    clean_summary = {
        "n_actions": int(len(clean_logs)),
        "health": clean_health,
        "span_counts": clean_spans,
    }

    cells: List[Dict[str, Any]] = []
    cell_curves: Dict[float, Optional[PreferenceResult]] = {}
    for i, level in enumerate(fixture.levels):
        curve, health, span_counts, error, wall = results[i + 1]
        wall_seconds[f"level_{level:g}"] = round(wall, 6)
        cell_curves[level] = curve

        if fixture.kind == "degrade":
            variant = cell_logs[i]
            regime = paired_regime_findings(clean_logs, variant, margins)
            missingness = _paired_missingness_findings(clean_logs, variant)
            n_cell_actions = int(len(variant))
        else:
            # Subsampling happens inside the engine; the in-engine
            # degradation record (a health warning) is the loud channel,
            # and the paired probes have nothing post-hoc to inspect.
            regime = []
            missingness = []
            n_cell_actions = int(len(clean_logs))
        probes = regime + missingness
        probe_flagged = any(
            f.get("severity") in ("warn", "fail") for f in probes
        )

        if curve is not None:
            metrics = _bias_metrics(curve, clean_curve, fixture.compare_max_ms)
        else:
            metrics = {
                "bias_linf": None,
                "bias_signed_area": None,
                "ci_band_inflation": None,
                "n_compared_bins": 0,
            }

        within = (
            metrics["n_compared_bins"] > 0
            and metrics["bias_linf"] is not None
            and metrics["bias_linf"] <= fixture.tolerance
        )
        loud = (
            probe_flagged
            or error is not None
            or health["verdict"] != "ok"
            or health["counts"]["warn"] > 0
        )
        if within:
            verdict = VERDICT_ROBUST
        elif loud:
            verdict = VERDICT_EXPLAINED
        else:
            verdict = VERDICT_SILENT_BIAS

        cells.append({
            "level": float(level),
            "verdict": verdict,
            "gate_passed": verdict != VERDICT_SILENT_BIAS,
            "n_actions": n_cell_actions,
            "error": error,
            "health": health,
            "probes": probes,
            "span_counts": span_counts,
            **metrics,
        })

    return SensitivityOutcome(
        fixture=fixture.name,
        description=fixture.description,
        kind=fixture.kind,
        operator=fixture.operator,
        tolerance=fixture.tolerance,
        compare_max_ms=fixture.compare_max_ms,
        seed=seed,
        scale=scale,
        scenario=scenario_name,
        executor=executor_spec,
        clean=clean_summary,
        cells=cells,
        clean_curve=clean_curve,
        cell_curves=cell_curves,
        margins=margins.to_dict(),
        wall_seconds=wall_seconds,
    )


def run_sensitivity(
    fixture: Union[str, SensitivityFixture],
    scenario: str = "owa-queue",
    seed: int = 7,
    scale: str = "smoke",
    executor: str = "serial",
    margins: Optional[PairedRegimeMargins] = None,
) -> SensitivityOutcome:
    """Run one fixture's full level ladder end to end.

    Generates the clean workload once, then estimates the clean twin and
    every degraded cell from the same realized telemetry and the same
    engine seed. ``margins`` overrides the paired-probe margins (the
    satellite sweep knob); the defaults are the recovery gates' values.
    """
    fixture = _resolve_fixture(fixture)
    base = _resolve_scenario(scenario, scale)
    clean_logs = _generate_clean(
        base, seed, resolve_executor(executor),
        run_id=f"sensitivity:{fixture.name}:generate",
    )
    return _run_fixture(
        fixture, clean_logs, seed, scale, scenario, executor,
        margins or DEFAULT_PAIRED_MARGINS,
    )


def run_sensitivity_suite(
    names: Optional[List[str]] = None,
    scenario: str = "owa-queue",
    seed: int = 7,
    scale: str = "smoke",
    executor: str = "serial",
    out_dir: Optional[Union[str, Path]] = None,
    margins: Optional[PairedRegimeMargins] = None,
) -> Dict[str, SensitivityOutcome]:
    """Run a fixture matrix over ONE shared generation; write artifacts.

    ``out_dir`` receives, per fixture, the frontier
    (``<name>.frontier.json`` — ``obs diff`` sniffs it as a sensitivity
    artifact), plus ``summary.json`` for the matrix and a ``timings.json``
    sidecar holding wall seconds (the only non-deterministic quantity,
    kept out of every gated artifact).
    """
    selected = list(names) if names else list(DEFAULT_SENSITIVITY_NAMES)
    fixtures = [_resolve_fixture(name) for name in selected]
    base = _resolve_scenario(scenario, scale)
    clean_logs = _generate_clean(
        base, seed, resolve_executor(executor),
        run_id="sensitivity:generate",
    )
    effective = margins or DEFAULT_PAIRED_MARGINS
    outcomes: Dict[str, SensitivityOutcome] = {}
    for fixture in fixtures:
        outcomes[fixture.name] = _run_fixture(
            fixture, clean_logs, seed, scale, scenario, executor, effective,
        )
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, outcome in outcomes.items():
            (out / f"{name}.frontier.json").write_text(
                json.dumps(outcome.to_dict(), indent=1, sort_keys=True)
            )
        summary = {
            "schema": SENSITIVITY_SCHEMA,
            "scenario": scenario,
            "seed": seed,
            "scale": scale,
            "fixtures": {
                name: {
                    "gate_passed": o.gate_passed,
                    "cells": {
                        f"{c['level']:g}": c["verdict"] for c in o.cells
                    },
                }
                for name, o in outcomes.items()
            },
            "gate_passed": all(o.gate_passed for o in outcomes.values()),
        }
        (out / "summary.json").write_text(
            json.dumps(summary, indent=1, sort_keys=True)
        )
        timings = {
            "executor": executor,
            **{name: dict(o.wall_seconds) for name, o in outcomes.items()},
        }
        (out / "timings.json").write_text(
            json.dumps(timings, indent=1, sort_keys=True)
        )
    return outcomes
