"""Driver for the Section 3.5 analysis: preference vs latency bottleneck.

The paper argues the measured drop reflects genuine *preference*, not just
users being mechanically rate-limited by latency: if activity were purely
bottlenecked, doubling the latency would halve the action rate (NLP would
drop by 2x per doubling); instead the observed drop factors are ~1.3 from
500→1000 ms and ~1.1 from 1000→2000 ms. It also points to the spread across
action types and user groups at the same latency as evidence of preference.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.base import FULL, ExperimentOutcome, Scale
from repro.core import AutoSens, AutoSensConfig
from repro.types import ActionType, UserClass
from repro.workload import owa_scenario


def run_bottleneck(seed: int = 11, scale: Scale = FULL, executor=None) -> ExperimentOutcome:
    """Quantify NLP drop factors per latency doubling (paper Section 3.5)."""
    result = owa_scenario(
        seed=seed,
        duration_days=scale.duration_days,
        n_users=scale.n_users,
        candidates_per_user_day=scale.candidates_per_user_day,
    ).generate()
    engine = AutoSens(AutoSensConfig(seed=seed), executor=executor)
    select_mail = engine.preference_curve(
        result.logs, action=ActionType.SELECT_MAIL, user_class=UserClass.BUSINESS
    )
    search = engine.preference_curve(
        result.logs, action=ActionType.SEARCH, user_class=UserClass.BUSINESS
    )

    nlp_500 = float(select_mail.at(500.0))
    nlp_1000 = float(select_mail.at(1000.0))
    nlp_2000 = float(select_mail.at(2000.0))
    factor_1 = nlp_500 / nlp_1000 if nlp_1000 > 0 else float("inf")
    factor_2 = nlp_1000 / nlp_2000 if nlp_2000 and nlp_2000 > 0 else float("nan")

    outcome = ExperimentOutcome(
        experiment_id="bottleneck",
        title="Latency preference vs latency bottleneck (Section 3.5)",
        description=(
            "If users were purely bottlenecked on latency, the NLP would "
            "halve with each doubling of latency (factor 2.0). The paper "
            "reports factors of ~1.3 (500->1000 ms) and ~1.1 (1000->2000 ms)."
        ),
    )
    outcome.add_table(
        "SelectMail NLP drop per latency doubling",
        ["transition", "NLP before", "NLP after", "drop factor", "pure-bottleneck factor"],
        [
            ["500 -> 1000 ms", nlp_500, nlp_1000, factor_1, 2.0],
            ["1000 -> 2000 ms", nlp_1000,
             None if np.isnan(nlp_2000) else nlp_2000,
             None if np.isnan(factor_2) else factor_2, 2.0],
        ],
    )
    same_latency = {
        "SelectMail": nlp_1000,
        "Search": float(search.at(1000.0)),
    }
    outcome.add_table(
        "Spread across action types at the same latency (1000 ms)",
        ["action", "NLP"],
        [[k, v] for k, v in same_latency.items()],
    )
    outcome.add_check(
        "drop factor per doubling well below 2 (preference, not bottleneck)",
        factor_1 < 1.7,
        f"500->1000 ms factor = {factor_1:.2f}",
    )
    outcome.add_check(
        "different actions differ at the same latency",
        abs(same_latency["SelectMail"] - same_latency["Search"]) > 0.05,
        f"SelectMail={same_latency['SelectMail']:.3f}, Search={same_latency['Search']:.3f}",
    )
    return outcome
