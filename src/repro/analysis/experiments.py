"""The experiment registry: every paper figure/table, runnable by id.

Experiments are also *resumable*: pass ``checkpoint_dir`` and every
completed sweep task (and each finished experiment outcome) is journaled to
disk through :class:`~repro.parallel.checkpoint.CheckpointJournal`. A rerun
after a crash serves journaled work from disk and computes only what is
missing — bit-identical to an uninterrupted run, because every task draws
its randomness purely from its payload.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import repro.obs as obs

from repro.analysis.base import FULL, SMALL, ExperimentOutcome, Scale
from repro.analysis.bottleneck import run_bottleneck
from repro.analysis.fig_locality import run_fig1, run_fig2
from repro.analysis.fig_methodology import run_fig3, run_table1
from repro.analysis.fig_preferences import run_fig4, run_fig5, run_fig6
from repro.analysis.fig_time import run_fig7, run_fig8, run_fig9
from repro.analysis.regions_ext import run_regions
from repro.analysis.sessions_ext import run_sessions
from repro.errors import ConfigError
from repro.parallel import (
    CheckpointJournal,
    ResilientExecutor,
    RetryPolicy,
    resolve_executor,
)
from repro.parallel.executor import ProcessExecutor
from repro.runtime.supervisor import Supervisor

#: Every experiment, in the paper's presentation order. Values take
#: ``(seed, scale)`` keyword arguments except table1 (deterministic).
EXPERIMENTS: Dict[str, Callable[..., ExperimentOutcome]] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "table1": lambda seed=0, scale=FULL: run_table1(),
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "bottleneck": run_bottleneck,
    "sessions": run_sessions,
    "regions": run_regions,
}


def _accepts_executor(driver: Callable[..., ExperimentOutcome]) -> bool:
    try:
        return "executor" in inspect.signature(driver).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False


def _resolve_scale(scale: Union[Scale, str]) -> Scale:
    if isinstance(scale, str):
        resolved = {"small": SMALL, "full": FULL}.get(scale)
        if resolved is None:
            raise ConfigError("scale must be 'small', 'full', or a Scale")
        return resolved
    return scale


def _experiment_manifest(
    experiment_id: str,
    seed: int | None,
    scale: Scale,
    manifest_out: Union[str, Path],
    cached: bool,
    supervisor: Optional[Supervisor] = None,
    health: Optional[Dict[str, object]] = None,
) -> Path:
    """Build and atomically write the run manifest next to the outputs."""
    ctx = obs.current()
    scale_fingerprint = (
        ("experiment", experiment_id),
        ("seed", seed),
        ("duration_days", scale.duration_days),
        ("n_users", scale.n_users),
        ("candidates_per_user_day", scale.candidates_per_user_day),
    )
    ingest_totals: Dict[str, object] = {}
    snapshot = ctx.metrics.snapshot() if ctx.enabled else {}
    rows = snapshot.get("autosens_ingest_rows_total", {}).get("series", {})
    if rows:
        ingest_totals["rows"] = rows
    extra: Dict[str, object] = {"outcome_cached": cached}
    if supervisor is not None and supervisor.enabled:
        extra["supervision"] = supervisor.summary()
    if health is not None:
        extra["health"] = health
    if ctx.enabled and ctx.tracer.enabled:
        span_timings = obs.aggregate_span_timings(ctx.tracer.finished())
        if span_timings:
            extra["span_timings"] = span_timings
    manifest = obs.build_manifest(
        experiment_id=experiment_id,
        seed=seed if seed is not None else -1,
        config_fingerprint=scale_fingerprint,
        degradations=ctx.degradations,
        ingest=ingest_totals,
        metrics=snapshot,
        deterministic=ctx.deterministic,
        extra=extra,
    )
    return obs.write_manifest(manifest, manifest_out)


def run_experiment(
    experiment_id: str,
    seed: int | None = None,
    scale: Scale | str = FULL,
    executor=None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retry: Optional[RetryPolicy] = None,
    manifest_out: Optional[Union[str, Path]] = None,
    supervisor: Optional[Supervisor] = None,
) -> ExperimentOutcome:
    """Run one experiment by id (e.g. ``"fig4"``).

    ``executor`` (see :mod:`repro.parallel`) is forwarded to drivers whose
    sweeps can fan out; drivers without an ``executor`` parameter run as
    before. Results are backend-independent either way.

    ``checkpoint_dir`` enables resume: each completed sweep task is
    journaled there as the driver runs, and the finished outcome itself is
    journaled too. A rerun with the same ``(experiment_id, seed, scale)``
    skips journaled work — an interrupted sweep continues where it
    stopped, bit-identical to a run that was never interrupted. ``retry``
    tunes the fault-tolerant re-execution of lost tasks (worker crashes).

    ``supervisor`` (a :class:`~repro.runtime.supervisor.Supervisor`) puts
    the whole run under supervision: its deadline becomes ambient for
    every cooperative checkpoint, its watchdog supervises process-backend
    workers, its circuit breaker guards the resilient recovery path, and
    its memory governor bounds sweep working sets. Everything supervision
    sheds, trips, kills or spills lands in the run manifest under
    ``extra.supervision`` plus the regular degradations list.

    The run is wrapped in one root span per experiment, and with
    ``manifest_out`` a provenance manifest (seed, config fingerprint,
    versions, degradations, metric totals) is written atomically there
    after the outcome lands — see :mod:`repro.obs.manifest`.
    """
    if experiment_id not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        )
    scale = _resolve_scale(scale)
    driver = EXPERIMENTS[experiment_id]

    with obs.span("experiment", key=f"experiment:{experiment_id}:{seed}",
                  experiment=experiment_id, seed=seed) as root:
        journal: Optional[CheckpointJournal] = None
        outcome_key: Optional[str] = None
        cached_hit = False
        outcome: Optional[ExperimentOutcome] = None
        if checkpoint_dir is not None:
            namespace = (
                f"{experiment_id}/seed={seed}/"
                f"scale={scale.duration_days}d-{scale.n_users}u-"
                f"{scale.candidates_per_user_day}c"
            )
            journal = CheckpointJournal(checkpoint_dir, namespace=namespace)
            outcome_key = journal.key_for("outcome")
            hit, cached = journal.fetch(outcome_key)
            if hit:
                cached_hit = True
                outcome = cached
                root.set(cached=True)
                obs.inc("autosens_checkpoint_total", outcome="outcome-hit")

        if outcome is None:
            if executor is not None or supervisor is not None:
                executor = resolve_executor(executor)
            if (supervisor is not None and supervisor.watchdog is not None
                    and isinstance(executor, ProcessExecutor)
                    and executor.watchdog is None):
                executor.watchdog = supervisor.watchdog
            if journal is not None or retry is not None:
                executor = ResilientExecutor(
                    inner=executor if executor is not None
                    else resolve_executor(None),
                    retry=retry,
                    checkpoint=journal,
                    breaker=supervisor.breaker if supervisor is not None
                    else None,
                )

            kwargs = {}
            if seed is not None:
                kwargs["seed"] = seed
            kwargs["scale"] = scale
            if executor is not None and _accepts_executor(driver):
                kwargs["executor"] = executor
            if supervisor is not None:
                with supervisor.scope():
                    outcome = driver(**kwargs)
            else:
                outcome = driver(**kwargs)
            if journal is not None:
                journal.put(outcome_key, outcome)

    health: Optional[Dict[str, object]] = None
    if obs.current().enabled:
        health = obs.build_health_report().to_dict()
        # Attribute defensively: cached outcomes may predate the field.
        try:
            outcome.health = health
        except AttributeError:  # pragma: no cover - frozen/odd outcome types
            pass
    if manifest_out is not None:
        _experiment_manifest(experiment_id, seed, scale, manifest_out,
                             cached=cached_hit, supervisor=supervisor,
                             health=health)
    return outcome


def run_all(
    seed: int | None = None,
    scale: Scale | str = FULL,
    executor=None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retry: Optional[RetryPolicy] = None,
) -> List[ExperimentOutcome]:
    """Run every registered experiment in order (resumable per experiment)."""
    return [
        run_experiment(
            eid, seed=seed, scale=scale, executor=executor,
            checkpoint_dir=checkpoint_dir, retry=retry,
        )
        for eid in EXPERIMENTS
    ]
