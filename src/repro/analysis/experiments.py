"""The experiment registry: every paper figure/table, runnable by id."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from repro.analysis.base import FULL, SMALL, ExperimentOutcome, Scale
from repro.analysis.bottleneck import run_bottleneck
from repro.analysis.fig_locality import run_fig1, run_fig2
from repro.analysis.fig_methodology import run_fig3, run_table1
from repro.analysis.fig_preferences import run_fig4, run_fig5, run_fig6
from repro.analysis.fig_time import run_fig7, run_fig8, run_fig9
from repro.analysis.regions_ext import run_regions
from repro.analysis.sessions_ext import run_sessions
from repro.errors import ConfigError

#: Every experiment, in the paper's presentation order. Values take
#: ``(seed, scale)`` keyword arguments except table1 (deterministic).
EXPERIMENTS: Dict[str, Callable[..., ExperimentOutcome]] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "table1": lambda seed=0, scale=FULL: run_table1(),
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "bottleneck": run_bottleneck,
    "sessions": run_sessions,
    "regions": run_regions,
}


def _accepts_executor(driver: Callable[..., ExperimentOutcome]) -> bool:
    try:
        return "executor" in inspect.signature(driver).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False


def run_experiment(
    experiment_id: str,
    seed: int | None = None,
    scale: Scale | str = FULL,
    executor=None,
) -> ExperimentOutcome:
    """Run one experiment by id (e.g. ``"fig4"``).

    ``executor`` (see :mod:`repro.parallel`) is forwarded to drivers whose
    sweeps can fan out; drivers without an ``executor`` parameter run as
    before. Results are backend-independent either way.
    """
    if experiment_id not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        )
    if isinstance(scale, str):
        scale = {"small": SMALL, "full": FULL}.get(scale)
        if scale is None:
            raise ConfigError("scale must be 'small', 'full', or a Scale")
    driver = EXPERIMENTS[experiment_id]
    kwargs = {}
    if seed is not None:
        kwargs["seed"] = seed
    kwargs["scale"] = scale
    if executor is not None and _accepts_executor(driver):
        kwargs["executor"] = executor
    return driver(**kwargs)


def run_all(
    seed: int | None = None,
    scale: Scale | str = FULL,
    executor=None,
) -> List[ExperimentOutcome]:
    """Run every registered experiment in order."""
    return [
        run_experiment(eid, seed=seed, scale=scale, executor=executor)
        for eid in EXPERIMENTS
    ]
