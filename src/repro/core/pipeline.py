"""The end-to-end AutoSens pipeline.

:class:`AutoSens` ties the pieces together exactly as the paper describes:

1. slice the telemetry (action type, user class, period, month — the
   content and conditioning confounders are handled by segregation);
2. mitigate the time confounder by estimating the per-slot activity factor
   α and normalizing counts (Section 2.4.1), averaging over several
   reference slots;
3. build the biased (B) and unbiased (U) latency distributions on a shared
   10 ms grid (Section 2.2);
4. compute, smooth and normalize the preference ratio B/U into the
   normalized latency preference curve (Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    EmptyDataError,
    InsufficientDataError,
)
from repro.parallel import SerialExecutor, resolve_executor
from repro.runtime.deadline import check_deadline
from repro.runtime.memory import estimate_counts_bytes, estimate_nbytes
from repro.runtime.supervisor import active_supervisor
from repro.stats.histogram import Histogram1D, HistogramBins, latency_bins
from repro.stats.rng import RngFactory, SeedLike
from repro.core.alpha import (
    AlphaEstimate,
    alpha_from_counts,
    corrected_histograms_from_counts,
    slotted_counts,
)
from repro.core.slice_cache import SliceCache
from repro.core.biased import biased_histogram
from repro.core.locality import (
    DensityLatencySeries,
    density_latency_series,
    locality_report,
)
from repro.core.preference import PreferenceComputer, average_results
from repro.core.quartiles import QUARTILE_NAMES, assign_quartiles, quartile_slices
from repro.core.result import PreferenceResult
from repro.core.unbiased import unbiased_histogram
from repro.stats.msd import LocalityComparison
from repro.telemetry.log_store import LogStore
from repro.types import ALL_DAY_PERIODS, ActionType, DayPeriod, UserClass


@dataclass(frozen=True)
class AutoSensConfig:
    """All methodology knobs, defaulting to the paper's choices."""

    max_latency_ms: float = 3000.0
    bin_width_ms: float = 10.0
    smoothing_window: int = 101
    smoothing_degree: int = 3
    reference_ms: float = 300.0
    min_unbiased_count: float = 40.0
    unbiased_oversample: float = 3.0
    time_correction: bool = True
    #: 'sampling' = the paper's Monte Carlo unbiased draw;
    #: 'voronoi' = its deterministic infinite-draw limit.
    unbiased_estimator: str = "sampling"
    #: Time shards for the sampling U-estimator (1 = one stratum). Results
    #: depend on the value (stratified draw) but never on the executor
    #: backend that runs the shards.
    unbiased_shards: int = 1
    slot_scheme: str = "hour-of-day"
    n_reference_slots: int = 3
    alpha_bin_average: str = "simple"
    alpha_min_bin_count: float = 5.0
    min_actions: int = 200
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_reference_slots < 1:
            raise ConfigError(
                f"n_reference_slots must be >= 1, got {self.n_reference_slots}"
            )
        if self.unbiased_oversample <= 0:
            raise ConfigError(
                f"unbiased_oversample must be positive, got {self.unbiased_oversample}"
            )
        if self.unbiased_estimator not in ("sampling", "voronoi"):
            raise ConfigError(
                "unbiased_estimator must be 'sampling' or 'voronoi', "
                f"got {self.unbiased_estimator!r}"
            )
        if self.unbiased_shards < 1:
            raise ConfigError(
                f"unbiased_shards must be >= 1, got {self.unbiased_shards}"
            )

    def bins(self) -> HistogramBins:
        return latency_bins(self.max_latency_ms, self.bin_width_ms)

    def fingerprint(self) -> Tuple:
        """Hashable identity of every methodology knob.

        Used as a :class:`~repro.core.slice_cache.SliceCache` key component
        so cached intermediates are never reused across configs that would
        compute them differently.
        """
        return tuple((f.name, getattr(self, f.name)) for f in fields(self))

    def computer(self) -> PreferenceComputer:
        return PreferenceComputer(
            smoothing_window=self.smoothing_window,
            smoothing_degree=self.smoothing_degree,
            reference_ms=self.reference_ms,
            min_unbiased_count=self.min_unbiased_count,
        )


def _slice_key(
    action: Any,
    user_class: Any,
    period: Optional[DayPeriod],
    month: Optional[int],
    days_per_month: int,
) -> Tuple:
    """Normalize a slice predicate to a hashable cache-key tuple."""

    def norm(value: Any) -> Optional[str]:
        if value is None:
            return None
        if isinstance(value, (ActionType, UserClass, DayPeriod)):
            return str(value.value)
        return str(value)

    return (norm(action), norm(user_class), norm(period), month, days_per_month)


@dataclass(frozen=True)
class DegradePolicy:
    """What to do when part of a sweep is starved of data.

    The strict default (no policy) fails the whole multi-minute sweep on
    the first :class:`InsufficientDataError`. Under a degrade policy the
    pipeline instead *narrows* the answer and records what it dropped:

    - ``on_starved_slice="skip"`` — a sweep slice (one action type, one
      user class, one period...) below ``min_actions`` is dropped from the
      result dict with a recorded warning instead of aborting the sweep.
    - ``on_starved_reference="skip"`` — a reference slot whose corrected
      histograms cannot support a curve is dropped; the remaining
      references are averaged as long as at least ``min_references``
      survive.
    - ``on_over_budget="shed"`` — when an ambient supervised deadline
      (see :mod:`repro.runtime`) expires mid-sweep, the not-yet-computed
      slices are *shed* (dropped with a recorded ``deadline_exceeded``
      degradation) and the sweep returns the slices it finished in time;
      ``"raise"`` instead propagates
      :class:`~repro.errors.DeadlineExceededError`. Without a supervised
      deadline this knob is inert.

    Warnings accumulate on :attr:`AutoSens.degradations` (and per-curve in
    ``result.metadata["degradations"]``) — degradation is always visible,
    never silent.
    """

    on_starved_slice: str = "skip"
    on_starved_reference: str = "skip"
    min_references: int = 1
    on_over_budget: str = "shed"

    def __post_init__(self) -> None:
        for name in ("on_starved_slice", "on_starved_reference"):
            value = getattr(self, name)
            if value not in ("raise", "skip"):
                raise ConfigError(f"{name} must be 'raise' or 'skip', got {value!r}")
        if self.min_references < 1:
            raise ConfigError(
                f"min_references must be >= 1, got {self.min_references}"
            )
        if self.on_over_budget not in ("raise", "shed"):
            raise ConfigError(
                f"on_over_budget must be 'raise' or 'shed', "
                f"got {self.on_over_budget!r}"
            )


@dataclass(frozen=True)
class SubsamplePolicy:
    """Deterministic probe/user/time subsampling, applied after slicing.

    The sensitivity suite's "reduced probing" axis: keep a random fraction
    of events, of users, or of coarse time windows before estimating the
    curve, to measure how much telemetry the estimator actually needs.

    - ``event_fraction`` — Bernoulli keep per event (probe subsampling).
    - ``user_fraction`` — keep whole users: a user is either fully present
      or fully absent, the honest model of per-device sampling flags.
    - ``time_fraction`` — keep whole time windows (``n_time_windows``
      equal spans over the slice's range), the model of a collector that
      is simply off for part of the day.

    Determinism contract: the draws come from a pure stream named only by
    the slice (``subsample/{description}``) and are made in a fixed order
    and count regardless of which fractions are active, so changing one
    fraction never moves another axis's draws and the kept sets are
    monotone nested across a fraction ladder (1 ⊇ 1/2 ⊇ 1/4 ⊇ 1/8).
    Fractions of exactly 1.0 on every axis make the policy a no-op: the
    pipeline skips the hook entirely and touches no randomness.

    A subsampled run always records an obs degradation — reduced probing
    is never silent. If the kept set falls below ``min_actions`` the slice
    raises :class:`InsufficientDataError` like any other starved slice
    (and degrades gracefully under a :class:`DegradePolicy`).
    """

    event_fraction: float = 1.0
    user_fraction: float = 1.0
    time_fraction: float = 1.0
    n_time_windows: int = 32

    def __post_init__(self) -> None:
        for name in ("event_fraction", "user_fraction", "time_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {value}")
        if self.n_time_windows < 1:
            raise ConfigError(
                f"n_time_windows must be >= 1, got {self.n_time_windows}"
            )

    @property
    def is_active(self) -> bool:
        return (
            self.event_fraction < 1.0
            or self.user_fraction < 1.0
            or self.time_fraction < 1.0
        )

    def fingerprint(self) -> Tuple:
        return (
            self.event_fraction, self.user_fraction,
            self.time_fraction, self.n_time_windows,
        )

    def describe(self) -> str:
        return (
            f"events x{self.event_fraction:g}, users x{self.user_fraction:g}, "
            f"time x{self.time_fraction:g}"
        )


@dataclass(frozen=True)
class _StarvedSlice:
    """Picklable marker a worker returns for a skipped (degraded) slice."""

    reason: str


@dataclass(frozen=True)
class _ShedSlice:
    """Marker for a sweep slice shed by the supervisor (never computed)."""

    reason: str


def _curve_task(payload: Tuple) -> Any:
    """Top-level (picklable) sweep task: one preference curve per item.

    Workers rebuild the engine from the config alone; because the pipeline
    draws its randomness from pure named streams, a fresh engine in another
    process produces bit-identical results to the serial path. Under a
    degrade policy a starved slice comes back as a :class:`_StarvedSlice`
    marker rather than an exception, so one empty slice cannot fail the
    pool fan-out.
    """
    config, degrade, subsample, logs, kwargs = payload
    engine = AutoSens(config, cache=False, degrade=degrade, subsample=subsample)
    try:
        return engine.preference_curve(logs, **kwargs)
    except InsufficientDataError as exc:
        if degrade is not None and degrade.on_starved_slice == "skip":
            return _StarvedSlice(str(exc))
        raise


class AutoSens:
    """The AutoSens analysis engine.

    >>> engine = AutoSens()
    >>> curve = engine.preference_curve(logs, action="SelectMail")
    >>> curve.at(1000.0)    # e.g. 0.68: 32 % less activity than at 300 ms

    ``executor`` selects how the ``curves_by_*`` sweeps fan out
    (``None``/``"serial"``, ``"process"``, a worker count, or any object
    with ``map_ordered`` — see :mod:`repro.parallel`). ``cache`` enables
    memoization of per-slice intermediates (pass a
    :class:`~repro.core.slice_cache.SliceCache` to share one across
    engines, or ``False`` to disable). Both are pure plumbing: every
    combination yields bit-identical results.

    ``degrade`` (a :class:`DegradePolicy`) turns sweep-level
    :class:`InsufficientDataError` aborts into recorded warnings: starved
    slices are dropped from sweep results and starved reference slots are
    skipped, with every degradation appended to :attr:`degradations`.

    ``subsample`` (a :class:`SubsamplePolicy`) deterministically thins
    each slice (per-event, per-user, and/or per-time-window fractions)
    before estimation, always recording an obs degradation — the
    sensitivity suite's reduced-probing axis.
    """

    def __init__(
        self,
        config: Optional[AutoSensConfig] = None,
        executor: Any = None,
        cache: Union[bool, SliceCache] = True,
        degrade: Optional[DegradePolicy] = None,
        subsample: Optional[SubsamplePolicy] = None,
    ) -> None:
        self.config = config or AutoSensConfig()
        self._rng = RngFactory(self.config.seed)
        self.executor = resolve_executor(executor)
        self.degrade = degrade
        self.subsample = subsample
        #: Human-readable log of everything a degrade policy dropped.
        self.degradations: List[str] = []
        if cache is True:
            self._cache: Optional[SliceCache] = SliceCache()
        elif cache is False or cache is None:
            self._cache = None
        else:
            self._cache = cache

    @property
    def cache(self) -> Optional[SliceCache]:
        """The engine's slice cache (``None`` when caching is disabled)."""
        return self._cache

    def cache_stats(self) -> Dict[str, int]:
        """Slice-cache hit/miss/eviction counters (all zero when disabled).

        Readable without the metrics registry — sweep drivers and tests can
        assert cache behavior directly off the engine.
        """
        if self._cache is None:
            return {"hits": 0, "misses": 0, "evictions": 0,
                    "entries": 0, "max_entries": 0}
        return self._cache.stats()

    def _memo(self, kind: str, logs: LogStore, key: Tuple, compute: Callable[[], Any]) -> Any:
        if self._cache is None:
            return compute()
        full_key = (kind, self._cache.token(logs), key, self.config.fingerprint())
        return self._cache.get_or_compute(full_key, compute)

    # -- slicing ------------------------------------------------------------

    def _slice(
        self,
        logs: LogStore,
        action: Union[str, ActionType, None] = None,
        user_class: Union[str, UserClass, None] = None,
        period: Optional[DayPeriod] = None,
        month: Optional[int] = None,
        days_per_month: int = 30,
    ) -> tuple:
        key = _slice_key(action, user_class, period, month, days_per_month)
        with obs.span("slice", predicate=str(key)):
            sliced = self._memo(
                "slice", logs, key,
                lambda: logs.where(
                    action=action,
                    user_class=user_class,
                    period=period,
                    month=month,
                    days_per_month=days_per_month,
                ),
            )
        parts = []
        if action is not None:
            parts.append(f"action={action}")
        if user_class is not None:
            parts.append(f"class={user_class}")
        if period is not None:
            parts.append(f"period={period.value}")
        if month is not None:
            parts.append(f"month={month}")
        description = ", ".join(parts) if parts else "all actions"
        if len(sliced) < self.config.min_actions:
            raise InsufficientDataError(
                f"slice [{description}] has {len(sliced)} actions; "
                f"need at least {self.config.min_actions}"
            )
        return sliced, description

    def _apply_subsample(
        self, sliced: LogStore, description: str, key: Tuple
    ) -> Tuple[LogStore, Tuple]:
        """Apply the engine's :class:`SubsamplePolicy` to a sliced store.

        Returns the kept store and the memo key extended with the policy
        fingerprint (so cached intermediates are never shared between
        subsampled and full evaluations of the same slice).
        """
        policy = self.subsample
        stream = self._rng.stream(f"subsample/{description}")
        n = len(sliced)
        # Fixed draw order and counts whatever the fractions: per-event,
        # then per-user, then per-window. Fractions are compared against
        # the same draws at every level, so kept sets nest monotonically.
        u_event = stream.random(n)
        user_codes, _ = sliced.per_user_action_count()
        u_user = stream.random(user_codes.size)
        u_window = stream.random(policy.n_time_windows)
        mask = u_event < policy.event_fraction
        if policy.user_fraction < 1.0:
            kept_users = user_codes[u_user < policy.user_fraction]
            mask &= np.isin(sliced.user_codes, kept_users)
        if policy.time_fraction < 1.0:
            t0 = float(sliced.times.min())
            span = max(float(sliced.times.max()) - t0, 1e-9)
            windows = np.minimum(
                ((sliced.times - t0) / span * policy.n_time_windows).astype(int),
                policy.n_time_windows - 1,
            )
            mask &= (u_window < policy.time_fraction)[windows]
        kept = sliced.filter(mask)
        note = (
            f"slice [{description}] subsampled ({policy.describe()}): "
            f"kept {len(kept)} of {n} actions"
        )
        self.degradations.append(note)
        obs.record_degradation(
            "subsample", slice=description,
            event_fraction=policy.event_fraction,
            user_fraction=policy.user_fraction,
            time_fraction=policy.time_fraction,
            n_before=n, n_kept=len(kept),
        )
        if len(kept) < self.config.min_actions:
            raise InsufficientDataError(
                f"slice [{description}] has {len(kept)} actions after "
                f"subsampling ({policy.describe()}); need at least "
                f"{self.config.min_actions}"
            )
        return kept, key + (("subsample",) + policy.fingerprint(),)

    # -- distributions --------------------------------------------------------

    def distributions(
        self,
        logs: LogStore,
        rng: SeedLike = None,
    ) -> tuple:
        """(B, U) for already-sliced logs, honoring the time correction."""
        cfg = self.config
        bins = cfg.bins()
        generator = rng if rng is not None else self._rng.child("distributions")
        n_unbiased = int(np.ceil(cfg.unbiased_oversample * len(logs)))
        if not cfg.time_correction:
            biased = biased_histogram(logs, bins)
            unbiased = unbiased_histogram(
                logs, bins, n_samples=n_unbiased, rng=generator,
                estimator=cfg.unbiased_estimator,
            )
            return biased, unbiased
        counts = slotted_counts(
            logs, bins, scheme=cfg.slot_scheme,
            n_unbiased_samples=n_unbiased, rng=generator,
            estimator=cfg.unbiased_estimator,
            n_shards=cfg.unbiased_shards, executor=self.executor,
        )
        alpha = alpha_from_counts(
            counts,
            bin_average=cfg.alpha_bin_average,
            min_bin_count=cfg.alpha_min_bin_count,
        )
        return corrected_histograms_from_counts(counts, alpha)

    # -- the main entry point ---------------------------------------------------

    def preference_curve(
        self,
        logs: LogStore,
        action: Union[str, ActionType, None] = None,
        user_class: Union[str, UserClass, None] = None,
        period: Optional[DayPeriod] = None,
        month: Optional[int] = None,
        days_per_month: int = 30,
    ) -> PreferenceResult:
        """Compute the normalized latency preference for a telemetry slice."""
        cfg = self.config
        key = _slice_key(action, user_class, period, month, days_per_month)
        with obs.span("preference_curve", key=f"curve:{key}") as curve_span:
            result = self._preference_curve_inner(
                logs, key, action, user_class, period, month,
                days_per_month, curve_span,
            )
        return result

    def _preference_curve_inner(
        self,
        logs: LogStore,
        key: Tuple,
        action: Union[str, ActionType, None],
        user_class: Union[str, UserClass, None],
        period: Optional[DayPeriod],
        month: Optional[int],
        days_per_month: int,
        curve_span: Any,
    ) -> PreferenceResult:
        cfg = self.config
        sliced, description = self._slice(
            logs, action, user_class, period, month, days_per_month
        )
        if self.subsample is not None and self.subsample.is_active:
            sliced, key = self._apply_subsample(sliced, description, key)
        curve_span.set(slice=description, n_actions=len(sliced))
        check_deadline(f"curve [{description}]")
        bins = cfg.bins()
        computer = cfg.computer()
        n_unbiased = int(np.ceil(cfg.unbiased_oversample * len(sliced)))
        supervisor = active_supervisor()
        if supervisor is not None and supervisor.memory is not None:
            # Admission control: refuse a slice whose working set cannot
            # fit the hard budget at all, before the expensive pass runs.
            supervisor.memory.admit(
                estimate_counts_bytes(
                    len(sliced), bins.count,
                    oversample=cfg.unbiased_oversample,
                ),
                what=f"slice [{description}]",
            )
        # A *pure* stream keyed by the slice: serial, process-pool and cached
        # evaluations of the same slice all see identical randomness.
        make_rng = lambda: self._rng.stream(f"curve/{description}")

        if not cfg.time_correction:
            def compute_plain() -> Tuple[Histogram1D, Histogram1D]:
                biased = biased_histogram(sliced, bins)
                unbiased = unbiased_histogram(
                    sliced, bins, n_samples=n_unbiased, rng=make_rng(),
                    estimator=cfg.unbiased_estimator,
                )
                return biased, unbiased

            biased, unbiased = self._memo("histograms", logs, key, compute_plain)
            return computer.compute(
                biased, unbiased,
                slice_description=description, n_actions=len(sliced),
            )

        # The expensive part — one pass over the actions plus the unbiased
        # draw — happens exactly once per slice; every reference slot below
        # is then an O(n_slots × n_bins) contraction of the tensor.
        with obs.span("slotted_counts", n_actions=len(sliced)):
            counts = self._memo(
                "counts", logs, key,
                lambda: slotted_counts(
                    sliced, bins, scheme=cfg.slot_scheme,
                    n_unbiased_samples=n_unbiased, rng=make_rng(),
                    estimator=cfg.unbiased_estimator,
                    n_shards=cfg.unbiased_shards, executor=self.executor,
                ),
            )
        references = counts.busiest_slots(cfg.n_reference_slots)
        skip_references = (
            self.degrade is not None
            and self.degrade.on_starved_reference == "skip"
        )
        per_reference = []
        used_references = []
        degraded: List[str] = []
        for reference in references:
            check_deadline(f"reference slot {int(reference)} [{description}]")
            try:
                with obs.span("corrected_reference", slot=int(reference)):
                    alpha = alpha_from_counts(
                        counts,
                        reference_slot=reference,
                        bin_average=cfg.alpha_bin_average,
                        min_bin_count=cfg.alpha_min_bin_count,
                    )
                    biased, unbiased = corrected_histograms_from_counts(counts, alpha)
                    per_reference.append(
                        computer.compute(
                            biased, unbiased,
                            slice_description=description, n_actions=len(sliced),
                        )
                    )
                used_references.append(reference)
            except InsufficientDataError as exc:
                if not skip_references:
                    raise
                degraded.append(
                    f"slice [{description}]: reference slot {reference} "
                    f"skipped ({exc})"
                )
                obs.record_degradation(
                    "starved_reference", slice=description,
                    reference_slot=int(reference), detail=str(exc))
        if skip_references and len(per_reference) < self.degrade.min_references:
            raise InsufficientDataError(
                f"slice [{description}]: only {len(per_reference)} of "
                f"{len(references)} reference slots usable; need at least "
                f"{self.degrade.min_references}"
            )
        self.degradations.extend(degraded)
        if obs.current().enabled:
            from repro.obs import probes

            probes.emit(probes.probe_slot_support(
                n_slots=int(counts.slot_ids.size),
                n_reference_slots=len(references),
                n_used_references=len(used_references),
                slice_description=description,
            ))
            probes.emit(probes.probe_latency_regime(
                counts.biased_counts, bins.centers,
                slice_description=description,
            ))
        result = average_results(per_reference, slice_description=description)
        result.metadata["reference_slots"] = used_references
        if degraded:
            result.metadata["degradations"] = degraded
        return result

    # -- segmentations (the paper's figures) ------------------------------------

    def _sweep(self, tasks: List[Tuple[LogStore, Dict[str, Any]]]) -> List[Optional[PreferenceResult]]:
        """Fan a list of ``(logs, preference_curve kwargs)`` over the executor.

        The serial backend runs through ``self`` (sharing the slice cache);
        other backends ship ``(config, degrade, subsample, logs, kwargs)``
        payloads to
        :func:`_curve_task` workers. Pure stream seeding makes the two
        paths bit-identical.

        Under a degrade policy with ``on_starved_slice="skip"`` a starved
        slice yields ``None`` (with the reason recorded on
        :attr:`degradations`) instead of aborting the sweep; the
        ``curves_by_*`` wrappers drop those entries from their result
        dicts.

        Inside an entered :class:`~repro.runtime.supervisor.Supervisor`
        scope the sweep additionally honors the supervision concerns:
        slices that cannot run before the deadline are *shed* (recorded as
        ``deadline_exceeded`` degradations) rather than computed, the
        memory governor bounds how many working sets run concurrently and
        spills completed results past its soft limit, and per-slice
        randomness stays pure — so the slices that do complete are
        bit-identical to an unsupervised run's.
        """
        skip_slices = (
            self.degrade is not None and self.degrade.on_starved_slice == "skip"
        )
        supervisor = active_supervisor()
        with obs.span("sweep", n_tasks=len(tasks),
                      backend=type(self.executor).__name__):
            if supervisor is not None and supervisor.enabled:
                results = self._sweep_supervised(tasks, supervisor, skip_slices)
            elif isinstance(self.executor, SerialExecutor):
                results: List[Any] = []
                for lg, kw in tasks:
                    try:
                        results.append(self.preference_curve(lg, **kw))
                    except InsufficientDataError as exc:
                        if not skip_slices:
                            raise
                        results.append(_StarvedSlice(str(exc)))
            else:
                payloads = [
                    (self.config, self.degrade, self.subsample, lg, kw)
                    for lg, kw in tasks
                ]
                results = self.executor.map_ordered(_curve_task, payloads)
        out: List[Optional[PreferenceResult]] = []
        for result in results:
            if isinstance(result, _StarvedSlice):
                self.degradations.append(f"slice skipped: {result.reason}")
                obs.record_degradation("starved_slice", detail=result.reason)
                out.append(None)
            elif isinstance(result, _ShedSlice):
                # The degradation was recorded by the supervisor when the
                # slice was shed; keep the local human-readable log too.
                self.degradations.append(f"slice shed: {result.reason}")
                out.append(None)
            else:
                out.append(result)
        return out

    def _sweep_supervised(
        self,
        tasks: List[Tuple[LogStore, Dict[str, Any]]],
        supervisor: Any,
        skip_slices: bool,
    ) -> List[Any]:
        """The sweep loop under an entered supervisor scope.

        Tasks run in bounded *waves* (the memory governor's admission
        decides how many working sets may be live at once; without a
        governor one wave holds everything). Between tasks and waves the
        deadline is consulted: once over budget the remaining slices are
        shed under ``on_over_budget="shed"`` (the default, also used when
        no degrade policy is set) or the sweep raises under ``"raise"``.
        Completed results are accounted to the governor, which spills the
        least-recently-finished ones to disk past its soft limit; spilled
        results reload bit-identically before the sweep returns.
        """
        cfg = self.config
        deadline = supervisor.deadline
        governor = supervisor.memory
        shed_over_budget = (
            self.degrade is None or self.degrade.on_over_budget == "shed"
        )

        def over_budget() -> bool:
            if deadline is None or not deadline.expired():
                return False
            if not shed_over_budget:
                deadline.check("sweep")  # raises DeadlineExceededError
            return True

        def shed(idx: int) -> _ShedSlice:
            reason = (
                f"sweep task {idx} shed: deadline of "
                f"{deadline.budget_s:.4g}s exceeded after "
                f"{deadline.elapsed():.4g}s"
            )
            supervisor.shed("deadline_exceeded", task=idx, detail=reason)
            return _ShedSlice(reason)

        n_tasks = len(tasks)
        wave_size = n_tasks
        if governor is not None and n_tasks:
            per_task = max(
                estimate_counts_bytes(
                    len(lg), cfg.bins().count,
                    oversample=cfg.unbiased_oversample,
                )
                for lg, _ in tasks
            )
            wave_size = governor.max_concurrent(per_task, n_tasks)

        serial = isinstance(self.executor, SerialExecutor)
        results: List[Any] = []
        for start in range(0, n_tasks, max(1, wave_size)):
            wave = tasks[start:start + max(1, wave_size)]
            if over_budget():
                results.extend(shed(start + j) for j in range(len(wave)))
                continue
            if serial:
                for j, (lg, kw) in enumerate(wave):
                    if over_budget():
                        results.append(shed(start + j))
                        continue
                    try:
                        results.append(self.preference_curve(lg, **kw))
                    except InsufficientDataError as exc:
                        if not skip_slices:
                            raise
                        results.append(_StarvedSlice(str(exc)))
            else:
                payloads = [
                    (self.config, self.degrade, self.subsample, lg, kw)
                    for lg, kw in wave
                ]
                try:
                    results.extend(
                        self.executor.map_ordered(_curve_task, payloads)
                    )
                except DeadlineExceededError:
                    if not shed_over_budget:
                        raise
                    # The pool-side wait ran out mid-wave; shed the wave
                    # whole — partial pool results are not recoverable
                    # without exceeding the budget further.
                    results.extend(shed(start + j) for j in range(len(wave)))
            if governor is not None:
                for j in range(start, min(start + len(wave), len(results))):
                    value = results[j]
                    if value is None or isinstance(
                        value, (_StarvedSlice, _ShedSlice)
                    ):
                        continue
                    governor.hold(
                        ("sweep", j), value, nbytes=estimate_nbytes(value)
                    )
        if governor is not None:
            # Reload anything the governor spilled (pickled NumPy arrays
            # round-trip bit-identically) and release the sweep's keys so
            # consecutive sweeps never accumulate accounting state.
            for idx in range(len(results)):
                hit, value = governor.fetch(("sweep", idx))
                if hit:
                    results[idx] = value
                governor.release(("sweep", idx))
        return results

    def curves_by_action(
        self,
        logs: LogStore,
        actions: Optional[List] = None,
        user_class: Union[str, UserClass, None] = None,
    ) -> Dict[str, PreferenceResult]:
        """Figure 4: one curve per action type."""
        names = actions if actions is not None else logs.action_names()
        keys = [name.value if isinstance(name, ActionType) else str(name) for name in names]
        curves = self._sweep(
            [(logs, {"action": key, "user_class": user_class}) for key in keys]
        )
        return {k: c for k, c in zip(keys, curves) if c is not None}

    def curves_by_user_class(
        self,
        logs: LogStore,
        action: Union[str, ActionType, None] = None,
    ) -> Dict[str, PreferenceResult]:
        """Figure 5: one curve per subscription class."""
        names = [name for name in logs.class_names() if name]
        curves = self._sweep(
            [(logs, {"action": action, "user_class": name}) for name in names]
        )
        return {n: c for n, c in zip(names, curves) if c is not None}

    def curves_by_quartile(
        self,
        logs: LogStore,
        action: Union[str, ActionType, None] = None,
        min_actions_per_user: int = 5,
    ) -> Dict[str, PreferenceResult]:
        """Figure 6: one curve per median-latency quartile.

        Quartiles are assigned from the *full* slice (all hours) before the
        per-quartile curves are computed.
        """
        base = logs.where(action=action) if action is not None else logs.successful()
        assignment = assign_quartiles(base, min_actions_per_user=min_actions_per_user)
        slices = quartile_slices(base, assignment)
        curves = self._sweep([(slices[name], {}) for name in QUARTILE_NAMES])
        out: Dict[str, PreferenceResult] = {}
        for name, curve in zip(QUARTILE_NAMES, curves):
            if curve is None:
                continue
            curve.slice_description = f"quartile={name}" + (
                f", action={action}" if action is not None else ""
            )
            out[name] = curve
        return out

    def curves_by_period(
        self,
        logs: LogStore,
        action: Union[str, ActionType, None] = None,
        user_class: Union[str, UserClass, None] = None,
    ) -> Dict[str, PreferenceResult]:
        """Figure 7: one curve per six-hour local-time period.

        Within a single period the hour-of-day α correction still applies
        across the period's hours.
        """
        curves = self._sweep(
            [
                (logs, {"action": action, "user_class": user_class, "period": period})
                for period in ALL_DAY_PERIODS
            ]
        )
        return {
            period.value: curve
            for period, curve in zip(ALL_DAY_PERIODS, curves)
            if curve is not None
        }

    def curves_by_month(
        self,
        logs: LogStore,
        action: Union[str, ActionType, None] = None,
        months: Optional[List[int]] = None,
        days_per_month: int = 30,
    ) -> Dict[int, PreferenceResult]:
        """Figure 9: one curve per synthetic month."""
        if months is None:
            from repro.telemetry import timeutil

            months = sorted(
                int(m) for m in np.unique(timeutil.month_index(logs.times, days_per_month))
            )
        curves = self._sweep(
            [
                (logs, {"action": action, "month": m, "days_per_month": days_per_month})
                for m in months
            ]
        )
        return {m: c for m, c in zip(months, curves) if c is not None}

    # -- diagnostics --------------------------------------------------------------

    def locality(self, logs: LogStore) -> LocalityComparison:
        """Figure 1: the MSD/MAD locality comparison."""
        return locality_report(logs, rng=self._rng.child("locality"))

    def density_series(
        self, logs: LogStore, window_seconds: float = 60.0
    ) -> DensityLatencySeries:
        """Figure 2: windowed activity-vs-latency series."""
        return density_latency_series(logs, window_seconds=window_seconds)

    def alpha_profile(
        self,
        logs: LogStore,
        scheme: str = "period",
        reference_slot: Optional[int] = None,
        action: Union[str, ActionType, None] = None,
        user_class: Union[str, UserClass, None] = None,
    ) -> AlphaEstimate:
        """Figure 8: the α estimate itself (defaults to the 4-period scheme,
        reference slot 0 = the 8am-2pm period)."""
        sliced, _ = self._slice(logs, action, user_class)
        cfg = self.config
        n_unbiased = int(np.ceil(cfg.unbiased_oversample * len(sliced)))
        counts = slotted_counts(
            sliced, cfg.bins(), scheme=scheme,
            n_unbiased_samples=n_unbiased, rng=self._rng.child("alpha-profile"),
            estimator=cfg.unbiased_estimator,
            n_shards=cfg.unbiased_shards, executor=self.executor,
        )
        if reference_slot is None and scheme == "period":
            reference_slot = 0  # 8am-2pm, as in the paper's Figure 8
        return alpha_from_counts(
            counts,
            reference_slot=reference_slot,
            bin_average=cfg.alpha_bin_average,
            min_bin_count=cfg.alpha_min_bin_count,
        )
