"""From histograms to the normalized latency preference (paper Section 2.3).

Given the biased distribution ``B`` and unbiased distribution ``U`` on a
shared 10 ms grid:

1. latency preference = per-bin density ratio ``B/U`` — undefined (NaN)
   where ``U`` has too little mass for a stable ratio;
2. smooth with a Savitzky–Golay filter (window 101 bins, degree 3);
3. normalize so the smoothed value at the reference latency (300 ms) is 1.

A normalized preference of ``x`` at latency ``L`` means users are
``(1 - x) * 100 %`` less active at ``L`` than at the reference, all
confounders being equal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.errors import ConfigError, InsufficientDataError
from repro.runtime.deadline import check_deadline
from repro.stats.histogram import Histogram1D
from repro.stats.savgol import SavitzkyGolay
from repro.core.result import PreferenceResult

#: Paper defaults.
DEFAULT_SMOOTHING_WINDOW = 101
DEFAULT_SMOOTHING_DEGREE = 3
DEFAULT_REFERENCE_MS = 300.0
DEFAULT_MIN_UNBIASED_COUNT = 40.0


@dataclass(frozen=True)
class PreferenceComputer:
    """Configured B/U → NLP transform."""

    smoothing_window: int = DEFAULT_SMOOTHING_WINDOW
    smoothing_degree: int = DEFAULT_SMOOTHING_DEGREE
    reference_ms: float = DEFAULT_REFERENCE_MS
    min_unbiased_count: float = DEFAULT_MIN_UNBIASED_COUNT

    def __post_init__(self) -> None:
        if self.smoothing_window % 2 != 1 or self.smoothing_window < 3:
            raise ConfigError(
                f"smoothing_window must be odd and >= 3, got {self.smoothing_window}"
            )
        if self.reference_ms <= 0:
            raise ConfigError(f"reference_ms must be positive, got {self.reference_ms}")

    def compute(
        self,
        biased: Histogram1D,
        unbiased: Histogram1D,
        slice_description: str = "",
        n_actions: int | None = None,
    ) -> PreferenceResult:
        """Produce the full :class:`PreferenceResult` from B and U."""
        check_deadline("preference.compute")
        if biased.bins != unbiased.bins:
            raise ConfigError("B and U must share one bin grid")
        bins = biased.bins
        ref_idx = bins.index_of(np.asarray([self.reference_ms]))[0]
        if ref_idx < 0:
            raise ConfigError(
                f"reference latency {self.reference_ms} ms is outside the bin grid"
            )

        b_counts = biased.counts
        u_counts = unbiased.counts
        raw = np.full(bins.count, np.nan)
        stable = u_counts >= self.min_unbiased_count
        if obs.current().enabled:
            # Estimator-health probes run on the pre-ratio intermediates so
            # a run that raises below still carries its fail findings.
            from repro.obs import probes

            probes.emit(probes.probe_bin_occupancy(
                b_counts, u_counts, self.min_unbiased_count, slice_description))
            probes.emit(probes.probe_u_coverage(
                b_counts, u_counts, self.min_unbiased_count, slice_description))
            probes.emit(probes.probe_smoothing_edges(
                stable, self.smoothing_window, slice_description))
        if not np.any(stable):
            raise InsufficientDataError(
                "no latency bin has enough unbiased samples "
                f"(min_unbiased_count={self.min_unbiased_count})"
            )
        with obs.span("preference_compute", slice=slice_description):
            b_pdf = biased.pdf()
            u_pdf = unbiased.pdf()
            raw[stable] = b_pdf[stable] / u_pdf[stable]

            smoother = SavitzkyGolay(self.smoothing_window, self.smoothing_degree)
            smoothed = smoother(raw, handle_nan=True)
            # Smoothing can extrapolate a little into unstable bins; keep the
            # curve only where the ratio itself was defined.
            smoothed[~stable] = np.nan

            ref_value = smoothed[ref_idx]
            if np.isnan(ref_value) or ref_value <= 0:
                # Fall back to the nearest valid bin to the reference.
                valid_idx = np.flatnonzero(~np.isnan(smoothed) & (smoothed > 0))
                if valid_idx.size == 0:
                    raise InsufficientDataError(
                        "smoothed preference has no valid bins")
                nearest = valid_idx[np.argmin(np.abs(valid_idx - ref_idx))]
                ref_value = smoothed[nearest]
            nlp = smoothed / ref_value

        return PreferenceResult(
            bins=bins,
            biased_counts=b_counts,
            unbiased_counts=u_counts,
            raw_ratio=raw,
            smoothed_ratio=smoothed,
            nlp=nlp,
            reference_ms=self.reference_ms,
            slice_description=slice_description,
            n_actions=int(biased.total if n_actions is None else n_actions),
        )


def _nan_column_mean(stack: np.ndarray) -> np.ndarray:
    """Column means ignoring NaNs; all-NaN columns stay NaN, silently."""
    mask = np.isnan(stack)
    counts = (~mask).sum(axis=0)
    sums = np.where(mask, 0.0, stack).sum(axis=0)
    out = np.full(stack.shape[1], np.nan)
    ok = counts > 0
    out[ok] = sums[ok] / counts[ok]
    return out


def average_results(results: list, slice_description: str = "") -> PreferenceResult:
    """Pointwise NaN-aware average of NLP curves from multiple references.

    The paper: "we pick multiple references in turn and then average the
    results." All inputs must share one bin grid and reference latency.
    """
    if not results:
        raise InsufficientDataError("no results to average")
    first = results[0]
    for other in results[1:]:
        if other.bins != first.bins:
            raise ConfigError("results must share one bin grid")
    nlp = _nan_column_mean(np.stack([r.nlp for r in results]))
    raw = _nan_column_mean(np.stack([r.raw_ratio for r in results]))
    smoothed = _nan_column_mean(np.stack([r.smoothed_ratio for r in results]))
    return PreferenceResult(
        bins=first.bins,
        biased_counts=np.mean([r.biased_counts for r in results], axis=0),
        unbiased_counts=np.mean([r.unbiased_counts for r in results], axis=0),
        raw_ratio=raw,
        smoothed_ratio=smoothed,
        nlp=nlp,
        reference_ms=first.reference_ms,
        slice_description=slice_description or first.slice_description,
        n_actions=first.n_actions,
        metadata={"averaged_over": len(results)},
    )
