"""Result objects: the normalized latency preference curve.

A :class:`PreferenceResult` holds everything the paper plots per figure:
the shared bin grid, the biased/unbiased densities, the raw ``B/U`` ratio,
its smoothed version, and the reference-normalized curve, plus enough
provenance (slice description, sample counts) to label a plot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import InsufficientDataError
from repro.stats.histogram import HistogramBins


@dataclass
class PreferenceResult:
    """A computed normalized-latency-preference curve."""

    bins: HistogramBins
    biased_counts: np.ndarray
    unbiased_counts: np.ndarray
    raw_ratio: np.ndarray
    smoothed_ratio: np.ndarray
    nlp: np.ndarray
    reference_ms: float
    slice_description: str = ""
    n_actions: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def latencies(self) -> np.ndarray:
        """Bin centers (ms) the curve is defined over."""
        return self.bins.centers

    @property
    def valid(self) -> np.ndarray:
        """Mask of bins where the NLP is defined (enough unbiased mass)."""
        return ~np.isnan(self.nlp)

    def valid_range(self) -> tuple:
        """(min, max) latency over which the curve is defined."""
        centers = self.latencies[self.valid]
        if centers.size == 0:
            raise InsufficientDataError("the NLP curve has no valid bins")
        return float(centers.min()), float(centers.max())

    def at(self, latency_ms: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """NLP at arbitrary latencies by linear interpolation over valid bins.

        Queries outside the valid range return ``nan``.
        """
        centers = self.latencies[self.valid]
        values = self.nlp[self.valid]
        if centers.size == 0:
            raise InsufficientDataError("the NLP curve has no valid bins")
        q = np.asarray(latency_ms, dtype=float)
        out = np.interp(q, centers, values, left=np.nan, right=np.nan)
        if np.isscalar(latency_ms):
            return float(out)
        return out

    def drop_at(self, latency_ms: float) -> float:
        """Activity reduction relative to the reference: ``1 - NLP(L)``.

        The paper's headline phrasing: NLP 0.68 at 1000 ms = '32 % less
        active than at the reference latency'.
        """
        return 1.0 - float(self.at(latency_ms))

    def series(self) -> Dict[str, np.ndarray]:
        """Column-oriented view for export/plotting."""
        return {
            "latency_ms": self.latencies,
            "biased_count": self.biased_counts,
            "unbiased_count": self.unbiased_counts,
            "raw_ratio": self.raw_ratio,
            "smoothed_ratio": self.smoothed_ratio,
            "nlp": self.nlp,
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "bins": {"low": self.bins.low, "high": self.bins.high, "width": self.bins.width},
            "reference_ms": self.reference_ms,
            "slice_description": self.slice_description,
            "n_actions": self.n_actions,
            "metadata": self.metadata,
            "series": {k: [None if np.isnan(x) else float(x) for x in v]
                       for k, v in self.series().items()},
        }

    def save_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "PreferenceResult":
        data = json.loads(Path(path).read_text())
        series = {
            k: np.array([np.nan if x is None else x for x in v], dtype=float)
            for k, v in data["series"].items()
        }
        return cls(
            bins=HistogramBins(**data["bins"]),
            biased_counts=series["biased_count"],
            unbiased_counts=series["unbiased_count"],
            raw_ratio=series["raw_ratio"],
            smoothed_ratio=series["smoothed_ratio"],
            nlp=series["nlp"],
            reference_ms=float(data["reference_ms"]),
            slice_description=data.get("slice_description", ""),
            n_actions=int(data.get("n_actions", 0)),
            metadata=dict(data.get("metadata", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            lo, hi = self.valid_range()
            span = f"[{lo:.0f}, {hi:.0f}] ms"
        except InsufficientDataError:
            span = "empty"
        return (
            f"PreferenceResult({self.slice_description or 'all'}, "
            f"n={self.n_actions}, ref={self.reference_ms:.0f} ms, valid={span})"
        )
