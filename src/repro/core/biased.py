"""The biased latency distribution ``B`` (paper Section 2.2).

``B`` is simply the histogram of the latencies of the user actions that
actually happened. It is "biased" because users act more when latency is
low — which is exactly the signal AutoSens extracts by comparing ``B``
against the unbiased distribution ``U``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EmptyDataError
from repro.stats.histogram import Histogram1D, HistogramBins
from repro.telemetry.log_store import LogStore


def biased_histogram(
    logs: LogStore,
    bins: HistogramBins,
    weights: Optional[np.ndarray] = None,
) -> Histogram1D:
    """Histogram of observed action latencies.

    ``weights`` (one per row) supports the time-confounder correction,
    where each action's count is divided by its time slot's activity
    factor α before pooling.
    """
    if logs.is_empty:
        raise EmptyDataError("cannot build a biased distribution from empty logs")
    hist = Histogram1D(bins)
    hist.add(logs.latencies_ms, weights=weights)
    return hist
