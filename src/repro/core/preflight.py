"""Pre-flight checks: should you trust AutoSens on this telemetry?

The method has preconditions the paper states but a user can forget:
enough volume, time coverage without long silences, *locally predictable*
latency (the Figure 1 premise), and a latency range wide enough to say
anything about the latencies you care about. :func:`preflight` checks all
of them on a telemetry slice and returns actionable recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import EmptyDataError
from repro.core.locality import locality_report
from repro.stats.rng import SeedLike
from repro.telemetry.log_store import LogStore
from repro.telemetry.quality import QualityReport, quality_report


@dataclass
class PreflightReport:
    """Verdict plus the evidence and recommendations behind it."""

    quality: QualityReport
    locality_strength: float
    msd_mad_actual: float
    msd_mad_shuffled: float
    latency_p10_ms: float
    latency_p90_ms: float
    dynamic_range: float
    recommendations: List[str] = field(default_factory=list)

    @property
    def ready(self) -> bool:
        """True when no blocking condition was found."""
        return self.quality.ok and self.locality_strength >= 0.1

    def rows(self) -> List[List]:
        return [
            ["telemetry quality", "ok" if self.quality.ok else "BLOCKING"],
            ["locality strength (0=random, 1=sorted)",
             round(self.locality_strength, 3)],
            ["MSD/MAD actual vs shuffled",
             f"{self.msd_mad_actual:.3f} vs {self.msd_mad_shuffled:.3f}"],
            ["latency P10-P90 (ms)",
             f"{self.latency_p10_ms:.0f} - {self.latency_p90_ms:.0f}"],
            ["dynamic range (P90/P10)", round(self.dynamic_range, 2)],
            ["verdict", "ready" if self.ready else "NOT READY"],
        ]


def preflight(
    logs: LogStore,
    rng: SeedLike = 0,
    min_rows: int = 1000,
) -> PreflightReport:
    """Assess whether a telemetry slice supports AutoSens inference."""
    if logs.is_empty:
        raise EmptyDataError("cannot preflight empty logs")
    quality = quality_report(logs, min_rows=min_rows)
    recommendations: List[str] = []

    successful = logs.successful()
    if len(successful) >= 3:
        comparison = locality_report(successful, rng=rng)
        strength = comparison.locality_strength
        actual, shuffled = comparison.actual, comparison.shuffled
    else:
        strength, actual, shuffled = 0.0, float("nan"), float("nan")

    lat = successful.latencies_ms if len(successful) else logs.latencies_ms
    p10 = float(np.percentile(lat, 10))
    p90 = float(np.percentile(lat, 90))
    dynamic_range = p90 / p10 if p10 > 0 else float("inf")

    if not quality.ok:
        recommendations.append(
            "fix the blocking data-quality issues first (see quality flags)")
    if strength < 0.1:
        recommendations.append(
            "latency shows almost no temporal locality; users cannot act on "
            "it and B/U will be flat regardless of true preference — "
            "AutoSens is not applicable to this slice")
    elif strength < 0.25:
        recommendations.append(
            "temporal locality is weak; expect attenuated curves and use "
            "wide confidence bands (nlp_confidence_band)")
    if dynamic_range < 1.5:
        recommendations.append(
            "experienced latency spans a narrow range "
            f"(P90/P10 = {dynamic_range:.2f}); the curve will only be "
            "identified over that range — consider pooling more data or a "
            "slice that saw more varied conditions")
    if quality.span_days >= 10.0:
        recommendations.append(
            "the window spans multiple weeks; prefer "
            "slot_scheme='hour-of-week' to absorb weekly seasonality")
    if len(logs) >= 50_000:
        recommendations.append(
            "large slice: unbiased_estimator='voronoi' gives identical "
            "results deterministically and faster")
    if not recommendations:
        recommendations.append("no concerns; defaults are appropriate")

    return PreflightReport(
        quality=quality,
        locality_strength=float(strength),
        msd_mad_actual=float(actual),
        msd_mad_shuffled=float(shuffled),
        latency_p10_ms=p10,
        latency_p90_ms=p90,
        dynamic_range=float(dynamic_range),
        recommendations=recommendations,
    )
