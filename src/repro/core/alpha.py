"""The time-based activity factor α (paper Section 2.4.1).

Latency and user activity are both strong functions of the hour: busy hours
have more users *and* more congestion. Pooling naively therefore confounds
"users avoid high latency" with "users are asleep when latency is low". The
paper's fix:

1. Discretize time into slots (1-hour slots; we pool by hour-of-day) and
   latency into 10 ms bins.
2. For each slot ``T`` and bin ``L``: let ``c[T, L]`` be the action count
   and ``f[T, L]`` the fraction of slot time at that latency, estimated
   from the slot's unbiased distribution ``U_T``.
3. The temporal action rate is ``c[T, L] / f[T, L]``; relative to a
   reference slot ``r``, ``α[T, L] = (c[T,L]/f[T,L]) / (c[r,L]/f[r,L])``.
4. ``α[T]`` is the average of ``α[T, L]`` over latency bins (the paper
   finds it flat across bins — our Figure 8 bench checks that).
5. Counts are divided by ``α[T]`` and pooled across slots; ``U`` pools
   directly because all slots cover equal time.

Different reference slots give slightly different results on noisy data, so
the pipeline averages over several references (Section 2.4.1, last note).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.errors import ConfigError, EmptyDataError, InsufficientDataError
from repro.parallel.executor import resolve_executor
from repro.parallel.seeding import task_seeds
from repro.runtime.deadline import check_deadline
from repro.stats.histogram import Histogram1D, HistogramBins
from repro.stats.rng import SeedLike, spawn_rng
from repro.stats.sampling import midpoints_of, nearest_time_sample
from repro.telemetry.log_store import LogStore
from repro.telemetry import timeutil
from repro.types import DayPeriod, ALL_DAY_PERIODS

#: Supported time-slot schemes. ``hour-of-week`` separates weekday and
#: weekend hours (168 slots), for services with weekly seasonality; the
#: paper's two-month OWA window certainly had one.
SLOT_SCHEMES = ("hour-of-day", "hour-of-week", "period", "absolute-hour")

_DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

#: Period index for each integer hour of day. Period boundaries all fall on
#: whole hours, so looking up ``floor(hour)`` is exact for any float hour.
_PERIOD_OF_HOUR = np.array(
    [
        {p: i for i, p in enumerate(ALL_DAY_PERIODS)}[DayPeriod.of_hour(float(h))]
        for h in range(24)
    ],
    dtype=np.int64,
)


def slot_of_times(
    times: np.ndarray,
    scheme: str,
    tz_offset_hours: np.ndarray | float = 0.0,
) -> np.ndarray:
    """Map timestamps to integer slot ids under the chosen scheme."""
    if scheme == "hour-of-day":
        return timeutil.hour_slot(times, tz_offset_hours)
    if scheme == "hour-of-week":
        day = timeutil.day_index(times, tz_offset_hours) % 7
        hour = timeutil.hour_slot(times, tz_offset_hours)
        return day * 24 + hour
    if scheme == "period":
        hours = timeutil.hour_slot(times, tz_offset_hours)
        return _PERIOD_OF_HOUR[np.clip(hours, 0, 23)]
    if scheme == "absolute-hour":
        return timeutil.absolute_hour_slot(times)
    raise ConfigError(f"unknown slot scheme {scheme!r}; pick one of {SLOT_SCHEMES}")


def slot_labels(scheme: str, slot_ids: Sequence[int]) -> List[str]:
    """Human-readable labels for slot ids."""
    if scheme == "hour-of-day":
        return [f"{s:02d}:00" for s in slot_ids]
    if scheme == "hour-of-week":
        return [f"{_DAY_NAMES[s // 24]} {s % 24:02d}:00" for s in slot_ids]
    if scheme == "period":
        return [ALL_DAY_PERIODS[s].value for s in slot_ids]
    if scheme == "absolute-hour":
        return [f"hour+{s}" for s in slot_ids]
    raise ConfigError(f"unknown slot scheme {scheme!r}")


@dataclass
class AlphaEstimate:
    """Per-slot activity factors and their per-bin decomposition."""

    scheme: str
    slot_ids: np.ndarray            # distinct slot ids, sorted
    reference_slot: int
    alpha_by_slot: np.ndarray       # one α per slot id
    alpha_matrix: np.ndarray        # (n_slots, n_bins): α[T, L]; NaN where undefined
    biased_counts: np.ndarray       # (n_slots, n_bins): c[T, L]
    time_fractions: np.ndarray      # (n_slots, n_bins): f[T, L]
    bins: HistogramBins

    def alpha_of(self, slot_id: int) -> float:
        idx = np.flatnonzero(self.slot_ids == slot_id)
        if idx.size == 0:
            raise InsufficientDataError(f"slot {slot_id} not present in the estimate")
        return float(self.alpha_by_slot[idx[0]])

    def labels(self) -> List[str]:
        return slot_labels(self.scheme, [int(s) for s in self.slot_ids])

    def flatness(self) -> float:
        """Mean over slots of the coefficient of variation of α across bins.

        The paper's Figure 8 argues α is flat across the latency range; a
        small value here (≪ 1) confirms that averaging over bins is sound.
        """
        cvs = []
        for row in self.alpha_matrix:
            vals = row[~np.isnan(row)]
            if vals.size >= 2 and vals.mean() > 0:
                cvs.append(vals.std() / vals.mean())
        if not cvs:
            raise InsufficientDataError("no slot has enough bins to assess flatness")
        return float(np.mean(cvs))


@dataclass
class SlottedCounts:
    """The expensive intermediate: per-slot counts and time fractions.

    Computing these once and reusing them across several reference slots is
    what makes the paper's multi-reference averaging cheap. ``slot_seconds``
    records how much observed wall-clock time each slot covers, which is
    what makes chunk-level tables mergeable (see
    :mod:`repro.core.streaming`).
    """

    scheme: str
    slot_ids: np.ndarray
    biased_counts: np.ndarray     # c[T, L]
    time_fractions: np.ndarray    # f[T, L]
    bins: HistogramBins
    slot_seconds: Optional[np.ndarray] = None

    def busiest_slots(self, k: int = 1) -> List[int]:
        """The ``k`` slots with the most actions, busiest first."""
        order = np.argsort(-self.biased_counts.sum(axis=1), kind="mergesort")
        return [int(self.slot_ids[i]) for i in order[:k]]


def _rows_in_slots(slot_ids: np.ndarray, slots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(row_index, member_mask): position of each slot id in sorted ``slot_ids``.

    ``row_index`` is only meaningful where ``member_mask`` is true; slots
    not present in ``slot_ids`` are masked out (they get row 0, masked).
    """
    n = slot_ids.size
    pos = np.searchsorted(slot_ids, slots)
    pos_clipped = np.minimum(pos, n - 1)
    member = (pos < n) & (slot_ids[pos_clipped] == slots)
    return pos_clipped, member


def _count_tensor(
    rows: np.ndarray,
    bin_idx: np.ndarray,
    n_slots: int,
    n_bins: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dense ``(n_slots, n_bins)`` count tensor in one vectorized pass.

    Fuses (slot row, latency bin) into a single flat index and lets
    ``np.bincount`` do one sweep over all samples — replacing the former
    per-slot Python loop (one full-array mask per slot). Accumulation
    order per cell equals input order, so weighted sums are bit-identical
    to the masked ``np.add.at`` formulation it replaces.
    """
    flat = rows * n_bins + bin_idx
    counts = np.bincount(flat, weights=weights, minlength=n_slots * n_bins)
    return counts.astype(float, copy=False).reshape(n_slots, n_bins)


def slot_time_coverage(
    start: float,
    end: float,
    scheme: str,
    slot_ids: np.ndarray,
    tz_offset_hours: float = 0.0,
    resolution_s: float = 60.0,
) -> np.ndarray:
    """Seconds of ``[start, end)`` falling into each slot (approximate).

    Evaluated on a fixed grid (default 1 minute), which is exact for the
    hour-aligned schemes whenever the span is a multiple of the resolution.
    """
    slot_ids = np.asarray(slot_ids, dtype=np.int64)
    if end <= start:
        return np.zeros(len(slot_ids), dtype=float)
    grid = np.arange(start, end, resolution_s)
    grid_slots = slot_of_times(grid, scheme, tz_offset_hours)
    order = np.argsort(slot_ids, kind="mergesort")
    rows, member = _rows_in_slots(slot_ids[order], grid_slots)
    counts = np.bincount(rows[member], minlength=slot_ids.size)
    out = np.zeros(slot_ids.size, dtype=float)
    out[order] = counts.astype(float) * resolution_s
    return out


#: Bound on top-up batches after the main waste-compensated draw. The first
#: batch is sized to land past ``target`` with ~4σ slack, so top-ups only
#: fire when the acceptance estimate was badly off (e.g. a pathological
#: latency grid); each one re-anchors on the observed acceptance rate.
MAX_TOPUP_BATCHES = 8

#: Floor on the estimated acceptance rate. Bounds the inflation factor of a
#: single batch (≤ 64× the outstanding need) so a degenerate estimate can
#: never request an absurd allocation.
MIN_ACCEPTANCE = 1.0 / 64.0


def _acceptance_estimate(
    slot_seconds: np.ndarray,
    window_s: float,
    sample_bin_idx: np.ndarray,
) -> float:
    """Expected share of uniform-time queries the unbiased draw will accept.

    A query is accepted when it (a) falls in a slot that holds actions and
    (b) selects a sample whose latency lands on the bin grid. (a) is the
    populated-slot share of the window from :func:`slot_time_coverage`;
    (b) is approximated by the in-grid sample share (exact if selection
    were uniform over samples). Degenerate inputs fall back to 1.0 — the
    top-up path corrects any over-estimate.
    """
    covered = float(np.sum(slot_seconds))
    time_share = min(covered / window_s, 1.0) if (window_s > 0 and covered > 0) else 1.0
    grid_share = float(np.mean(sample_bin_idx >= 0)) if sample_bin_idx.size else 1.0
    return float(np.clip(time_share * grid_share, MIN_ACCEPTANCE, 1.0))


def _draw_unbiased_tensor(
    sorted_times: np.ndarray,
    sample_bin_idx: np.ndarray,
    slot_ids: np.ndarray,
    n_bins: int,
    scheme: str,
    tz: float,
    lo: float,
    hi: float,
    target: int,
    acceptance: float,
    generator: np.random.Generator,
) -> Tuple[np.ndarray, int, int, int]:
    """Accumulate the (n_slots, n_bins) unbiased count tensor past ``target``.

    The waste-compensated core of the sampling estimator: instead of
    redrawing fixed-size batches until enough queries are accepted, draw
    one batch inflated by the expected acceptance rate (plus ~4σ slack so
    a single batch suffices with overwhelming probability), resolve every
    query in one fused pass — slot assignment, nearest-sample lookup
    against precomputed midpoints, bin gather — and count the accepted
    ones. Rare shortfalls top up with the same inflation re-anchored on
    the acceptance rate actually observed.

    Returns ``(u, accepted, drawn, batches)``.
    """
    n_slots = slot_ids.size
    u = np.zeros((n_slots, n_bins), dtype=float)
    if not np.any(sample_bin_idx >= 0):
        return u, 0, 0, 0  # nothing on the grid: no query can ever be accepted

    has_dups = sorted_times.size > 1 and bool(
        np.any(sorted_times[1:] == sorted_times[:-1])
    )
    mids = midpoints_of(sorted_times) if not has_dups else None
    # Contiguous slot ids (the common full-log case) turn the sorted-lookup
    # membership test into plain integer arithmetic.
    contiguous = n_slots > 0 and int(slot_ids[-1]) - int(slot_ids[0]) + 1 == n_slots
    s0 = int(slot_ids[0]) if n_slots else 0

    accepted = drawn = batches = 0
    acceptance = float(np.clip(acceptance, MIN_ACCEPTANCE, 1.0))
    while accepted < target and batches <= MAX_TOPUP_BATCHES:
        check_deadline("slotted_counts.draw")
        need = target - accepted
        slack = 4.0 * np.sqrt(need) + 16.0
        n_draw = int(np.ceil((need + slack) / acceptance))
        queries = generator.uniform(lo, hi, n_draw)
        # Only *counts* leave this loop, so query order is free to choose;
        # resolving them in time order makes the nearest-neighbour
        # searchsorted cache-local (~8x less wall time at full scale).
        queries.sort()
        selected = nearest_time_sample(
            sorted_times, queries, rng=generator,
            assume_sorted=True, midpoints=mids, has_duplicates=has_dups,
        )
        q_bins = sample_bin_idx[selected]
        q_slots = slot_of_times(queries, scheme, tz)
        if contiguous:
            rows = q_slots - s0
            keep = (rows >= 0) & (rows < n_slots) & (q_bins >= 0)
        else:
            rows, member = _rows_in_slots(slot_ids, q_slots)
            keep = member & (q_bins >= 0)
        kept = int(np.count_nonzero(keep))
        if kept:
            u += _count_tensor(rows[keep], q_bins[keep], n_slots, n_bins)
        accepted += kept
        drawn += n_draw
        batches += 1
        # Re-anchor on the observed rate so a second shortfall is unlikely.
        acceptance = float(np.clip(kept / max(n_draw, 1), MIN_ACCEPTANCE, acceptance))
    return u, accepted, drawn, batches


def _unbiased_shard_task(payload: tuple) -> Tuple[np.ndarray, int, int, int]:
    """One U-estimation shard: draw over a time sub-window, return its tensor.

    Executed via :mod:`repro.parallel` executors; the payload carries only
    the shard's sample slice (plus one halo sample each side, so every
    query in the sub-window finds its true nearest neighbour), which keeps
    process-backend pickling costs proportional to the shard, not the log.
    Deterministic given the payload — the serial and process backends are
    bit-identical shard by shard.
    """
    (times, latencies, slot_ids, bins, scheme, tz, lo, hi, target, seed) = payload
    sample_bin_idx = bins.index_of(np.asarray(latencies))
    seconds = slot_time_coverage(lo, hi, scheme, slot_ids, tz_offset_hours=tz)
    acceptance = _acceptance_estimate(seconds, hi - lo, sample_bin_idx)
    return _draw_unbiased_tensor(
        np.asarray(times, dtype=float), sample_bin_idx, slot_ids, bins.count,
        scheme, tz, lo, hi, target, acceptance, spawn_rng(seed),
    )


def _sharded_unbiased_tensor(
    sorted_times: np.ndarray,
    sorted_latencies: np.ndarray,
    slot_ids: np.ndarray,
    bins: HistogramBins,
    scheme: str,
    tz: float,
    lo: float,
    hi: float,
    target: int,
    n_shards: int,
    generator: np.random.Generator,
    executor,
) -> Tuple[np.ndarray, int, int, int]:
    """Stratified U-estimation: equal-width time sub-windows, summed tensors.

    Each shard draws its proportional share of ``target`` uniformly over
    its own sub-window, so the union is a stratified version of the single
    uniform draw — same expectation, slightly lower variance. Per-shard
    seeds derive deterministically from the caller's generator via
    :func:`repro.parallel.seeding.task_seeds`, so results depend only on
    (rng, n_shards), never on the executor backend.
    """
    edges = np.linspace(lo, hi, n_shards + 1)
    root = int(generator.integers(2**63 - 1))
    seeds = task_seeds(root, "slotted_counts/unbiased", n_shards)
    base, rem = divmod(int(target), n_shards)
    payloads = []
    for s in range(n_shards):
        a, b = float(edges[s]), float(edges[s + 1])
        i0 = int(np.searchsorted(sorted_times, a, side="left"))
        i1 = int(np.searchsorted(sorted_times, b, side="left"))
        j0, j1 = max(i0 - 1, 0), min(i1 + 1, sorted_times.size)
        payloads.append((
            sorted_times[j0:j1], sorted_latencies[j0:j1], slot_ids, bins,
            scheme, tz, a, b, base + (1 if s < rem else 0), seeds[s],
        ))
    results = resolve_executor(executor).map_ordered(_unbiased_shard_task, payloads)
    u = np.zeros((slot_ids.size, bins.count), dtype=float)
    accepted = drawn = batches = 0
    for shard_u, shard_accepted, shard_drawn, shard_batches in results:
        u += shard_u
        accepted += shard_accepted
        drawn += shard_drawn
        batches += shard_batches
    return u, accepted, drawn, batches


def slotted_counts(
    logs: LogStore,
    bins: HistogramBins,
    scheme: str = "hour-of-day",
    n_unbiased_samples: Optional[int] = None,
    rng: SeedLike = None,
    estimator: str = "sampling",
    n_shards: int = 1,
    executor=None,
) -> SlottedCounts:
    """Compute per-slot biased counts c[T, L] and time fractions f[T, L].

    ``estimator="voronoi"`` replaces the Monte Carlo unbiased draw with
    deterministic Voronoi-cell weights (each sample's time share is
    assigned to the slot containing the sample; cells crossing slot
    boundaries are attributed whole, an error bounded by the typical
    inter-action gap over the slot length).

    ``n_shards > 1`` splits the sampling estimator's draw into that many
    time sub-windows executed via ``executor`` (any
    :func:`repro.parallel.executor.resolve_executor` spec; default
    serial). Sharded results are deterministic for a given ``(rng,
    n_shards)`` regardless of backend, and statistically equivalent to —
    but not bit-identical with — the unsharded draw. Ignored by the
    deterministic ``voronoi`` estimator.
    """
    check_deadline("slotted_counts")
    if logs.is_empty:
        raise EmptyDataError("cannot slot empty logs")
    if estimator not in ("sampling", "voronoi"):
        raise ConfigError(
            f"unknown unbiased estimator {estimator!r}; use 'sampling' or 'voronoi'"
        )
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    generator = spawn_rng(rng)

    action_slots = slot_of_times(logs.times, scheme, logs.tz_offsets)
    slot_ids = np.unique(action_slots)
    n_slots = slot_ids.size

    # c[T, L] — biased counts per slot, one fused-index bincount pass over
    # all actions (every action's slot is in slot_ids by construction).
    with obs.span("slotted_counts.biased", n_slots=n_slots):
        bin_idx = bins.index_of(logs.latencies_ms)
        in_grid = bin_idx >= 0
        action_rows = np.searchsorted(slot_ids, action_slots)
        c = _count_tensor(action_rows[in_grid], bin_idx[in_grid], n_slots, bins.count)

    # slot_seconds double-duty: it is the merge weight recorded on the
    # result AND the populated-slot coverage that sizes the unbiased draw.
    tz = float(np.median(logs.tz_offsets)) if len(logs) else 0.0
    t0, t1 = logs.time_range()
    seconds = slot_time_coverage(t0, t1, scheme, slot_ids, tz_offset_hours=tz)

    # f[T, L] — time fraction per slot from that slot's unbiased draw. Each
    # query is assigned to its slot, so every slot's sample share is
    # proportional to its time share. Queries whose slot holds no actions
    # (e.g. daytime hours when analyzing a night-period slice) or whose
    # selected latency is off-grid are rejected; the draw is inflated by
    # the expected acceptance rate so one batch usually suffices.
    with obs.span("slotted_counts.unbiased", estimator=estimator) as u_span:
        if estimator == "voronoi":
            from repro.core.unbiased import voronoi_weights

            order = np.argsort(logs.times, kind="mergesort")
            sorted_times = logs.times[order]
            sorted_latencies = logs.latencies_ms[order]
            sorted_tz = logs.tz_offsets[order]
            weights = voronoi_weights(sorted_times)
            sample_slots = slot_of_times(sorted_times, scheme, sorted_tz)
            v_bin_idx = bins.index_of(sorted_latencies)
            v_in_grid = v_bin_idx >= 0
            sample_rows = np.searchsorted(slot_ids, sample_slots)
            u = _count_tensor(
                sample_rows[v_in_grid], v_bin_idx[v_in_grid], n_slots, bins.count,
                weights=weights[v_in_grid],
            )
        else:
            target = n_unbiased_samples if n_unbiased_samples is not None else 2 * len(logs)
            # Sort once; draws, top-ups and shards all reuse the sorted view.
            order = np.argsort(logs.times, kind="mergesort")
            sorted_times = logs.times[order]
            sorted_latencies = logs.latencies_ms[order]
            lo, hi = float(sorted_times[0]), float(sorted_times[-1])
            if hi <= lo:  # all samples at one instant
                hi = lo + 1.0
            if n_shards > 1:
                u, accepted, drawn, batches = _sharded_unbiased_tensor(
                    sorted_times, sorted_latencies, slot_ids, bins, scheme, tz,
                    lo, hi, target, n_shards, generator, executor,
                )
            else:
                sample_bin_idx = bins.index_of(sorted_latencies)
                acceptance_est = _acceptance_estimate(seconds, hi - lo, sample_bin_idx)
                u, accepted, drawn, batches = _draw_unbiased_tensor(
                    sorted_times, sample_bin_idx, slot_ids, bins.count, scheme,
                    tz, lo, hi, target, acceptance_est, generator,
                )
            rate = accepted / drawn if drawn else 0.0
            u_span.set(
                accepted=int(accepted), target=int(target),
                n_draw_batches=int(batches), drawn=int(drawn),
                acceptance_rate=round(rate, 4), n_shards=int(n_shards),
            )
            if obs.enabled():
                from repro.obs import probes

                obs.inc("autosens_unbiased_queries_drawn_total", float(drawn))
                obs.inc("autosens_unbiased_queries_accepted_total", float(accepted))
                obs.inc("autosens_unbiased_draw_batches_total", float(max(batches, 0)))
                probes.emit(probes.probe_unbiased_acceptance(
                    accepted, target, drawn, batches))
    slot_totals = u.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        f = np.where(slot_totals > 0, u / slot_totals, 0.0)

    return SlottedCounts(
        scheme=scheme, slot_ids=slot_ids, biased_counts=c, time_fractions=f,
        bins=bins, slot_seconds=seconds,
    )


def alpha_from_counts(
    counts: SlottedCounts,
    reference_slot: Optional[int] = None,
    min_bin_count: float = 5.0,
    min_time_fraction: float = 1e-6,
    bin_average: str = "simple",
) -> AlphaEstimate:
    """Derive α per slot from precomputed :class:`SlottedCounts`.

    ``reference_slot`` defaults to the busiest slot (most actions), which
    the paper's day-as-reference example suggests. ``bin_average`` is
    ``"simple"`` (the paper's plain mean over latency bins) or
    ``"weighted"`` (weights bins by their reference-slot counts — less
    noise on sparse data).
    """
    check_deadline("alpha_from_counts")
    if bin_average not in ("simple", "weighted"):
        raise ConfigError(f"bin_average must be 'simple' or 'weighted', got {bin_average!r}")
    slot_ids = counts.slot_ids
    n_slots = slot_ids.size
    slot_index = {int(s): i for i, s in enumerate(slot_ids)}
    c = counts.biased_counts
    f = counts.time_fractions
    bins = counts.bins

    if reference_slot is None:
        reference_slot = counts.busiest_slots(1)[0]
    if int(reference_slot) not in slot_index:
        raise ConfigError(f"reference slot {reference_slot} has no data")
    ref_row = slot_index[int(reference_slot)]

    with obs.span("alpha", n_slots=n_slots, reference=int(reference_slot)):
        with np.errstate(invalid="ignore", divide="ignore"):
            rate = np.where(f > min_time_fraction, c / f, np.nan)
        ref_rate = rate[ref_row]

        alpha_matrix = np.full((n_slots, bins.count), np.nan)
        valid_ref = (~np.isnan(ref_rate)) & (c[ref_row] >= min_bin_count)
        for row in range(n_slots):
            valid = valid_ref & (~np.isnan(rate[row])) & (c[row] >= min_bin_count)
            alpha_matrix[row, valid] = rate[row, valid] / ref_rate[valid]

        alpha_by_slot = np.full(n_slots, np.nan)
        for row in range(n_slots):
            vals = alpha_matrix[row]
            ok = ~np.isnan(vals)
            if not np.any(ok):
                continue
            if bin_average == "simple":
                alpha_by_slot[row] = float(vals[ok].mean())
            else:
                weights = c[ref_row][ok]
                alpha_by_slot[row] = float(np.average(vals[ok], weights=weights))
        # Slots with no overlapping valid bins: fall back to total-count ratio,
        # which is exact when α is truly flat across bins.
        totals = c.sum(axis=1)
        ref_total = totals[ref_row]
        for row in range(n_slots):
            if np.isnan(alpha_by_slot[row]) and ref_total > 0:
                alpha_by_slot[row] = totals[row] / ref_total
        alpha_by_slot[ref_row] = 1.0

    if obs.current().enabled:
        from repro.obs import probes

        probes.emit(probes.probe_alpha_dispersion(
            alpha_matrix, alpha_by_slot, int(reference_slot)))

    return AlphaEstimate(
        scheme=counts.scheme,
        slot_ids=slot_ids,
        reference_slot=int(reference_slot),
        alpha_by_slot=alpha_by_slot,
        alpha_matrix=alpha_matrix,
        biased_counts=c,
        time_fractions=f,
        bins=bins,
    )


def estimate_alpha(
    logs: LogStore,
    bins: HistogramBins,
    scheme: str = "hour-of-day",
    reference_slot: Optional[int] = None,
    n_unbiased_samples: Optional[int] = None,
    min_bin_count: float = 5.0,
    min_time_fraction: float = 1e-6,
    bin_average: str = "simple",
    rng: SeedLike = None,
) -> AlphaEstimate:
    """One-shot α estimation: :func:`slotted_counts` + :func:`alpha_from_counts`."""
    counts = slotted_counts(
        logs, bins, scheme=scheme, n_unbiased_samples=n_unbiased_samples, rng=rng
    )
    return alpha_from_counts(
        counts,
        reference_slot=reference_slot,
        min_bin_count=min_bin_count,
        min_time_fraction=min_time_fraction,
        bin_average=bin_average,
    )


def _inverse_alpha(alpha_by_slot: np.ndarray) -> np.ndarray:
    """Per-slot weight ``1/α`` (0 where α is non-positive or undefined)."""
    out = np.zeros(alpha_by_slot.shape, dtype=float)
    ok = np.isfinite(alpha_by_slot) & (alpha_by_slot > 0)
    out[ok] = 1.0 / alpha_by_slot[ok]
    return out


def corrected_histograms_from_counts(
    counts: SlottedCounts,
    alpha: AlphaEstimate,
) -> Tuple[Histogram1D, Histogram1D]:
    """(B, U) with α-normalized counts, derived purely from the count tensor.

    ``B[L] = Σ_T c[T, L] / α[T]`` — an ``O(n_slots × n_bins)`` contraction
    of the :class:`SlottedCounts` tensor, with no access to raw actions.
    This is what lets :meth:`repro.core.pipeline.AutoSens.preference_curve`
    evaluate *any* reference slot without rescanning the telemetry: the
    tensor is computed once and every reference is a cheap reweighting.

    Numerically equivalent to :func:`corrected_histograms` on the rows the
    tensor was built from (the tensor is the sufficient statistic; only
    float summation order differs).
    """
    if counts.bins != alpha.bins:
        raise ConfigError("counts and alpha must share one bin grid")
    if not np.array_equal(counts.slot_ids, alpha.slot_ids):
        raise ConfigError("counts and alpha must cover the same slots")
    with obs.span("corrected_histograms", reference=alpha.reference_slot):
        inv = _inverse_alpha(alpha.alpha_by_slot)
        pooled_biased = inv @ counts.biased_counts  # Σ_T c[T, :] / α[T]

        biased = Histogram1D(counts.bins)
        biased.add_counts(pooled_biased)
        unbiased = Histogram1D(counts.bins)
        # Equal-time pooling of per-slot fractions. Each slot contributes its
        # fraction profile once; scale is irrelevant because U is normalized.
        pooled = alpha.time_fractions.sum(axis=0)
        unbiased.add_counts(pooled * 10_000.0)  # arbitrary mass, density-normalized later
    return biased, unbiased


def corrected_histograms(
    logs: LogStore,
    bins: HistogramBins,
    alpha: AlphaEstimate,
) -> Tuple[Histogram1D, Histogram1D]:
    """Pool slot data into (B, U) with counts normalized by α.

    ``B`` gets each action weighted by ``1/α[slot]``; ``U`` pools the
    per-slot time fractions with equal slot weights (slots cover equal
    time under the hour-of-day and period schemes).

    This is the per-sample formulation — it rescans every action. The
    pipeline's hot path uses :func:`corrected_histograms_from_counts`
    instead; this version remains the reference for equivalence tests and
    for callers holding raw rows but no tensor.
    """
    if logs.is_empty:
        raise EmptyDataError("cannot build corrected histograms from empty logs")
    action_slots = slot_of_times(logs.times, alpha.scheme, logs.tz_offsets)
    rows, member = _rows_in_slots(alpha.slot_ids, action_slots)
    weights = np.where(member, _inverse_alpha(alpha.alpha_by_slot)[rows], 0.0)

    biased = Histogram1D(bins)
    biased.add(logs.latencies_ms, weights=weights)

    unbiased = Histogram1D(bins)
    # Equal-time pooling of per-slot fractions. Each slot contributes its
    # fraction profile once; scale is irrelevant because U is normalized.
    pooled = alpha.time_fractions.sum(axis=0)
    unbiased.add_counts(pooled * 10_000.0)  # arbitrary mass, density-normalized later
    return biased, unbiased


# --- The paper's Table 1 worked example -----------------------------------


@dataclass(frozen=True)
class WorkedExample:
    """All the intermediate numbers of the paper's Table 1."""

    alpha_per_bin: Dict[str, float]
    alpha: float
    normalized_counts: Dict[str, float]
    naive_rates: Dict[str, float]
    corrected_rates: Dict[str, float]


def worked_example(
    day_counts: Tuple[float, float] = (90.0, 140.0),
    day_fractions: Tuple[float, float] = (0.30, 0.70),
    night_counts: Tuple[float, float] = (26.0, 4.0),
    night_fractions: Tuple[float, float] = (0.80, 0.20),
) -> WorkedExample:
    """Reproduce the paper's Table 1 normalization example.

    Two slots (day = reference, night) and two latency bins (low, high).
    Returns every intermediate quantity so tests can check them against
    the numbers printed in the paper.
    """
    c_day = np.asarray(day_counts, dtype=float)
    f_day = np.asarray(day_fractions, dtype=float)
    c_night = np.asarray(night_counts, dtype=float)
    f_night = np.asarray(night_fractions, dtype=float)
    if np.any(f_day <= 0) or np.any(f_night <= 0):
        raise ConfigError("time fractions must be positive")

    rate_day = c_day / f_day
    rate_night = c_night / f_night
    alpha_bins = rate_night / rate_day
    alpha = float(alpha_bins.mean())
    normalized_night = c_night / alpha

    # Pooled activity levels per latency bin; slot lengths are equal so the
    # time at each latency is proportional to the sum of fractions.
    time_low = f_day[0] + f_night[0]
    time_high = f_day[1] + f_night[1]
    naive_low = (c_day[0] + c_night[0]) / (time_low * 100.0)
    naive_high = (c_day[1] + c_night[1]) / (time_high * 100.0)
    corrected_low = (c_day[0] + normalized_night[0]) / (time_low * 100.0)
    corrected_high = (c_day[1] + normalized_night[1]) / (time_high * 100.0)

    return WorkedExample(
        alpha_per_bin={"low": float(alpha_bins[0]), "high": float(alpha_bins[1])},
        alpha=alpha,
        normalized_counts={"low": float(normalized_night[0]), "high": float(normalized_night[1])},
        naive_rates={"low": float(naive_low), "high": float(naive_high)},
        corrected_rates={"low": float(corrected_low), "high": float(corrected_high)},
    )
