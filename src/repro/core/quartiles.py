"""User conditioning: quartiles of per-user median latency (Section 3.4).

Users are grouped into quartiles Q1..Q4 of their median experienced latency
(Q1 = fastest users). The paper then computes the NLP curve per quartile and
finds sensitivity decreasing from Q1 to Q4 — users accustomed to speed react
more strongly to slowness.

Only aggregate statistics ever leave this module; per-user medians are an
intermediate and the quartile slices are validated against the minimum
aggregate size (see :mod:`repro.telemetry.anonymize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import InsufficientDataError
from repro.telemetry.anonymize import require_min_aggregate
from repro.telemetry.log_store import LogStore

QUARTILE_NAMES = ("Q1", "Q2", "Q3", "Q4")


@dataclass
class QuartileAssignment:
    """Mapping of user codes to quartiles, with the cut points."""

    user_codes: np.ndarray      # distinct user codes
    medians_ms: np.ndarray      # per-user median latency
    quartile: np.ndarray        # 0..3 per user (0 = fastest)
    cuts_ms: np.ndarray         # the three interior cut points

    def users_in(self, quartile_index: int) -> np.ndarray:
        """User codes belonging to quartile ``quartile_index`` (0-based)."""
        return self.user_codes[self.quartile == quartile_index]


def assign_quartiles(logs: LogStore, min_actions_per_user: int = 1) -> QuartileAssignment:
    """Group users into equal-population quartiles of median latency.

    Users with fewer than ``min_actions_per_user`` actions are excluded —
    their medians are too noisy to condition on.
    """
    codes, medians = logs.per_user_median_latency()
    if min_actions_per_user > 1:
        counted_codes, counts = logs.per_user_action_count()
        enough = dict(zip(counted_codes.tolist(), counts.tolist()))
        keep = np.array(
            [enough.get(int(c), 0) >= min_actions_per_user for c in codes], dtype=bool
        )
        codes, medians = codes[keep], medians[keep]
    if codes.size < 4:
        raise InsufficientDataError(
            f"need at least 4 qualifying users for quartiles, have {codes.size}"
        )
    cuts = np.quantile(medians, [0.25, 0.5, 0.75])
    quartile = np.searchsorted(cuts, medians, side="right")
    return QuartileAssignment(
        user_codes=codes, medians_ms=medians, quartile=quartile, cuts_ms=cuts
    )


def quartile_slices(
    logs: LogStore,
    assignment: QuartileAssignment | None = None,
    min_users: int = 0,
) -> Dict[str, LogStore]:
    """Split logs into four stores keyed by quartile name.

    With ``min_users > 0`` each slice must pass the aggregate-size privacy
    guard.
    """
    if assignment is None:
        assignment = assign_quartiles(logs)
    out: Dict[str, LogStore] = {}
    for q, name in enumerate(QUARTILE_NAMES):
        users = assignment.users_in(q)
        sliced = logs.where(user_codes=users)
        if min_users > 0:
            require_min_aggregate(sliced, min_users=min_users, what=f"quartile {name}")
        out[name] = sliced
    return out
