"""What-if analysis: predicted activity impact of latency changes.

The studies the paper opens with (Amazon, Google, Akamai) quantify what a
latency change does to user activity by *running the intervention*.
AutoSens's output enables the same estimate passively: with a measured
preference curve ρ and the unbiased (availability) distribution U, the
relative activity under a hypothetical latency transform ``g`` is

    activity ratio = Σ_L U(L) · ρ(g(L))  /  Σ_L U(L) · ρ(L)

— each moment of time keeps its availability share, but actions at the
transformed latency occur at the preference the curve assigns to it. The
normalization of ρ cancels in the ratio, so the normalized latency
preference is exactly enough.

Because the workload here is simulated, the prediction can be *checked*:
re-running the same candidate stream under the improved latency process
gives the true activity change (``benchmarks/bench_whatif.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigError, InsufficientDataError
from repro.core.result import PreferenceResult

LatencyTransform = Callable[[np.ndarray], np.ndarray]


def shift_ms(delta_ms: float) -> LatencyTransform:
    """Add ``delta_ms`` to every latency (negative = improvement)."""

    def transform(latencies: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(latencies, dtype=float) + delta_ms, 0.0)

    transform.description = f"shift {delta_ms:+.0f} ms"  # type: ignore[attr-defined]
    return transform


def scale(factor: float) -> LatencyTransform:
    """Multiply every latency by ``factor`` (e.g. 0.8 = 20 % faster)."""
    if factor <= 0:
        raise ConfigError(f"scale factor must be positive, got {factor}")

    def transform(latencies: np.ndarray) -> np.ndarray:
        return np.asarray(latencies, dtype=float) * factor

    transform.description = f"scale x{factor:g}"  # type: ignore[attr-defined]
    return transform


def cap_ms(ceiling_ms: float) -> LatencyTransform:
    """Clamp latency at ``ceiling_ms`` (an SLO-style tail fix)."""
    if ceiling_ms <= 0:
        raise ConfigError(f"cap must be positive, got {ceiling_ms}")

    def transform(latencies: np.ndarray) -> np.ndarray:
        return np.minimum(np.asarray(latencies, dtype=float), ceiling_ms)

    transform.description = f"cap at {ceiling_ms:.0f} ms"  # type: ignore[attr-defined]
    return transform


@dataclass(frozen=True)
class WhatIfReport:
    """Predicted relative activity under a latency transform."""

    activity_ratio: float
    transform_description: str
    coverage: float          # share of U mass where both ρ(L) and ρ(g(L)) are known
    mean_latency_before: float
    mean_latency_after: float

    @property
    def activity_change_pct(self) -> float:
        return (self.activity_ratio - 1.0) * 100.0


def predict_activity_impact(
    curve: PreferenceResult,
    transform: LatencyTransform,
    min_coverage: float = 0.7,
) -> WhatIfReport:
    """Estimate the activity change a latency transform would cause.

    Uses the curve's own unbiased counts as the availability distribution.
    Bins where the (transformed) latency falls outside the curve's valid
    range are excluded from both sums; ``coverage`` reports the retained
    availability mass, and a coverage below ``min_coverage`` raises —
    extrapolating a preference curve beyond its support is how what-if
    analyses go quietly wrong.
    """
    centers = curve.latencies
    u_mass = curve.unbiased_counts.astype(float)
    if u_mass.sum() <= 0:
        raise InsufficientDataError("the curve carries no unbiased mass")
    transformed = np.asarray(transform(centers), dtype=float)

    rho_now = curve.at(centers)
    rho_then = curve.at(transformed)
    ok = (~np.isnan(rho_now)) & (~np.isnan(rho_then)) & (u_mass > 0)
    coverage = float(u_mass[ok].sum() / u_mass.sum())
    if coverage < min_coverage:
        raise InsufficientDataError(
            f"only {coverage:.0%} of availability mass is covered by the "
            f"measured curve after the transform (need {min_coverage:.0%}); "
            "measure a wider latency range or use a milder transform"
        )
    baseline = float(np.sum(u_mass[ok] * rho_now[ok]))
    hypothetical = float(np.sum(u_mass[ok] * rho_then[ok]))
    if baseline <= 0:
        raise InsufficientDataError("baseline activity integral is zero")

    description = getattr(transform, "description", "custom transform")
    weights = u_mass[ok] / u_mass[ok].sum()
    return WhatIfReport(
        activity_ratio=hypothetical / baseline,
        transform_description=str(description),
        coverage=coverage,
        mean_latency_before=float(np.sum(weights * centers[ok])),
        mean_latency_after=float(np.sum(weights * transformed[ok])),
    )
