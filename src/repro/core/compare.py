"""Comparing preference curves: distances and stability reports.

The paper's Figure 9 eyeballs two months' curves lying on top of each
other; this module makes that check quantitative:

- :func:`curve_distance` — sup/mean gap between two NLP curves over their
  common valid support;
- :func:`stability_report` — pairwise distances across a set of curves
  (e.g. one per month) plus the latency of the worst disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigError, InsufficientDataError
from repro.core.result import PreferenceResult


@dataclass(frozen=True)
class CurveDistance:
    """Gap between two NLP curves over their common support."""

    max_abs_gap: float
    mean_abs_gap: float
    worst_latency_ms: float
    common_support_ms: Tuple[float, float]
    n_common_bins: int


def curve_distance(a: PreferenceResult, b: PreferenceResult) -> CurveDistance:
    """Pointwise comparison over bins where both curves are defined."""
    if a.bins != b.bins:
        raise ConfigError("curves must share one bin grid")
    both = a.valid & b.valid
    if not both.any():
        raise InsufficientDataError("the curves share no valid bins")
    gaps = np.abs(a.nlp[both] - b.nlp[both])
    centers = a.latencies[both]
    worst = int(np.argmax(gaps))
    return CurveDistance(
        max_abs_gap=float(gaps.max()),
        mean_abs_gap=float(gaps.mean()),
        worst_latency_ms=float(centers[worst]),
        common_support_ms=(float(centers.min()), float(centers.max())),
        n_common_bins=int(both.sum()),
    )


@dataclass
class StabilityReport:
    """Pairwise curve distances across labelled curves."""

    labels: List[str]
    pairwise: Dict[Tuple[str, str], CurveDistance]

    @property
    def max_abs_gap(self) -> float:
        return max(d.max_abs_gap for d in self.pairwise.values())

    @property
    def mean_abs_gap(self) -> float:
        return float(np.mean([d.mean_abs_gap for d in self.pairwise.values()]))

    def stable(self, tolerance: float) -> bool:
        """True when every pair agrees within ``tolerance`` everywhere."""
        return self.max_abs_gap <= tolerance

    def rows(self) -> List[List]:
        return [
            [f"{a} vs {b}", d.mean_abs_gap, d.max_abs_gap, d.worst_latency_ms]
            for (a, b), d in self.pairwise.items()
        ]


def stability_report(curves: Dict[str, PreferenceResult]) -> StabilityReport:
    """All-pairs comparison, e.g. across months (paper Fig. 9)."""
    labels = list(curves)
    if len(labels) < 2:
        raise InsufficientDataError("stability needs at least two curves")
    pairwise: Dict[Tuple[str, str], CurveDistance] = {}
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            pairwise[(a, b)] = curve_distance(curves[a], curves[b])
    return StabilityReport(labels=labels, pairwise=pairwise)
