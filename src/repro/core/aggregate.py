"""Privacy-preserving aggregate exchange.

The AutoSens pipeline's sufficient statistics — per-(time-slot, latency-bin)
action counts plus per-slot time-at-latency fractions — contain no user
identifiers, no content, and no individual timestamps. A service operator
can therefore export a :class:`~repro.core.alpha.SlottedCounts` table and
hand it to an analyst who never touches raw telemetry, in the spirit of the
paper's aggregate-only analysis posture.

This module provides JSON (de)serialization for those tables and
:func:`curve_from_counts`, which runs the downstream pipeline (α
correction, multi-reference averaging, smoothing, normalization) on a
table alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.errors import ConfigError, SchemaError
from repro.core.alpha import SlottedCounts, alpha_from_counts
from repro.core.pipeline import AutoSensConfig
from repro.core.preference import average_results
from repro.core.result import PreferenceResult
from repro.stats.histogram import Histogram1D, HistogramBins

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def save_counts(counts: SlottedCounts, path: PathLike) -> None:
    """Write a sufficient-statistics table to JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "scheme": counts.scheme,
        "bins": {
            "low": counts.bins.low,
            "high": counts.bins.high,
            "width": counts.bins.width,
        },
        "slot_ids": [int(s) for s in counts.slot_ids],
        "biased_counts": counts.biased_counts.tolist(),
        "time_fractions": counts.time_fractions.tolist(),
        "slot_seconds": (None if counts.slot_seconds is None
                         else counts.slot_seconds.tolist()),
    }
    Path(path).write_text(json.dumps(payload))


def load_counts(path: PathLike) -> SlottedCounts:
    """Read a table written by :func:`save_counts`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON: {exc}") from exc
    try:
        if payload["format_version"] != FORMAT_VERSION:
            raise SchemaError(
                f"{path}: unsupported format version {payload['format_version']}"
            )
        bins = HistogramBins(**payload["bins"])
        slot_seconds = payload.get("slot_seconds")
        return SlottedCounts(
            scheme=str(payload["scheme"]),
            slot_ids=np.asarray(payload["slot_ids"], dtype=np.int64),
            biased_counts=np.asarray(payload["biased_counts"], dtype=float),
            time_fractions=np.asarray(payload["time_fractions"], dtype=float),
            bins=bins,
            slot_seconds=(None if slot_seconds is None
                          else np.asarray(slot_seconds, dtype=float)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"{path}: malformed counts table: {exc}") from exc


def curve_from_counts(
    counts: SlottedCounts,
    config: Optional[AutoSensConfig] = None,
    slice_description: str = "",
) -> PreferenceResult:
    """Run the downstream AutoSens pipeline on a sufficient-statistics table.

    Equivalent to :meth:`AutoSens.preference_curve` on the raw rows the
    table was built from (the table *is* the pipeline's sufficient
    statistic), but computable without any access to the telemetry.
    """
    cfg = config or AutoSensConfig()
    if counts.bins != cfg.bins():
        raise ConfigError(
            "counts table bin grid does not match the configuration "
            f"({counts.bins} vs {cfg.bins()})"
        )
    computer = cfg.computer()
    references = counts.busiest_slots(cfg.n_reference_slots)
    n_actions = int(counts.biased_counts.sum())
    per_reference: List[PreferenceResult] = []
    for reference in references:
        alpha = alpha_from_counts(
            counts, reference_slot=reference,
            bin_average=cfg.alpha_bin_average,
            min_bin_count=cfg.alpha_min_bin_count,
        )
        slot_index = {int(s): i for i, s in enumerate(alpha.slot_ids)}
        pooled = np.zeros(counts.bins.count)
        for row, slot in enumerate(counts.slot_ids):
            a = alpha.alpha_by_slot[slot_index[int(slot)]]
            if a > 0:
                pooled += counts.biased_counts[row] / a
        biased = Histogram1D(counts.bins)
        biased.add_counts(pooled)
        unbiased = Histogram1D(counts.bins)
        unbiased.add_counts(counts.time_fractions.sum(axis=0) * 10_000.0)
        per_reference.append(computer.compute(
            biased, unbiased,
            slice_description=slice_description, n_actions=n_actions,
        ))
    result = average_results(per_reference, slice_description=slice_description)
    result.metadata["reference_slots"] = references
    result.metadata["from_aggregates"] = True
    return result
