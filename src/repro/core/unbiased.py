"""The unbiased latency distribution ``U`` (paper Section 2.2).

``U`` answers: *what would the latency have been at a time chosen without
regard to user behaviour?* There are no direct measurements at such times,
so the paper approximates ``U`` by repeatedly:

1. drawing a point in time uniformly at random over the observation window,
2. taking the latency sample (i.e. logged action) closest in time,
   breaking ties between equidistant/duplicate-time samples at random.

Because step 2 reuses *observed* samples, ``U`` is an approximation; it is
good wherever actions are dense relative to the latency level's correlation
time. The estimator here is batched: a caller decides how many query times
it needs, draws them in one inflated vectorized batch sized by the expected
acceptance rate (see ``slotted_counts`` in :mod:`repro.core.alpha`), and
resolves every query against the sorted sample times in a single fused
nearest-neighbour pass — there is no per-draw loop anywhere on the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError, EmptyDataError
from repro.stats.histogram import Histogram1D, HistogramBins
from repro.stats.rng import SeedLike, spawn_rng
from repro.stats.sampling import nearest_time_sample, random_times
from repro.telemetry.log_store import LogStore

#: Default number of random time draws, as a multiple of the sample count.
DEFAULT_OVERSAMPLE = 2.0


@dataclass(frozen=True)
class UnbiasedDraw:
    """The raw materials of one unbiased-distribution estimate.

    Kept for the Figure 3(a) illustration: the random query times and the
    indices of the latency samples they selected.
    """

    query_times: np.ndarray
    selected_indices: np.ndarray
    sample_times: np.ndarray
    sample_latencies: np.ndarray

    @property
    def selected_latencies(self) -> np.ndarray:
        return self.sample_latencies[self.selected_indices]


def draw_from_sorted(
    sorted_times: np.ndarray,
    sorted_latencies: np.ndarray,
    n_samples: Optional[int] = None,
    rng: SeedLike = None,
    time_range: Optional[Tuple[float, float]] = None,
    midpoints: Optional[np.ndarray] = None,
    has_duplicates: Optional[bool] = None,
) -> UnbiasedDraw:
    """The draw procedure over an already time-sorted sample view.

    Callers that draw repeatedly from one log slice (the waste-compensated
    top-up path in :func:`repro.core.alpha.slotted_counts`) sort once and
    come here per batch instead of re-sorting inside
    :func:`draw_unbiased_samples` every time. The sortedness invariant is
    the caller's responsibility, so the O(n) re-check is skipped; pass
    ``midpoints`` (:func:`repro.stats.sampling.midpoints_of`) and
    ``has_duplicates`` to also amortize the nearest-neighbour setup across
    batches.
    """
    times = np.asarray(sorted_times, dtype=float)
    if times.size == 0:
        raise EmptyDataError("cannot estimate the unbiased distribution from empty logs")
    generator = spawn_rng(rng)
    if time_range is None:
        lo, hi = float(times[0]), float(times[-1])
        if hi <= lo:  # all samples at one instant
            hi = lo + 1.0
    else:
        lo, hi = time_range
    if n_samples is None:
        n_samples = int(np.ceil(DEFAULT_OVERSAMPLE * times.size))
    queries = random_times(lo, hi, n_samples, rng=generator)
    selected = nearest_time_sample(
        times, queries, rng=generator,
        assume_sorted=True, midpoints=midpoints, has_duplicates=has_duplicates,
    )
    return UnbiasedDraw(
        query_times=queries,
        selected_indices=selected,
        sample_times=times,
        sample_latencies=np.asarray(sorted_latencies),
    )


def draw_unbiased_samples(
    logs: LogStore,
    n_samples: Optional[int] = None,
    rng: SeedLike = None,
    time_range: Optional[Tuple[float, float]] = None,
) -> UnbiasedDraw:
    """Run the random-time / nearest-sample procedure and keep the pieces."""
    if logs.is_empty:
        raise EmptyDataError("cannot estimate the unbiased distribution from empty logs")
    order = np.argsort(logs.times, kind="mergesort")
    return draw_from_sorted(
        logs.times[order],
        logs.latencies_ms[order],
        n_samples=n_samples,
        rng=rng,
        time_range=time_range,
    )


def unbiased_histogram(
    logs: LogStore,
    bins: HistogramBins,
    n_samples: Optional[int] = None,
    rng: SeedLike = None,
    time_range: Optional[Tuple[float, float]] = None,
    estimator: str = "sampling",
) -> Histogram1D:
    """Estimate ``U`` as a histogram over the shared latency bin grid.

    ``estimator="sampling"`` is the paper's Monte Carlo procedure;
    ``"voronoi"`` is its deterministic infinite-draw limit (see
    :func:`voronoi_weights`) — same expectation, zero sampling noise.
    """
    if estimator == "voronoi":
        order = np.argsort(logs.times, kind="mergesort")
        times = logs.times[order]
        latencies = logs.latencies_ms[order]
        weights = voronoi_weights(times, time_range=time_range)
        # Rescale so total weight equals the sample count: one weight unit
        # then means "one action's worth of time", keeping the stability
        # threshold (min unbiased count) comparable across estimators.
        total = weights.sum()
        if total > 0:
            weights = weights * (times.size / total)
        hist = Histogram1D(bins)
        hist.add(latencies, weights=weights)
        return hist
    if estimator != "sampling":
        raise ConfigError(
            f"unknown unbiased estimator {estimator!r}; "
            "use 'sampling' or 'voronoi'"
        )
    draw = draw_unbiased_samples(logs, n_samples=n_samples, rng=rng, time_range=time_range)
    hist = Histogram1D(bins)
    hist.add(draw.selected_latencies)
    return hist


def voronoi_weights(
    sorted_times: np.ndarray,
    time_range: Optional[Tuple[float, float]] = None,
) -> np.ndarray:
    """Per-sample weights equal to each sample's share of the time axis.

    As the number of random draws in the paper's estimator goes to
    infinity, the probability that a given sample is selected converges to
    the length of its 1-D Voronoi cell — the interval of times closer to
    it than to any neighbour — divided by the window length. Weighting
    samples by their cell lengths therefore computes the estimator's exact
    expectation with no Monte Carlo noise. Samples sharing one timestamp
    split their cell equally (the paper's random tie-break, in
    expectation).

    Returns weights normalized to sum to the window length.
    """
    times = np.asarray(sorted_times, dtype=float)
    if times.size == 0:
        raise EmptyDataError("no samples to weight")
    if times.size > 1 and np.any(np.diff(times) < 0):
        raise EmptyDataError("sorted_times must be sorted ascending")
    if time_range is None:
        lo, hi = float(times[0]), float(times[-1])
        if hi <= lo:
            hi = lo + 1.0
    else:
        lo, hi = time_range

    midpoints = 0.5 * (times[1:] + times[:-1])
    left_edges = np.concatenate([[lo], midpoints])
    right_edges = np.concatenate([midpoints, [hi]])
    weights = np.clip(right_edges - left_edges, 0.0, None)

    # Equal split across duplicate timestamps: a run of k identical times
    # shares one Voronoi cell; each member gets cell/k.
    if times.size > 1:
        run_start = np.searchsorted(times, times, side="left")
        run_end = np.searchsorted(times, times, side="right")
        run_len = (run_end - run_start).astype(float)
        if np.any(run_len > 1):
            run_sums = np.bincount(run_start, weights=weights, minlength=times.size)
            weights = run_sums[run_start] / run_len
    return weights
