"""Locality diagnostics (paper Section 2.1, Figures 1 and 2).

AutoSens only works if latency is *locally predictable*: users can only act
on a latency preference if slow and fast periods persist long enough to
notice. Two diagnostics establish this before any preference is inferred:

- :func:`locality_report` — the MSD/MAD ratio of the latency series
  against its shuffled and sorted extremes (Figure 1);
- :func:`density_latency_series` — per-window action density vs. window
  mean latency (Figure 2), whose negative correlation shows activity
  concentrates in low-latency periods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.errors import EmptyDataError, InsufficientDataError
from repro.stats.correlation import pearson, spearman
from repro.stats.msd import LocalityComparison, compare_locality
from repro.stats.rng import SeedLike
from repro.telemetry.log_store import LogStore
from repro.telemetry import timeutil


def locality_report(logs: LogStore, rng: SeedLike = None) -> LocalityComparison:
    """MSD/MAD of the observed latency series vs shuffled and sorted.

    The series is ordered by action timestamp, as logged.
    """
    if len(logs) < 3:
        raise EmptyDataError("need at least three actions for a locality report")
    ordered = logs.sorted_by_time()
    comparison = compare_locality(ordered.latencies_ms, rng=rng)
    if obs.current().enabled:
        from repro.obs import probes

        probes.emit(probes.probe_locality(
            comparison.actual, comparison.shuffled, comparison.sorted))
    return comparison


@dataclass
class DensityLatencySeries:
    """Windowed action-rate and mean-latency series plus their correlation."""

    window_starts: np.ndarray
    action_counts: np.ndarray
    mean_latency_ms: np.ndarray
    window_seconds: float

    @property
    def pearson_correlation(self) -> float:
        """Correlation of count vs latency over non-empty windows."""
        ok = self.action_counts > 0
        if ok.sum() < 2:
            raise InsufficientDataError("too few non-empty windows for a correlation")
        return pearson(self.action_counts[ok], self.mean_latency_ms[ok])

    @property
    def spearman_correlation(self) -> float:
        ok = self.action_counts > 0
        if ok.sum() < 2:
            raise InsufficientDataError("too few non-empty windows for a correlation")
        return spearman(self.action_counts[ok], self.mean_latency_ms[ok])

    def detrended_correlation(self) -> float:
        """Correlation after removing hour-of-day means from both series.

        The raw correlation can be *positive* when the diurnal confounder
        dominates (busy hours have more users and more congestion — exactly
        the Section 2.4.1 problem). Subtracting each hour-of-day's mean from
        both series exposes the within-hour relationship: activity dips when
        latency spikes, the behaviour Figure 2 illustrates.
        """
        ok = self.action_counts > 0
        if ok.sum() < 2:
            raise InsufficientDataError("too few non-empty windows for a correlation")
        hours = ((self.window_starts % 86400.0) / 3600.0).astype(np.int64)
        counts = self.action_counts.astype(float).copy()
        lats = self.mean_latency_ms.copy()
        for h in np.unique(hours[ok]):
            sel = ok & (hours == h)
            counts[sel] -= counts[sel].mean()
            lats[sel] -= np.nanmean(lats[sel])
        return pearson(counts[ok], lats[ok])

    def normalized(self) -> tuple:
        """(counts, latency) rescaled to [0, 1] — the paper's Figure 2 axes
        are normalized for commercial sensitivity; ours for comparability."""
        def scale(x: np.ndarray) -> np.ndarray:
            x = x.astype(float)
            lo, hi = np.nanmin(x), np.nanmax(x)
            if hi <= lo:
                return np.zeros_like(x)
            return (x - lo) / (hi - lo)

        return scale(self.action_counts), scale(self.mean_latency_ms)


def density_latency_series(
    logs: LogStore,
    window_seconds: float = 60.0,
) -> DensityLatencySeries:
    """Bucket actions into fixed windows; count them and average latency.

    Windows with no actions get count 0 and NaN latency — the paper's
    "temporal density of the latency samples" compared to "the average
    latency in that window" (Section 2.1), computed over 1-minute windows.
    """
    if logs.is_empty:
        raise EmptyDataError("cannot window empty logs")
    t0, t1 = logs.time_range()
    idx = timeutil.window_index(logs.times - t0, window_seconds)
    n_windows = int(idx.max()) + 1
    counts = np.zeros(n_windows, dtype=float)
    sums = np.zeros(n_windows, dtype=float)
    np.add.at(counts, idx, 1.0)
    np.add.at(sums, idx, logs.latencies_ms)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / counts, np.nan)
    starts = t0 + window_seconds * np.arange(n_windows)
    series = DensityLatencySeries(
        window_starts=starts,
        action_counts=counts,
        mean_latency_ms=means,
        window_seconds=window_seconds,
    )
    if obs.current().enabled:
        from repro.obs import probes

        try:
            corr = series.detrended_correlation()
        except InsufficientDataError:
            corr = float("nan")
        probes.emit(probes.probe_density_correlation(corr, kind="detrended"))
    return series
