"""Streaming per-user median latency for quartile assignment at scale.

Section 3.4 groups users by their median experienced latency. With
billions of rows, per-user sample buffers are impossible; this module
tracks one P² quantile estimator (O(1) memory) per user and produces a
:class:`~repro.core.quartiles.QuartileAssignment`-compatible result.

    tracker = StreamingUserMedians()
    for chunk in read_jsonl_chunks(...):
        tracker.consume(chunk)
    assignment = tracker.assignment(min_actions_per_user=5)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import InsufficientDataError
from repro.core.quartiles import QuartileAssignment
from repro.stats.quantiles import P2Quantile
from repro.telemetry.log_store import LogStore


class StreamingUserMedians:
    """Accumulates per-user median-latency estimates across chunks.

    Users are keyed by their *string* id (``user_vocab`` entry), so chunks
    with independently built vocabularies combine correctly.
    """

    def __init__(self) -> None:
        self._estimators: Dict[str, P2Quantile] = {}

    @property
    def n_users(self) -> int:
        return len(self._estimators)

    def consume(self, logs: LogStore) -> None:
        """Feed one chunk of (successful) telemetry."""
        if logs.is_empty:
            return
        # Group rows by user code first: P2 updates are per-value Python
        # calls, so the grouping is the cheap part.
        order = np.argsort(logs.user_codes, kind="mergesort")
        codes = logs.user_codes[order]
        latencies = logs.latencies_ms[order]
        distinct, starts = np.unique(codes, return_index=True)
        boundaries = np.append(starts, codes.size)
        for i, code in enumerate(distinct):
            user_id = logs.user_vocab[int(code)]
            estimator = self._estimators.get(user_id)
            if estimator is None:
                estimator = P2Quantile(0.5)
                self._estimators[user_id] = estimator
            for value in latencies[boundaries[i]:boundaries[i + 1]]:
                estimator.add(float(value))

    def medians(self, min_actions_per_user: int = 1) -> Dict[str, float]:
        """Current median estimate per qualifying user id."""
        return {
            user_id: estimator.value()
            for user_id, estimator in self._estimators.items()
            if estimator.count >= min_actions_per_user
        }

    def assignment(
        self,
        reference_logs: LogStore,
        min_actions_per_user: int = 1,
    ) -> QuartileAssignment:
        """Quartile assignment keyed by ``reference_logs``' user codes.

        ``reference_logs`` provides the user vocabulary the returned codes
        refer to (typically the store you will slice next).
        """
        medians = self.medians(min_actions_per_user)
        codes, values = [], []
        for user_id, median in medians.items():
            if user_id in reference_logs.user_vocab:
                codes.append(reference_logs.user_vocab.index(user_id))
                values.append(median)
        if len(codes) < 4:
            raise InsufficientDataError(
                f"need at least 4 qualifying users for quartiles, have {len(codes)}"
            )
        code_arr = np.asarray(codes, dtype=np.int64)
        value_arr = np.asarray(values, dtype=float)
        cuts = np.quantile(value_arr, [0.25, 0.5, 0.75])
        quartile = np.searchsorted(cuts, value_arr, side="right")
        return QuartileAssignment(
            user_codes=code_arr, medians_ms=value_arr,
            quartile=quartile, cuts_ms=cuts,
        )
