"""Uncertainty quantification for NLP curves.

The paper reports point curves; this reproduction adds a **day-level block
bootstrap**: whole days are resampled with replacement and the pipeline is
re-run on each replicate. Days are the natural block — the latency level
process decorrelates within hours, while within-day structure (diurnal
cycle, incidents) must be kept intact for the α machinery to see the same
kind of data.

The result is a pointwise percentile band, attached to a standard
:class:`PreferenceResult` so downstream rendering needs no changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import EmptyDataError, InsufficientDataError
from repro.core.pipeline import AutoSens, AutoSensConfig
from repro.core.result import PreferenceResult
from repro.parallel import resolve_executor
from repro.stats.rng import SeedLike, spawn_rng
from repro.telemetry.log_store import LogStore

SECONDS_PER_DAY = 86400.0


@dataclass
class BandedResult:
    """A point NLP curve plus a pointwise bootstrap band."""

    point: PreferenceResult
    low: np.ndarray
    high: np.ndarray
    confidence: float
    n_resamples: int

    def band_at(self, latency_ms: float) -> tuple:
        """(low, high) at a latency, interpolated like ``PreferenceResult.at``."""
        centers = self.point.latencies
        valid = ~(np.isnan(self.low) | np.isnan(self.high))
        if not valid.any():
            raise InsufficientDataError("the band has no valid bins")
        low = float(np.interp(latency_ms, centers[valid], self.low[valid],
                              left=np.nan, right=np.nan))
        high = float(np.interp(latency_ms, centers[valid], self.high[valid],
                               left=np.nan, right=np.nan))
        return low, high

    def halfwidth_at(self, latency_ms: float) -> float:
        low, high = self.band_at(latency_ms)
        return 0.5 * (high - low)

    def separated_from(self, other: "BandedResult", latency_ms: float) -> bool:
        """True when the two curves' bands do not overlap at ``latency_ms``."""
        a_low, a_high = self.band_at(latency_ms)
        b_low, b_high = other.band_at(latency_ms)
        return a_high < b_low or b_high < a_low


def _resample_days(logs: LogStore, rng: np.random.Generator) -> LogStore:
    """Draw days with replacement; keep each drawn day's rows at a shifted
    time so the replicate spans the same number of days."""
    start, end = logs.time_range()
    first_day = int(np.floor(start / SECONDS_PER_DAY))
    last_day = int(np.floor(end / SECONDS_PER_DAY))
    days = np.arange(first_day, last_day + 1)
    drawn = rng.choice(days, size=days.size, replace=True)
    pieces = []
    day_of_row = np.floor(logs.times / SECONDS_PER_DAY).astype(np.int64)
    for position, day in enumerate(drawn):
        mask = day_of_row == day
        if not np.any(mask):
            continue
        piece = logs.filter(mask)
        shift = (first_day + position - day) * SECONDS_PER_DAY
        piece = LogStore(
            times=piece.times + shift,
            latencies_ms=piece.latencies_ms,
            action_codes=piece.action_codes,
            user_codes=piece.user_codes,
            class_codes=piece.class_codes,
            success=piece.success,
            tz_offsets=piece.tz_offsets,
            action_vocab=piece.action_vocab,
            user_vocab=piece.user_vocab,
            class_vocab=piece.class_vocab,
        )
        pieces.append(piece)
    if not pieces:
        raise EmptyDataError("day resampling produced an empty replicate")
    out = pieces[0]
    for piece in pieces[1:]:
        out = out.concat(piece)
    return out.sorted_by_time()


def _replicate_task(payload: tuple) -> Optional[np.ndarray]:
    """Top-level (picklable) bootstrap task: one day-resampled NLP curve.

    Each replicate carries its own integer seed, pre-spawned by the caller,
    so the result is a pure function of the payload — independent of which
    worker runs it and in what order.
    """
    logs, cfg, seed, slice_kwargs = payload
    replicate_rng = np.random.default_rng(seed)
    replicate_logs = _resample_days(logs, replicate_rng)
    try:
        curve = AutoSens(cfg, cache=False).preference_curve(replicate_logs, **slice_kwargs)
    except (EmptyDataError, InsufficientDataError):
        return None
    return curve.nlp


def nlp_confidence_band(
    logs: LogStore,
    config: Optional[AutoSensConfig] = None,
    confidence: float = 0.9,
    n_resamples: int = 20,
    rng: SeedLike = None,
    executor=None,
    **slice_kwargs,
) -> BandedResult:
    """Point curve + day-block-bootstrap percentile band.

    ``slice_kwargs`` are forwarded to :meth:`AutoSens.preference_curve`
    (``action=``, ``user_class=``, ...). 20 resamples give a usable 90 %
    band; increase for smoother band edges. ``executor`` fans the
    replicates out (see :mod:`repro.parallel`); the band is bit-identical
    for every backend because each replicate owns a pre-spawned seed.
    """
    cfg = config or AutoSensConfig()
    generator = spawn_rng(rng)
    point = AutoSens(cfg).preference_curve(logs, **slice_kwargs)

    seeds = generator.integers(0, 2**63 - 1, size=n_resamples)
    payloads = [(logs, cfg, int(seed), slice_kwargs) for seed in seeds]
    rows = resolve_executor(executor).map_ordered(_replicate_task, payloads)
    replicates = np.full((n_resamples, point.nlp.size), np.nan)
    for i, row in enumerate(rows):
        if row is not None:
            replicates[i] = row
    if np.all(np.isnan(replicates)):
        raise InsufficientDataError("every bootstrap replicate failed")

    alpha = 1.0 - confidence
    counts = (~np.isnan(replicates)).sum(axis=0)
    low = np.full(point.nlp.size, np.nan)
    high = np.full(point.nlp.size, np.nan)
    enough = counts >= max(4, int(0.5 * n_resamples))
    if enough.any():
        low[enough] = np.nanquantile(replicates[:, enough], alpha / 2.0, axis=0)
        high[enough] = np.nanquantile(replicates[:, enough], 1.0 - alpha / 2.0, axis=0)
    return BandedResult(
        point=point, low=low, high=high,
        confidence=confidence, n_resamples=n_resamples,
    )
