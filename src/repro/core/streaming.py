"""Streaming / chunked AutoSens for warehouse-scale telemetry.

The paper runs on *several billion* actions — far beyond what fits in one
in-memory :class:`LogStore`. The sufficient statistics of the pipeline,
however, are tiny: per-(slot, latency-bin) biased counts and unbiased-draw
counts (:class:`~repro.core.alpha.SlottedCounts`). This module makes those
statistics **mergeable**, so telemetry can be processed chunk by chunk (or
shard by shard on different machines) and combined:

    accumulator = StreamingAutoSens(config)
    for chunk in read_jsonl_chunks("huge.jsonl.gz", rows_per_chunk=1_000_000):
        accumulator.consume(chunk.where(action="SelectMail"))
    curve = accumulator.preference_curve()

Caveat: the unbiased draw inside each chunk only sees that chunk's time
span, so chunks should be split on *time* boundaries (the natural layout
of server logs) — each chunk then contributes its own span's availability,
and merging is exact up to edge effects at chunk boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import ConfigError, EmptyDataError, InsufficientDataError
from repro.core.alpha import SlottedCounts, slotted_counts
from repro.core.pipeline import AutoSensConfig
from repro.core.result import PreferenceResult
from repro.stats.rng import RngFactory
from repro.telemetry.log_store import LogStore


def merge_slotted_counts(parts: List[SlottedCounts]) -> SlottedCounts:
    """Merge chunk-level sufficient statistics into one table.

    Biased counts add; unbiased time fractions combine weighted by each
    chunk's share of the slot's observed draws (equivalently, pooled raw
    draw counts are renormalized per slot).
    """
    if not parts:
        raise EmptyDataError("nothing to merge")
    first = parts[0]
    for other in parts[1:]:
        if other.scheme != first.scheme:
            raise ConfigError("cannot merge counts with different slot schemes")
        if other.bins != first.bins:
            raise ConfigError("cannot merge counts with different bin grids")

    all_slots = np.unique(np.concatenate([p.slot_ids for p in parts]))
    n_bins = first.bins.count
    c = np.zeros((all_slots.size, n_bins), dtype=float)
    u = np.zeros((all_slots.size, n_bins), dtype=float)
    seconds = np.zeros(all_slots.size, dtype=float)
    index = {int(s): i for i, s in enumerate(all_slots)}
    for part in parts:
        # f rows are per-chunk fractions of the slot's time *within that
        # chunk*; re-weight by the wall-clock seconds the chunk contributes
        # to the slot so the merge estimates the overall time-at-latency.
        for row, slot in enumerate(part.slot_ids):
            target = index[int(slot)]
            c[target] += part.biased_counts[row]
            if part.slot_seconds is not None:
                weight = float(part.slot_seconds[row])
            else:
                weight = max(part.biased_counts[row].sum(), 1.0)
            u[target] += part.time_fractions[row] * weight
            seconds[target] += weight
    with np.errstate(invalid="ignore", divide="ignore"):
        totals = u.sum(axis=1, keepdims=True)
        f = np.where(totals > 0, u / totals, 0.0)
    return SlottedCounts(
        scheme=first.scheme,
        slot_ids=all_slots,
        biased_counts=c,
        time_fractions=f,
        bins=first.bins,
        slot_seconds=seconds,
    )


@dataclass
class _ChunkStats:
    counts: SlottedCounts
    n_rows: int


class StreamingAutoSens:
    """Chunk-by-chunk accumulator with the same output as :class:`AutoSens`.

    ``consume`` ingests one (already sliced) chunk; ``preference_curve``
    merges everything seen so far and runs the standard downstream path.
    """

    def __init__(self, config: Optional[AutoSensConfig] = None) -> None:
        self.config = config or AutoSensConfig()
        self._rng = RngFactory(self.config.seed)
        self._chunks: List[_ChunkStats] = []
        self._slice_description = ""

    @property
    def n_rows(self) -> int:
        """Total rows consumed so far."""
        return sum(chunk.n_rows for chunk in self._chunks)

    def consume(self, logs: LogStore, description: str = "") -> None:
        """Ingest one chunk of telemetry (rows for one time span)."""
        if logs.is_empty:
            return
        cfg = self.config
        n_unbiased = int(np.ceil(cfg.unbiased_oversample * len(logs)))
        counts = slotted_counts(
            logs, cfg.bins(), scheme=cfg.slot_scheme,
            n_unbiased_samples=n_unbiased, rng=self._rng.child("chunk"),
        )
        self._chunks.append(_ChunkStats(counts=counts, n_rows=len(logs)))
        if description:
            self._slice_description = description

    def merged_counts(self) -> SlottedCounts:
        """The combined sufficient statistics."""
        if not self._chunks:
            raise EmptyDataError("no chunks consumed")
        return merge_slotted_counts([chunk.counts for chunk in self._chunks])

    def preference_curve(self) -> PreferenceResult:
        """Compute the NLP curve from everything consumed so far."""
        cfg = self.config
        if self.n_rows < cfg.min_actions:
            raise InsufficientDataError(
                f"consumed only {self.n_rows} rows; need {cfg.min_actions}"
            )
        from repro.core.aggregate import curve_from_counts

        result = curve_from_counts(
            self.merged_counts(), cfg,
            slice_description=self._slice_description,
        )
        result.metadata["chunks"] = len(self._chunks)
        return result


def iter_chunks_by_day(
    logs: LogStore,
    days_per_chunk: float = 1.0,
) -> Iterator[LogStore]:
    """Split a store into consecutive time chunks (helper for tests/demos)."""
    if logs.is_empty:
        return
    if days_per_chunk <= 0:
        raise ConfigError(f"days_per_chunk must be positive, got {days_per_chunk}")
    start, end = logs.time_range()
    width = days_per_chunk * 86400.0
    t = start
    while t <= end:
        chunk = logs.where(time_range=(t, t + width), success_only=False)
        if len(chunk):
            yield chunk
        t += width
