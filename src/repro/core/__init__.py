"""AutoSens core: the paper's methodology.

- :mod:`repro.core.biased` / :mod:`repro.core.unbiased` — the B and U
  latency distributions (Section 2.2);
- :mod:`repro.core.preference` — B/U → smoothed, normalized latency
  preference (Section 2.3);
- :mod:`repro.core.alpha` — the time-based activity factor α and the
  time-confounder correction (Section 2.4.1), plus the Table 1 worked
  example;
- :mod:`repro.core.locality` — the MSD/MAD and density diagnostics
  (Section 2.1, Figures 1-2);
- :mod:`repro.core.quartiles` — user conditioning quartiles (Section 3.4);
- :mod:`repro.core.pipeline` — the :class:`AutoSens` engine tying it all
  together;
- :mod:`repro.core.validation` — recovery checks against ground truth.
"""

from repro.core.alpha import (
    AlphaEstimate,
    SlottedCounts,
    WorkedExample,
    alpha_from_counts,
    corrected_histograms,
    corrected_histograms_from_counts,
    estimate_alpha,
    slot_labels,
    slot_of_times,
    slotted_counts,
    worked_example,
)
from repro.core.aggregate import curve_from_counts, load_counts, save_counts
from repro.core.biased import biased_histogram
from repro.core.compare import CurveDistance, StabilityReport, curve_distance, stability_report
from repro.core.streaming import (
    StreamingAutoSens,
    iter_chunks_by_day,
    merge_slotted_counts,
)
from repro.core.locality import (
    DensityLatencySeries,
    density_latency_series,
    locality_report,
)
from repro.core.pipeline import (
    AutoSens,
    AutoSensConfig,
    DegradePolicy,
    SubsamplePolicy,
)
from repro.core.slice_cache import SliceCache
from repro.core.preference import PreferenceComputer, average_results
from repro.core.preflight import PreflightReport, preflight
from repro.core.quartiles import (
    QUARTILE_NAMES,
    QuartileAssignment,
    assign_quartiles,
    quartile_slices,
)
from repro.core.result import PreferenceResult
from repro.core.uncertainty import BandedResult, nlp_confidence_band
from repro.core.user_medians import StreamingUserMedians
from repro.core.whatif import (
    WhatIfReport,
    cap_ms,
    predict_activity_impact,
    scale,
    shift_ms,
)
from repro.core.unbiased import (
    UnbiasedDraw,
    draw_unbiased_samples,
    unbiased_histogram,
    voronoi_weights,
)
from repro.core.validation import (
    PAPER_ANCHOR_LATENCIES,
    AnchorComparison,
    RecoveryReport,
    compare_to_truth,
    monotone_ordering,
)

__all__ = [
    "AutoSens",
    "StreamingAutoSens",
    "iter_chunks_by_day",
    "merge_slotted_counts",
    "curve_from_counts",
    "save_counts",
    "load_counts",
    "BandedResult",
    "nlp_confidence_band",
    "StreamingUserMedians",
    "WhatIfReport",
    "predict_activity_impact",
    "shift_ms",
    "scale",
    "cap_ms",
    "AutoSensConfig",
    "DegradePolicy",
    "SubsamplePolicy",
    "PreferenceResult",
    "PreferenceComputer",
    "PreflightReport",
    "preflight",
    "average_results",
    "biased_histogram",
    "CurveDistance",
    "StabilityReport",
    "curve_distance",
    "stability_report",
    "unbiased_histogram",
    "voronoi_weights",
    "draw_unbiased_samples",
    "UnbiasedDraw",
    "AlphaEstimate",
    "SlottedCounts",
    "WorkedExample",
    "alpha_from_counts",
    "slotted_counts",
    "estimate_alpha",
    "corrected_histograms",
    "corrected_histograms_from_counts",
    "SliceCache",
    "worked_example",
    "slot_labels",
    "slot_of_times",
    "locality_report",
    "density_latency_series",
    "DensityLatencySeries",
    "assign_quartiles",
    "quartile_slices",
    "QuartileAssignment",
    "QUARTILE_NAMES",
    "compare_to_truth",
    "monotone_ordering",
    "RecoveryReport",
    "AnchorComparison",
    "PAPER_ANCHOR_LATENCIES",
]
