"""Recovery validation: measured NLP curves vs. ground truth / paper anchors.

The synthetic workload knows its true preference curves, so the reproduction
can quantify how well AutoSens recovers them. :func:`compare_to_truth`
evaluates a measured :class:`PreferenceResult` against any callable ground
truth at chosen anchor latencies and reports per-anchor and aggregate error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import InsufficientDataError
from repro.core.result import PreferenceResult

#: The latencies the paper quotes SelectMail values at (Section 3.2/3.5).
PAPER_ANCHOR_LATENCIES = (500.0, 1000.0, 1500.0, 2000.0)


@dataclass(frozen=True)
class AnchorComparison:
    """Measured vs expected NLP at one latency."""

    latency_ms: float
    expected: float
    measured: float

    @property
    def error(self) -> float:
        return self.measured - self.expected

    @property
    def abs_error(self) -> float:
        return abs(self.error)


@dataclass
class RecoveryReport:
    """Full comparison of a measured curve against ground truth."""

    anchors: List[AnchorComparison]
    slice_description: str = ""

    @property
    def max_abs_error(self) -> float:
        return max(a.abs_error for a in self.anchors)

    @property
    def mean_abs_error(self) -> float:
        return float(np.mean([a.abs_error for a in self.anchors]))

    def passes(self, tolerance: float) -> bool:
        return self.max_abs_error <= tolerance

    def rows(self) -> List[Dict[str, float]]:
        """Tabular form for report printers."""
        return [
            {
                "latency_ms": a.latency_ms,
                "expected": a.expected,
                "measured": a.measured,
                "error": a.error,
            }
            for a in self.anchors
        ]


def compare_to_truth(
    result: PreferenceResult,
    truth: Callable[[np.ndarray], np.ndarray],
    anchor_latencies: Sequence[float] = PAPER_ANCHOR_LATENCIES,
) -> RecoveryReport:
    """Evaluate a measured curve against a ground-truth callable.

    ``truth`` must return the *normalized* expected preference (1 at the
    reference latency). Anchors outside the measured curve's valid range
    are skipped; if all are skipped, the data were insufficient.
    """
    anchors: List[AnchorComparison] = []
    lo, hi = result.valid_range()
    lats = np.asarray([x for x in anchor_latencies if lo <= x <= hi], dtype=float)
    if lats.size == 0:
        raise InsufficientDataError(
            f"no anchor latency falls in the measured range [{lo:.0f}, {hi:.0f}] ms"
        )
    expected = np.asarray(truth(lats), dtype=float)
    for latency, exp in zip(lats, expected):
        measured = float(result.at(float(latency)))
        anchors.append(
            AnchorComparison(latency_ms=float(latency), expected=float(exp), measured=measured)
        )
    return RecoveryReport(anchors=anchors, slice_description=result.slice_description)


def monotone_ordering(curves: Dict[str, PreferenceResult], at_latency: float) -> List[str]:
    """Order curve labels by NLP at a probe latency, most sensitive first.

    Used to check qualitative findings like "Q1 is more sensitive than Q4"
    or "business drops more than consumer".
    """
    values = {}
    for label, curve in curves.items():
        values[label] = float(curve.at(at_latency))
    return sorted(values, key=values.get)
