"""Memoization of expensive per-slice intermediates.

The analysis layer repeatedly evaluates the same telemetry slice: the
figure drivers share slices across figures, bootstrap bands resample around
one slice, and sweeps revisit the full store once per segment. The
expensive intermediates — the sliced :class:`~repro.telemetry.log_store.LogStore`
and the :class:`~repro.core.alpha.SlottedCounts` tensor with its Monte
Carlo unbiased draw — are pure functions of ``(log store, slice predicate,
config fingerprint)`` now that the pipeline derives its randomness from
pure named streams (:meth:`repro.stats.rng.RngFactory.stream`). That
purity is what makes memoization *exact*: a cache hit returns bit-identical
arrays to a recompute.

Keys are plain tuples: a ``kind`` tag, an identity token for the log store
(strong-pinned so ``id()`` stays valid), the normalized slice predicate,
and :meth:`repro.core.pipeline.AutoSensConfig.fingerprint`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable

import repro.obs as obs
from repro.errors import ConfigError

__all__ = ["SliceCache"]


class SliceCache:
    """A small LRU cache for per-slice pipeline intermediates.

    Entries are evicted least-recently-used once ``max_entries`` is
    exceeded. Values are returned by reference — callers must treat them
    as immutable (the pipeline only ever reads them).
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        # Strong references keeping id()-based tokens valid for the cache's
        # lifetime (bounded by the number of distinct stores analyzed).
        self._pins: Dict[int, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def token(self, obj: Any) -> int:
        """A hashable identity token for an unhashable object.

        Pins a strong reference so the token cannot be recycled by a new
        object at the same address while the cache lives.
        """
        self._pins[id(obj)] = obj
        return id(obj)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on first use."""
        kind = key[0] if isinstance(key, tuple) and key else "value"
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.inc("autosens_slice_cache_total", outcome="hit", kind=str(kind))
            return self._entries[key]
        value = compute()
        self.misses += 1
        obs.inc("autosens_slice_cache_total", outcome="miss", kind=str(kind))
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.inc("autosens_slice_cache_evictions_total")
        return value

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current size, metrics-free."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        """Drop every entry, pinned reference and counter."""
        self._entries.clear()
        self._pins.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SliceCache(entries={len(self._entries)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
