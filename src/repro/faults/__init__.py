"""Deterministic fault injection for chaos-testing the pipeline.

Real OWA-scale telemetry arrives dirty: malformed lines, NaN latencies,
skewed clocks, duplicated batches, collector outages. This package turns
each of those failure modes into a seeded, composable
:class:`~repro.faults.specs.FaultSpec` so every one has a reproducible
chaos test — the ingestion layer (:mod:`repro.telemetry.ingest`) and the
fault-tolerant runtime (:mod:`repro.parallel`) are exercised against them
in ``tests/faults/``.

:mod:`repro.faults.tasks` adds *execution-level* faults — tasks that hang
(:class:`~repro.faults.tasks.StalledTask`) or balloon their working set
(:class:`~repro.faults.tasks.MemoryHog`) — for chaos-testing the
supervision layer in :mod:`repro.runtime`.
"""

from repro.faults.degradations import (
    DEGRADATION_FAULT_SPECS,
    HeavyUserFault,
    MNARDropFault,
    ThinningFault,
)
from repro.faults.incidents import INCIDENT_FAULT_SPECS, IncidentFault
from repro.faults.inject import corrupt_jsonl, corrupt_records, write_corrupted
from repro.faults.tasks import MemoryHog, StalledTask
from repro.faults.specs import (
    DEFAULT_FAULT_SPECS,
    ClockSkew,
    DropFields,
    DuplicateRows,
    FaultPlan,
    FaultSpec,
    GapWindow,
    MalformedLines,
    NaNLatency,
    NegativeLatency,
    OutlierLatency,
    OutOfOrderTimestamps,
    TruncatedLines,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "MalformedLines",
    "TruncatedLines",
    "NaNLatency",
    "NegativeLatency",
    "OutlierLatency",
    "ClockSkew",
    "OutOfOrderTimestamps",
    "DuplicateRows",
    "DropFields",
    "GapWindow",
    "IncidentFault",
    "INCIDENT_FAULT_SPECS",
    "ThinningFault",
    "MNARDropFault",
    "HeavyUserFault",
    "DEGRADATION_FAULT_SPECS",
    "DEFAULT_FAULT_SPECS",
    "StalledTask",
    "MemoryHog",
    "corrupt_records",
    "corrupt_jsonl",
    "write_corrupted",
]
