"""Row-level shadows of the sensitivity-suite degradation operators.

The operators in :mod:`repro.workload.degradations` transform an
in-memory :class:`~repro.telemetry.log_store.LogStore` — the shape the
sensitivity harness wants. This module mirrors each of them as a
:class:`~repro.faults.specs.FaultSpec` over serialized rows, so
``corrupt_jsonl`` chaos runs can compose gradual degradation (diurnal
thinning, MNAR dropout, heavy-user duplication) with syntactic corruption
and incident windows over *any* telemetry file.

Each catalog entry registers into
:data:`repro.faults.specs.DEFAULT_FAULT_SPECS` under a ``degrade-*``
name, so the chaos sweep in ``tests/faults/test_chaos_pipeline.py`` picks
them up automatically. The draw discipline matches
:class:`~repro.faults.incidents.IncidentFault`: a fixed number of uniform
draws per parsed row, whatever the knobs say, so tuning one probability
never perturbs another selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.faults.specs import DEFAULT_FAULT_SPECS, FaultSpec, Row

__all__ = [
    "ThinningFault",
    "MNARDropFault",
    "HeavyUserFault",
    "DEGRADATION_FAULT_SPECS",
]


def _local_hour(row: dict) -> float:
    """Local hour of day, honouring the row's timezone offset."""
    time = float(row["time"])
    offset = row.get("tz_offset_hours", 0.0)
    if isinstance(offset, (int, float)) and math.isfinite(float(offset)):
        time += 3600.0 * float(offset)
    return (time / 3600.0) % 24.0


def _has_finite(row: Row, field: str) -> bool:
    if not isinstance(row, dict):
        return False
    value = row.get(field)
    return isinstance(value, (int, float)) and math.isfinite(float(value))


@dataclass(frozen=True)
class ThinningFault(FaultSpec):
    """Diurnal load-shedding: drop probability follows the traffic peak.

    The row-level shadow of
    :class:`~repro.workload.degradations.DiurnalThinning`: a row at local
    hour ``h`` is dropped with probability
    ``rate * 0.5 * (1 + cos(2π (h - peak_hour) / 24))`` — maximal at
    ``peak_hour``, zero at the trough. ``rate`` is the *peak* drop
    probability; the average drop share is roughly ``rate / 2``.
    """

    peak_hour: float = 13.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.peak_hour < 24.0:
            raise ConfigError(
                f"peak_hour must be in [0, 24), got {self.peak_hour}")

    def apply(self, rows: List[Row], rng: np.random.Generator) -> List[Row]:
        out: List[Row] = []
        for row in rows:
            if not isinstance(row, dict):
                out.append(row)
                continue
            u = rng.random()  # one draw per parsed row, whatever the rate
            if not _has_finite(row, "time"):
                out.append(row)
                continue
            weight = 0.5 * (1.0 + math.cos(
                2.0 * math.pi * (_local_hour(row) - self.peak_hour) / 24.0))
            if u >= self.rate * weight:
                out.append(row)
        return out


@dataclass(frozen=True)
class MNARDropFault(FaultSpec):
    """Informative (MNAR) dropout: slow rows vanish more often than fast.

    The row-level shadow of
    :class:`~repro.workload.degradations.InformativeMissingness`: drop
    probability is a logistic ramp in the row's own latency, centered at
    ``knee_ms`` with scale ``width_ms`` and ceiling ``rate``. Rows without
    a finite latency are kept — value-level corruption is a different
    fault class.
    """

    knee_ms: float = 450.0
    width_ms: float = 150.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.knee_ms <= 0 or self.width_ms <= 0:
            raise ConfigError(
                f"knee_ms and width_ms must be positive, got "
                f"knee={self.knee_ms}, width={self.width_ms}")

    def apply(self, rows: List[Row], rng: np.random.Generator) -> List[Row]:
        out: List[Row] = []
        for row in rows:
            if not isinstance(row, dict):
                out.append(row)
                continue
            u = rng.random()  # one draw per parsed row, whatever the rate
            if not _has_finite(row, "latency_ms"):
                out.append(row)
                continue
            z = (float(row["latency_ms"]) - self.knee_ms) / self.width_ms
            ez = math.exp(-abs(z))
            sigmoid = 1.0 / (1.0 + ez) if z >= 0 else ez / (1.0 + ez)
            if u >= self.rate * sigmoid:
                out.append(row)
        return out


@dataclass(frozen=True)
class HeavyUserFault(FaultSpec):
    """Heavy-user dominance: the busiest users are emitted again.

    The row-level shadow of
    :class:`~repro.workload.degradations.HeavyUserSkew`: the top
    ``heavy_share`` of users by row count (ties broken by user id, so the
    heavy set is a pure function of the rows) have each of their rows
    duplicated with probability ``rate``, inflating their weight in any
    pooled per-event estimate without perturbing anyone's latencies.
    """

    heavy_share: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.heavy_share <= 1.0:
            raise ConfigError(
                f"heavy_share must be in (0, 1], got {self.heavy_share}")

    def apply(self, rows: List[Row], rng: np.random.Generator) -> List[Row]:
        counts: dict = {}
        for row in rows:
            if isinstance(row, dict) and isinstance(row.get("user_id"), str):
                counts[row["user_id"]] = counts.get(row["user_id"], 0) + 1
        n_heavy = math.ceil(self.heavy_share * len(counts)) if counts else 0
        ranked = sorted(counts, key=lambda uid: (-counts[uid], uid))
        heavy = set(ranked[:n_heavy])

        out: List[Row] = []
        for row in rows:
            if not isinstance(row, dict):
                out.append(row)
                continue
            u = rng.random()  # one draw per parsed row, whatever the rate
            out.append(row)
            if row.get("user_id") in heavy and u < self.rate:
                out.append(dict(row))
        return out


#: Row-level shadow of every sensitivity-suite degradation operator
#: (:mod:`repro.workload.degradations`), rates kept moderate so the chaos
#: full-sweep still leaves the estimator enough rows to answer.
DEGRADATION_FAULT_SPECS = {
    "degrade-thinning": lambda: ThinningFault(rate=0.3, peak_hour=13.0),
    "degrade-mnar": lambda: MNARDropFault(rate=0.3, knee_ms=450.0,
                                          width_ms=150.0),
    "degrade-user-skew": lambda: HeavyUserFault(rate=0.5, heavy_share=0.1),
}

DEFAULT_FAULT_SPECS.update(DEGRADATION_FAULT_SPECS)
