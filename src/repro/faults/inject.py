"""Apply fault plans to telemetry on disk and in memory.

The injectors sit at the natural chaos boundary — between a clean source
(the workload generator, a pristine log file) and the ingestion layer under
test. ``corrupt_jsonl`` rewrites a JSONL file through a plan;
``corrupt_records`` does the same for an in-memory record stream.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.faults.specs import FaultPlan, Row
from repro.telemetry.record import ActionRecord

__all__ = ["corrupt_records", "corrupt_jsonl", "write_corrupted"]

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def corrupt_records(
    records: Iterable[ActionRecord], plan: FaultPlan
) -> List[Row]:
    """Run records through a plan; returns dict rows and/or garbage lines."""
    return plan.apply([record.to_dict() for record in records])


def write_corrupted(rows: Iterable[Row], path: PathLike) -> int:
    """Serialize a corrupted row stream to JSONL; returns line count.

    Dicts are JSON-encoded (``allow_nan`` stays on: a NaN latency must
    round-trip so the ingest layer, not the injector, is what catches it);
    raw strings are written verbatim.
    """
    path = Path(path)
    count = 0
    with _open_text(path, "w") as fh:
        for row in rows:
            if isinstance(row, dict):
                fh.write(json.dumps(row, separators=(",", ":")))
            else:
                fh.write(row)
            fh.write("\n")
            count += 1
    return count


def corrupt_jsonl(src: PathLike, dst: PathLike, plan: FaultPlan) -> int:
    """Rewrite a JSONL file through a fault plan; returns lines written.

    Source lines that already fail to parse pass through verbatim (they
    are, after all, exactly the kind of fault the plan wants present).
    """
    src, dst = Path(src), Path(dst)
    rows: List[Row] = []
    with _open_text(src, "r") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line.strip():
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                rows.append(line)
                continue
            rows.append(parsed if isinstance(parsed, dict) else line)
    return write_corrupted(plan.apply(rows), dst)
