"""Composable, deterministic fault specifications.

Every failure mode observed in real telemetry pipelines gets a
:class:`FaultSpec`: a pure, seeded transform over a stream of rows. A row
is either a parsed ``dict`` (one :meth:`ActionRecord.to_dict` object) or a
raw ``str`` — a line that is already garbage and will be written verbatim.
Specs compose through :class:`FaultPlan`, which derives one independent
random stream per spec from ``(seed, position, spec name)`` so a plan's
output is a pure function of its inputs: every chaos test is reproducible.

The catalogue covers both *syntactic* corruption the ingest layer must
catch (malformed/truncated lines, dropped fields) and *semantic* corruption
that parses fine but must not silently bend a curve (NaN/negative/outlier
latencies, clock skew, out-of-order timestamps, duplicated rows, gap
windows).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.errors import ConfigError
from repro.stats.rng import RngFactory

__all__ = [
    "Row",
    "FaultSpec",
    "FaultPlan",
    "MalformedLines",
    "TruncatedLines",
    "NaNLatency",
    "NegativeLatency",
    "OutlierLatency",
    "ClockSkew",
    "OutOfOrderTimestamps",
    "DuplicateRows",
    "DropFields",
    "GapWindow",
    "DEFAULT_FAULT_SPECS",
]

#: One telemetry row in flight: parsed object or already-corrupted raw line.
Row = Union[dict, str]

_GARBAGE_LINES = (
    "{not json at all",
    "<<<binary\x00garbage>>>",
    "ERROR 2026-08-05T12:00:00 upstream timeout",
    '{"time": }',
    "[]",
)


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"fault rate must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class FaultSpec:
    """Base class: a named, seeded transform over a row stream."""

    rate: float = 0.05

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    @property
    def name(self) -> str:
        return type(self).__name__

    def apply(self, rows: List[Row], rng: np.random.Generator) -> List[Row]:
        """Return the corrupted stream; must not mutate input rows."""
        out: List[Row] = []
        for row in rows:
            if isinstance(row, dict) and rng.random() < self.rate:
                out.extend(self.corrupt_row(dict(row), rng))
            else:
                out.append(row)
        return out

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        """Corrupt one selected row; may emit zero, one or several rows."""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class MalformedLines(FaultSpec):
    """Replace the serialized line with unparseable garbage."""

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        return [_GARBAGE_LINES[int(rng.integers(0, len(_GARBAGE_LINES)))]]


@dataclass(frozen=True)
class TruncatedLines(FaultSpec):
    """Cut the serialized line short (a writer died or a disk filled up)."""

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        text = json.dumps(row, separators=(",", ":"))
        cut = int(rng.integers(1, max(2, len(text) - 1)))
        return [text[:cut]]


@dataclass(frozen=True)
class NaNLatency(FaultSpec):
    """Latency becomes NaN — parses fine, slips past range checks."""

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        row["latency_ms"] = float("nan")
        return [row]


@dataclass(frozen=True)
class NegativeLatency(FaultSpec):
    """Latency flips negative (a clock-diff bug upstream)."""

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        row["latency_ms"] = -abs(float(row.get("latency_ms", 0.0))) - 1.0
        return [row]


@dataclass(frozen=True)
class OutlierLatency(FaultSpec):
    """Latency inflated by orders of magnitude (retry storms, stuck timers)."""

    factor: float = 1000.0

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        row["latency_ms"] = float(row.get("latency_ms", 1.0)) * self.factor
        return [row]


@dataclass(frozen=True)
class ClockSkew(FaultSpec):
    """Timestamps shifted by up to ``max_skew_s`` (drifting client clocks)."""

    max_skew_s: float = 6 * 3600.0

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        row["time"] = float(row.get("time", 0.0)) + float(
            rng.uniform(-self.max_skew_s, self.max_skew_s)
        )
        return [row]


@dataclass(frozen=True)
class OutOfOrderTimestamps(FaultSpec):
    """Permute rows inside windows (log shippers batch and reorder).

    ``rate`` is the probability that each non-overlapping ``window``-row
    block gets shuffled.
    """

    window: int = 32

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.window < 2:
            raise ConfigError(f"window must be >= 2, got {self.window}")

    def apply(self, rows: List[Row], rng: np.random.Generator) -> List[Row]:
        out = list(rows)
        for start in range(0, len(out), self.window):
            if rng.random() < self.rate:
                block = out[start:start + self.window]
                order = rng.permutation(len(block))
                out[start:start + self.window] = [block[i] for i in order]
        return out


@dataclass(frozen=True)
class DuplicateRows(FaultSpec):
    """Emit selected rows twice (at-least-once delivery)."""

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        return [row, dict(row)]


@dataclass(frozen=True)
class DropFields(FaultSpec):
    """Remove fields from the object (schema drift, partial writes)."""

    fields: Sequence[str] = ("latency_ms",)

    def corrupt_row(self, row: dict, rng: np.random.Generator) -> Sequence[Row]:
        for field_name in self.fields:
            row.pop(field_name, None)
        return [row]


@dataclass(frozen=True)
class GapWindow(FaultSpec):
    """Delete every row inside one time window (a collector outage).

    ``start_frac``/``length_frac`` position the window as fractions of the
    stream's observed time span; ``rate`` is unused.
    """

    start_frac: float = 0.4
    length_frac: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.start_frac <= 1.0 or not 0.0 < self.length_frac <= 1.0:
            raise ConfigError(
                f"gap window fractions out of range: start={self.start_frac}, "
                f"length={self.length_frac}"
            )

    def apply(self, rows: List[Row], rng: np.random.Generator) -> List[Row]:
        times = [
            float(r["time"]) for r in rows
            if isinstance(r, dict) and isinstance(r.get("time"), (int, float))
            and math.isfinite(float(r["time"]))
        ]
        if not times:
            return list(rows)
        t0, t1 = min(times), max(times)
        span = t1 - t0
        lo = t0 + self.start_frac * span
        hi = lo + self.length_frac * span

        def in_gap(row: Row) -> bool:
            if not isinstance(row, dict):
                return False
            time = row.get("time")
            return isinstance(time, (int, float)) and lo <= float(time) < hi

        return [r for r in rows if not in_gap(r)]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded composition of fault specs.

    ``apply`` derives one independent generator per spec from
    ``(seed, position, spec name)`` — pure, so the same plan over the same
    rows always produces the same corruption, regardless of how many specs
    precede or follow.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0

    def apply(self, rows: Sequence[Row]) -> List[Row]:
        factory = RngFactory(self.seed)
        out = list(rows)
        for i, spec in enumerate(self.specs):
            rng = factory.stream(f"fault/{i}/{spec.name}")
            out = spec.apply(out, rng)
        return out

    def describe(self) -> str:
        return " -> ".join(spec.name for spec in self.specs) or "(no faults)"


#: One default-configured instance of every fault class — what the chaos
#: suite sweeps over. Factories, so each test gets a fresh spec.
DEFAULT_FAULT_SPECS: Dict[str, Callable[[], FaultSpec]] = {
    "malformed-lines": lambda: MalformedLines(rate=0.03),
    "truncated-lines": lambda: TruncatedLines(rate=0.03),
    "nan-latency": lambda: NaNLatency(rate=0.03),
    "negative-latency": lambda: NegativeLatency(rate=0.03),
    "outlier-latency": lambda: OutlierLatency(rate=0.02),
    "clock-skew": lambda: ClockSkew(rate=0.05),
    "out-of-order": lambda: OutOfOrderTimestamps(rate=0.5, window=16),
    "duplicate-rows": lambda: DuplicateRows(rate=0.05),
    "dropped-fields": lambda: DropFields(rate=0.03),
    "gap-window": lambda: GapWindow(start_frac=0.35, length_frac=0.15),
}
