"""Task-level fault injection: workers that hang or eat memory.

The row-stream specs in :mod:`repro.faults.specs` corrupt *data*. The
wrappers here corrupt *execution*, reproducing the two runtime failure
modes PR 4's supervision layer exists for:

- :class:`StalledTask` — the wrapped task sleeps instead of finishing on
  selected items: a live-but-stuck worker that crash recovery alone can
  never see (the process stays healthy, the heartbeat stops). The
  watchdog's job is to kill it.
- :class:`MemoryHog` — the wrapped task allocates a bounded ballast of
  memory (in chunks, up to ``ballast_mb``) while computing selected
  items, simulating a slice whose working set balloons. The result is
  unchanged — pressure, not corruption — so chaos tests can assert the
  surviving outputs stay bit-identical.

Both wrappers are picklable (they ship to process workers), select items
through a picklable ``selector`` predicate so the injection is a pure
function of the payload, and mirror the wrapped function's identity the
way the checkpoint/heartbeat shims do, keeping span keys stable.

:class:`StalledTask` only stalls inside a *worker* process by default
(the spawning pid is recorded at construction): the serial recovery path
in the parent then completes normally, which is exactly the requeue
semantics the watchdog relies on.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional

__all__ = ["StalledTask", "MemoryHog"]


def _mirror_identity(wrapper: Any, fn: Callable[[Any], Any]) -> None:
    wrapper.__qualname__ = getattr(fn, "__qualname__", type(fn).__name__)
    wrapper.__module__ = getattr(fn, "__module__", "")


class StalledTask:
    """Wrap a task so selected items hang instead of completing.

    ``selector(item)`` decides which items stall; ``stall_s`` bounds the
    sleep (a safety net — the watchdog should kill the worker long before
    it elapses). With ``only_in_worker=True`` (the default) the stall
    happens only in a process other than the one that built the wrapper,
    so a serial re-execution of the same item in the parent succeeds.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        selector: Callable[[Any], bool],
        stall_s: float = 3600.0,
        only_in_worker: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.fn = fn
        self.selector = selector
        self.stall_s = float(stall_s)
        self.only_in_worker = only_in_worker
        self.spawn_pid = os.getpid()
        self._sleep = sleep
        _mirror_identity(self, fn)

    def __getstate__(self) -> Dict[str, Any]:
        # The sleep callable may be a test double; workers use time.sleep.
        return {
            "fn": self.fn, "selector": self.selector,
            "stall_s": self.stall_s, "only_in_worker": self.only_in_worker,
            "spawn_pid": self.spawn_pid,
            "__qualname__": self.__qualname__, "__module__": self.__module__,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.fn = state["fn"]
        self.selector = state["selector"]
        self.stall_s = state["stall_s"]
        self.only_in_worker = state["only_in_worker"]
        self.spawn_pid = state["spawn_pid"]
        self._sleep = time.sleep
        self.__qualname__ = state["__qualname__"]
        self.__module__ = state["__module__"]

    def _should_stall(self) -> bool:
        return not self.only_in_worker or os.getpid() != self.spawn_pid

    def __call__(self, item: Any) -> Any:
        if self.selector(item) and self._should_stall():
            # Sleep in short slices so a SIGKILL-less test double (or an
            # interpreter shutdown) is never stuck for the full budget.
            t_end = time.monotonic() + self.stall_s
            while time.monotonic() < t_end:
                self._sleep(min(0.2, self.stall_s))
        return self.fn(item)


class MemoryHog:
    """Wrap a task so selected items allocate ballast while computing.

    The ballast is built in ``chunk_mb`` pieces up to ``ballast_mb``,
    touched (so the pages are real), and dropped before the wrapped
    function returns — transient pressure only; the task's result is
    byte-identical to an uninjected run.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        selector: Callable[[Any], bool],
        ballast_mb: float = 64.0,
        chunk_mb: float = 16.0,
    ) -> None:
        self.fn = fn
        self.selector = selector
        self.ballast_mb = float(ballast_mb)
        self.chunk_mb = float(chunk_mb)
        _mirror_identity(self, fn)
        #: How many times this wrapper actually hogged (parent-side only).
        self.n_hogs = 0

    def __call__(self, item: Any) -> Any:
        if not self.selector(item):
            return self.fn(item)
        import numpy as np

        ballast = []
        allocated = 0.0
        try:
            while allocated < self.ballast_mb:
                size_mb = min(self.chunk_mb, self.ballast_mb - allocated)
                chunk = np.ones(int(size_mb * 1024 * 1024 // 8), dtype=np.float64)
                ballast.append(chunk)
                allocated += size_mb
            self.n_hogs += 1
            return self.fn(item)
        finally:
            ballast.clear()
