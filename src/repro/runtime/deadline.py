"""Deadline budgets and cooperative cancellation.

A :class:`Deadline` is a wall-clock budget created once at the top of a
supervised run and consulted at *cooperative cancellation checkpoints*
sprinkled through the expensive stages (the sweep loops, the alpha
estimation, the preference computation, executor waits). Python cannot
preempt a running NumPy kernel, so cancellation is always cooperative: the
pipeline checks between units of work and stops cleanly — either raising
:class:`~repro.errors.DeadlineExceededError` (strict) or shedding the
remaining work as recorded ``deadline_exceeded`` degradations (under a
:class:`~repro.core.pipeline.DegradePolicy`).

The active deadline is ambient, like the observability context: installing
one with :func:`deadline_scope` makes every :func:`check_deadline` call in
the process observe it without threading a parameter through dozens of
signatures. With no deadline installed a checkpoint costs one list lookup.

The clock is injectable so tests can drive expiry without sleeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.errors import ConfigError, DeadlineExceededError

__all__ = [
    "Deadline",
    "deadline_scope",
    "active_deadline",
    "check_deadline",
]


class Deadline:
    """A wall-clock budget with an injectable monotonic clock.

    >>> deadline = Deadline(budget_s=60.0)
    >>> deadline.remaining()   # seconds left, clamped at 0
    >>> deadline.check("sweep")  # raises DeadlineExceededError when spent
    """

    __slots__ = ("budget_s", "_clock", "_t0")

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s <= 0:
            raise ConfigError(f"budget_s must be positive, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._t0 = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left in the budget, clamped at zero."""
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        """Has the budget been spent?"""
        return self.elapsed() >= self.budget_s

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        elapsed = self.elapsed()
        if elapsed >= self.budget_s:
            at = f" at {where}" if where else ""
            raise DeadlineExceededError(
                f"deadline of {self.budget_s:.3g}s exceeded{at} "
                f"({elapsed:.3g}s elapsed)",
                budget_s=self.budget_s,
                elapsed_s=elapsed,
            )

    def timeout_or(self, default: Optional[float]) -> Optional[float]:
        """The tighter of ``remaining()`` and a caller's own timeout.

        Executors use this to bound blocking waits: a pending chunk must
        never outlive the run's budget, whatever per-task timeout the
        retry policy asked for.
        """
        remaining = self.remaining()
        if default is None:
            return remaining
        return min(default, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget_s={self.budget_s}, "
                f"remaining={self.remaining():.3g}s)")


#: Stack of installed deadlines; the innermost one governs checkpoints.
_ACTIVE: List[Deadline] = []


def active_deadline() -> Optional[Deadline]:
    """The innermost installed deadline, or ``None`` outside any scope."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the ambient deadline for a block.

    ``None`` is accepted and installs nothing, so call sites can write
    ``with deadline_scope(maybe_deadline):`` unconditionally.
    """
    if deadline is None:
        yield None
        return
    _ACTIVE.append(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.pop()


def check_deadline(where: str = "") -> None:
    """Cooperative cancellation checkpoint against the ambient deadline.

    A no-op (one list lookup) when no deadline is installed — safe to call
    from hot loops on unsupervised runs.
    """
    if _ACTIVE:
        _ACTIVE[-1].check(where)
