"""Supervised runtime: budgets, breakers, watchdogs and memory governance.

PR 2's resilience layer handles *failures* — crashed workers, dirty rows,
starved slices. This package handles *degradation that never fails*: a
run that would blow past its wall-clock budget, a worker that hangs
without dying, a dependency that keeps timing out, a sweep whose working
set outgrows memory. Four concerns, one composition point:

- :mod:`repro.runtime.deadline` — wall-clock budgets with cooperative
  cancellation checkpoints through the pipeline's expensive stages.
- :mod:`repro.runtime.breaker` — closed/open/half-open circuit breakers
  that stop retry loops from feeding known-bad dependencies.
- :mod:`repro.runtime.watchdog` — heartbeat-based detection (and
  SIGKILL + requeue) of live-but-stuck process workers.
- :mod:`repro.runtime.memory` — working-set estimation, sweep admission
  control, and LRU disk spill of completed slices.

:class:`~repro.runtime.supervisor.Supervisor` composes any subset and
plugs into the degrade/manifest machinery so every shed slice, opened
breaker, killed worker and spilled result is *recorded*, never silent.
With no supervisor installed, every hook in the pipeline is a no-op and
behavior (including obs artifacts) is byte-identical to an unsupervised
build.
"""

from repro.runtime.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.runtime.deadline import (
    Deadline,
    active_deadline,
    check_deadline,
    deadline_scope,
)
from repro.runtime.memory import (
    MemoryGovernor,
    estimate_counts_bytes,
    estimate_nbytes,
)
from repro.runtime.supervisor import Supervisor, active_supervisor
from repro.runtime.watchdog import HeartbeatWriter, TaskHeartbeat, Watchdog

__all__ = [
    "Deadline",
    "deadline_scope",
    "active_deadline",
    "check_deadline",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Watchdog",
    "HeartbeatWriter",
    "TaskHeartbeat",
    "MemoryGovernor",
    "estimate_nbytes",
    "estimate_counts_bytes",
    "Supervisor",
    "active_supervisor",
]
