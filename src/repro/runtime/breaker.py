"""Circuit breakers: stop hammering a dependency that is known bad.

A :class:`CircuitBreaker` wraps a flaky callable (an ingestion reader over
a network mount, a stage touching an external store) with the classic
three-state machine:

- **closed** — calls pass through; consecutive failures are counted.
- **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: every call is refused instantly with
  :class:`~repro.errors.CircuitOpenError` until ``reset_timeout_s`` has
  passed. Refusing is the point — a retry loop that keeps feeding a dead
  dependency just converts one failure into a multiplied outage.
- **half-open** — after the cooldown, exactly one probe call is admitted;
  success closes the circuit, failure re-opens it (with the cooldown
  restarted).

The breaker composes with :class:`~repro.parallel.retry.RetryPolicy`
through :func:`repro.parallel.retry.call_with_retry`'s ``breaker``
parameter: an open circuit short-circuits the retry loop instead of
burning attempts into a known-bad dependency.

State is exported as the ``autosens_breaker_state`` gauge (0 closed,
1 half-open, 2 open) on every transition, and trips are counted in
``autosens_breaker_transitions_total``. The clock is injectable so tests
drive the cooldown without sleeping.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple

import repro.obs as obs
from repro.errors import CircuitOpenError, ConfigError

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of each state (exported on transitions).
_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """A named closed/open/half-open circuit breaker.

    ``excluded`` lists exception types that do *not* count as dependency
    failures (data errors should fail the call, not trip the breaker);
    by default every exception counts.
    """

    def __init__(
        self,
        name: str = "default",
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        excluded: Tuple[type, ...] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ConfigError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.excluded = excluded
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: Counters readable without the metrics registry.
        self.n_trips = 0
        self.n_refused = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """The current state, advancing open → half-open after cooldown."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._transition(HALF_OPEN)
        return self._state

    @property
    def state_code(self) -> int:
        """Gauge encoding of :attr:`state` (0 closed, 1 half-open, 2 open)."""
        return _STATE_CODES[self.state]

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        previous, self._state = self._state, state
        obs.set_gauge("autosens_breaker_state", _STATE_CODES[state],
                      breaker=self.name)
        obs.inc("autosens_breaker_transitions_total",
                breaker=self.name, to=state)
        if obs.events_active():
            obs.event("supervisor", component="breaker", breaker=self.name,
                      state=state, code=_STATE_CODES[state],
                      failures=self._failures)
        if state == OPEN:
            self.n_trips += 1
            obs.record_degradation(
                "breaker_open", breaker=self.name,
                failures=self._failures,
                detail=f"circuit {self.name!r} opened after "
                       f"{self._failures} consecutive failures",
            )
        del previous  # transitions are fully described by the new state

    # -- the caller protocol -------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now? (half-open admits the one probe)"""
        return self.state != OPEN

    def retry_after(self) -> float:
        """Seconds until an open circuit will admit a half-open probe."""
        if self.state != OPEN:
            return 0.0
        return max(
            0.0, self.reset_timeout_s - (self._clock() - self._opened_at)
        )

    def record_success(self) -> None:
        """A wrapped call succeeded: close the circuit, reset the count."""
        self._failures = 0
        if self._state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """A wrapped call failed: count it; trip or re-open as needed."""
        self._failures += 1
        if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._transition(OPEN)

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Invoke ``fn`` through the breaker.

        Raises :class:`~repro.errors.CircuitOpenError` without calling when
        the circuit is open; otherwise forwards the call and records the
        outcome (exceptions in ``excluded`` pass through uncounted).
        """
        if not self.allow():
            self.n_refused += 1
            obs.inc("autosens_breaker_refusals_total", breaker=self.name)
            raise CircuitOpenError(self.name, retry_after_s=self.retry_after())
        try:
            result = fn(*args, **kwargs)
        except BaseException as exc:
            if not isinstance(exc, self.excluded):
                self.record_failure()
            raise
        self.record_success()
        return result

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """A callable equivalent to ``fn`` routed through this breaker."""

        def guarded(*args: Any, **kwargs: Any) -> Any:
            return self.call(fn, *args, **kwargs)

        guarded.__qualname__ = getattr(fn, "__qualname__", repr(fn))
        guarded.__doc__ = fn.__doc__
        return guarded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker({self.name!r}, state={self.state}, "
                f"failures={self._failures}/{self.failure_threshold})")
