"""The supervisor: one object composing every supervision concern.

A :class:`Supervisor` bundles a :class:`~repro.runtime.deadline.Deadline`,
a :class:`~repro.runtime.breaker.CircuitBreaker`, a
:class:`~repro.runtime.watchdog.Watchdog` and a
:class:`~repro.runtime.memory.MemoryGovernor` (any subset may be absent)
and installs them for a run:

    supervisor = Supervisor(deadline_s=120.0, memory_budget_mb=512)
    with supervisor.scope():
        outcome = run_experiment("fig4", seed=3, supervisor=supervisor)

Inside the scope the deadline is ambient (every
:func:`~repro.runtime.deadline.check_deadline` checkpoint observes it),
the watchdog thread supervises worker heartbeats, and the sweep layer
consults :func:`active_supervisor` for admission control and result
spilling. Everything the supervisor sheds, trips, kills or spills is
recorded through :func:`repro.obs.record_degradation`, so it lands in the
run manifest exactly like PR 2's starved-slice degradations — degradation
stays visible, never silent.

All of this composes with, not replaces, the existing resilience: retry
policies still govern re-execution, the checkpoint journal still makes
runs resumable, and with no supervisor installed every checkpoint is a
no-op and the pipeline's behavior (and its obs artifacts) are unchanged.
"""

from __future__ import annotations

import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import repro.obs as obs
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.deadline import Deadline, deadline_scope
from repro.runtime.memory import MemoryGovernor
from repro.runtime.watchdog import Watchdog

__all__ = ["Supervisor", "active_supervisor"]


class Supervisor:
    """Compose deadline, breaker, watchdog and memory governor for a run.

    Scalar conveniences mirror the CLI flags: ``deadline_s`` (a float
    budget or a prebuilt :class:`Deadline`), ``memory_budget_mb`` (a float
    budget or a prebuilt :class:`MemoryGovernor`), ``breaker`` (``True``
    for a default breaker or a prebuilt :class:`CircuitBreaker`) and
    ``watchdog`` (``True`` for a default watchdog, a stall timeout float,
    or a prebuilt :class:`Watchdog`). ``workdir`` hosts the heartbeat
    spool and spill tier; a temp directory is created when omitted.
    """

    def __init__(
        self,
        deadline_s: Union[None, float, Deadline] = None,
        breaker: Union[None, bool, CircuitBreaker] = None,
        watchdog: Union[None, bool, float, Watchdog] = None,
        memory_budget_mb: Union[None, float, MemoryGovernor] = None,
        workdir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.workdir = Path(
            workdir if workdir is not None
            else tempfile.mkdtemp(prefix="autosens-supervisor-")
        )
        self.workdir.mkdir(parents=True, exist_ok=True)

        if isinstance(deadline_s, Deadline) or deadline_s is None:
            self.deadline: Optional[Deadline] = deadline_s
        else:
            self.deadline = Deadline(float(deadline_s))

        if isinstance(breaker, CircuitBreaker):
            self.breaker: Optional[CircuitBreaker] = breaker
        elif breaker:
            self.breaker = CircuitBreaker(name="stage")
        else:
            self.breaker = None

        if isinstance(watchdog, Watchdog):
            self.watchdog: Optional[Watchdog] = watchdog
        elif watchdog:
            stall = 30.0 if watchdog is True else float(watchdog)
            self.watchdog = Watchdog(
                self.workdir / "heartbeats", stall_timeout_s=stall
            )
        else:
            self.watchdog = None

        if isinstance(memory_budget_mb, MemoryGovernor):
            self.memory: Optional[MemoryGovernor] = memory_budget_mb
        elif memory_budget_mb is not None:
            self.memory = MemoryGovernor.of_mb(
                float(memory_budget_mb), spill_dir=self.workdir / "spill"
            )
        else:
            self.memory = None

        #: Everything this supervisor shed, in order (mirrors the manifest).
        self.shed_log: List[Dict[str, Any]] = []

    @property
    def enabled(self) -> bool:
        """Is any supervision concern configured?"""
        return any(
            (self.deadline, self.breaker, self.watchdog, self.memory)
        )

    def shed(self, kind: str, **detail: Any) -> None:
        """Record one shed unit of work (manifest + local log)."""
        entry: Dict[str, Any] = {"kind": kind}
        entry.update(detail)
        self.shed_log.append(entry)
        obs.record_degradation(kind, **detail)
        self.export_gauges()

    def export_gauges(self) -> None:
        """Export live supervision state as first-class gauges.

        Runs at scope entry/exit, after every shed, and (via
        :func:`active_supervisor`) just before each ``/metrics`` scrape, so
        a scraper sees current breaker state, memory-governor occupancy and
        deadline headroom rather than only transition-time values. The
        deadline gauge reads the wall clock, so deterministic runs skip it —
        their metrics artifact is part of the byte-identity contract.
        """
        ctx = obs.current()
        if not ctx.enabled:
            return
        if self.breaker is not None:
            obs.set_gauge("autosens_breaker_state", self.breaker.state_code,
                          breaker=self.breaker.name)
        if self.memory is not None:
            obs.set_gauge("autosens_memory_governor_bytes",
                          float(self.memory.held_bytes()))
        if self.watchdog is not None:
            obs.set_gauge("autosens_watchdog_requeues",
                          float(len(self.watchdog.kills)))
        if self.deadline is not None and not ctx.deterministic:
            obs.set_gauge("autosens_deadline_remaining_s",
                          round(self.deadline.remaining(), 3))

    @contextmanager
    def scope(self) -> Iterator["Supervisor"]:
        """Install this supervisor for a block: ambient deadline, running
        watchdog, and :func:`active_supervisor` resolution."""
        _ACTIVE.append(self)
        if self.watchdog is not None:
            self.watchdog.start()
        self.export_gauges()
        if obs.events_active():
            obs.event("supervisor", component="scope", phase="enter",
                      concerns=self._concern_names())
        try:
            with deadline_scope(self.deadline):
                yield self
        finally:
            if self.watchdog is not None:
                self.watchdog.stop()
            _ACTIVE.pop()
            self.export_gauges()
            if obs.events_active():
                obs.event("supervisor", component="scope", phase="exit",
                          shed=len(self.shed_log))

    def _concern_names(self) -> List[str]:
        names = []
        if self.deadline is not None:
            names.append("deadline")
        if self.breaker is not None:
            names.append("breaker")
        if self.watchdog is not None:
            names.append("watchdog")
        if self.memory is not None:
            names.append("memory")
        return names

    def summary(self) -> Dict[str, Any]:
        """A manifest-ready account of what supervision did this run."""
        out: Dict[str, Any] = {"shed": len(self.shed_log)}
        if self.deadline is not None:
            out["deadline_s"] = self.deadline.budget_s
            out["deadline_elapsed_s"] = round(self.deadline.elapsed(), 3)
        if self.breaker is not None:
            out["breaker_state"] = self.breaker.state
            out["breaker_trips"] = self.breaker.n_trips
        if self.watchdog is not None:
            out["watchdog_kills"] = len(self.watchdog.kills)
        if self.memory is not None:
            out["memory"] = self.memory.stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline.budget_s}s")
        if self.breaker is not None:
            parts.append(f"breaker={self.breaker.state}")
        if self.watchdog is not None:
            parts.append("watchdog=on")
        if self.memory is not None:
            parts.append(
                f"memory={self.memory.soft_limit_bytes // (1024 * 1024)}MB")
        return f"Supervisor({', '.join(parts) or 'idle'})"


#: Stack of entered supervisor scopes; the innermost one governs sweeps.
_ACTIVE: List[Supervisor] = []


def active_supervisor() -> Optional[Supervisor]:
    """The innermost entered supervisor, or ``None`` outside any scope."""
    return _ACTIVE[-1] if _ACTIVE else None
