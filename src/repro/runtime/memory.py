"""Memory governor: admission control and disk spill for sweeps.

A production sweep over millions of users can exhaust memory in two ways:
one slice's ``slotted_counts`` tensor (plus its Monte Carlo unbiased draw)
is simply too large, or many completed slices accumulate while the sweep
fans out. The :class:`MemoryGovernor` handles both without distorting any
result:

- **Estimation** — :func:`estimate_nbytes` walks an object for NumPy array
  payloads; :func:`estimate_counts_bytes` predicts a slice's working set
  *before* computing it from the slice's action count and the config's
  bin/slot geometry.
- **Admission control** — :meth:`MemoryGovernor.admit` refuses (with
  :class:`~repro.errors.MemoryBudgetError`) a working set that cannot fit
  the hard budget at all, and :meth:`max_concurrent` bounds sweep fan-out
  so concurrently-live working sets stay inside the soft limit.
- **Spill** — :meth:`hold` accounts each completed slice result; past the
  soft limit the least-recently-held values are written to disk through
  the content-addressed :class:`~repro.parallel.checkpoint.CheckpointJournal`
  format and dropped from memory. :meth:`fetch` transparently reloads a
  spilled value — pickled NumPy arrays round-trip bit-identically, so a
  spilled slice is indistinguishable from a held one.

Every spill is counted (``autosens_memory_spills_total``), recorded as a
``memory_spill`` degradation for the run manifest, and the held working
set is exported as the ``autosens_memory_held_bytes`` gauge.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.errors import ConfigError, MemoryBudgetError
from repro.parallel.checkpoint import CheckpointJournal

__all__ = [
    "MemoryGovernor",
    "estimate_nbytes",
    "estimate_counts_bytes",
]

_MB = 1024 * 1024


def estimate_nbytes(obj: Any, _depth: int = 0) -> int:
    """Estimate the heap footprint of ``obj``, counting NumPy payloads.

    Recurses through dataclasses, dicts, lists/tuples and object
    ``__dict__``s to a bounded depth; scalar containers fall back to
    ``sys.getsizeof``. An estimate, not an audit — the governor needs
    relative magnitudes, not byte-perfect accounting.
    """
    if _depth > 6:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, str)):
        return sys.getsizeof(obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(
            estimate_nbytes(getattr(obj, f.name), _depth + 1)
            for f in fields(obj)
        )
    if isinstance(obj, dict):
        return sum(
            estimate_nbytes(v, _depth + 1) for v in obj.values()
        ) + sys.getsizeof(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(v, _depth + 1) for v in obj) + sys.getsizeof(obj)
    inner = getattr(obj, "__dict__", None)
    if isinstance(inner, dict) and inner:
        return estimate_nbytes(inner, _depth + 1)
    try:
        return sys.getsizeof(obj)
    except TypeError:  # pragma: no cover - exotic objects
        return 64


def estimate_counts_bytes(
    n_actions: int,
    n_bins: int,
    n_slots: int = 24,
    oversample: float = 3.0,
) -> int:
    """Predict one slice's ``slotted_counts`` working set in bytes.

    Two float64 ``(n_slots, n_bins)`` tensors (biased counts and time
    fractions), the per-action column arrays consumed while counting, and
    the ``oversample × n_actions`` unbiased Monte Carlo draw.
    """
    tensors = 2 * n_slots * n_bins * 8
    per_action = 5 * n_actions * 8
    unbiased = int(oversample * n_actions) * 8
    return tensors + per_action + unbiased


class MemoryGovernor:
    """Budgeted accounting of sweep working sets with LRU disk spill.

    ``soft_limit_bytes`` is where spilling starts; ``hard_limit_bytes``
    (default: the soft limit) is where admission fails — a single working
    set that exceeds it cannot run at all, spilled or not. ``spill_dir``
    enables the disk tier; without it the governor still does admission
    control and accounting but keeps everything in memory.
    """

    def __init__(
        self,
        soft_limit_bytes: int,
        hard_limit_bytes: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if soft_limit_bytes <= 0:
            raise ConfigError(
                f"soft_limit_bytes must be positive, got {soft_limit_bytes}"
            )
        self.soft_limit_bytes = int(soft_limit_bytes)
        self.hard_limit_bytes = int(
            hard_limit_bytes if hard_limit_bytes is not None
            else soft_limit_bytes
        )
        if self.hard_limit_bytes < self.soft_limit_bytes:
            raise ConfigError(
                "hard_limit_bytes must be >= soft_limit_bytes "
                f"({self.hard_limit_bytes} < {self.soft_limit_bytes})"
            )
        self._journal = (
            CheckpointJournal(spill_dir, namespace="memory-spill")
            if spill_dir is not None else None
        )
        self._held: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._spilled: Dict[Hashable, str] = {}
        self.n_spills = 0
        self.n_refused = 0

    @classmethod
    def of_mb(cls, soft_limit_mb: float,
              spill_dir: Optional[Union[str, Path]] = None) -> "MemoryGovernor":
        """A governor from a megabyte budget (the CLI's unit)."""
        return cls(int(soft_limit_mb * _MB), spill_dir=spill_dir)

    # -- admission -----------------------------------------------------------

    def admit(self, estimated_bytes: int, what: str = "working set") -> None:
        """Refuse a working set that cannot fit the hard budget at all."""
        if estimated_bytes > self.hard_limit_bytes:
            self.n_refused += 1
            obs.inc("autosens_memory_refusals_total")
            raise MemoryBudgetError(
                f"{what} needs ~{estimated_bytes / _MB:.1f} MiB; the memory "
                f"budget is {self.hard_limit_bytes / _MB:.1f} MiB",
                requested_bytes=estimated_bytes,
                budget_bytes=self.hard_limit_bytes,
            )

    def max_concurrent(self, per_task_bytes: int, n_tasks: int) -> int:
        """How many tasks of this size may be live at once (at least 1)."""
        if per_task_bytes <= 0:
            return max(1, n_tasks)
        return max(1, min(n_tasks, self.soft_limit_bytes // per_task_bytes))

    # -- the spill tier ------------------------------------------------------

    def held_bytes(self) -> int:
        """Accounted bytes currently held in memory."""
        return sum(size for _, size in self._held.values())

    def hold(self, key: Hashable, value: Any,
             nbytes: Optional[int] = None) -> None:
        """Account ``value`` under ``key``; spill LRU past the soft limit."""
        size = estimate_nbytes(value) if nbytes is None else int(nbytes)
        self._held[key] = (value, size)
        self._held.move_to_end(key)
        while (
            self.held_bytes() > self.soft_limit_bytes
            and self._journal is not None
            and len(self._held) > 1
        ):
            old_key, (old_value, old_size) = self._held.popitem(last=False)
            spill_key = self._journal.key_for("spill", repr(old_key))
            self._journal.put(spill_key, old_value)
            self._spilled[old_key] = spill_key
            self.n_spills += 1
            obs.inc("autosens_memory_spills_total")
            obs.record_degradation(
                "memory_spill", key=str(old_key), bytes=old_size,
                detail=f"spilled ~{old_size / _MB:.2f} MiB slice to disk "
                       f"(held {self.held_bytes() / _MB:.2f} MiB, soft limit "
                       f"{self.soft_limit_bytes / _MB:.2f} MiB)",
            )
        obs.set_gauge("autosens_memory_held_bytes", float(self.held_bytes()))

    def fetch(self, key: Hashable) -> Tuple[bool, Any]:
        """(hit, value) from memory or the spill tier; spills reload."""
        if key in self._held:
            value, _ = self._held[key]
            self._held.move_to_end(key)
            return True, value
        spill_key = self._spilled.get(key)
        if spill_key is not None and self._journal is not None:
            hit, value = self._journal.fetch(spill_key)
            if hit:
                return True, value
        return False, None

    def release(self, key: Hashable) -> None:
        """Forget a key from both tiers."""
        self._held.pop(key, None)
        self._spilled.pop(key, None)

    def stats(self) -> Dict[str, int]:
        """Accounting counters for tests and the supervisor summary."""
        return {
            "held_entries": len(self._held),
            "held_bytes": self.held_bytes(),
            "spilled_entries": len(self._spilled),
            "n_spills": self.n_spills,
            "n_refused": self.n_refused,
            "soft_limit_bytes": self.soft_limit_bytes,
            "hard_limit_bytes": self.hard_limit_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryGovernor(held={self.held_bytes()}B/"
                f"{self.soft_limit_bytes}B, spills={self.n_spills})")
