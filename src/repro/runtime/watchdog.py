"""Heartbeat-based hung-worker detection for the process backend.

PR 2's crash/timeout recovery handles workers that *die* (the pool breaks
and the lost chunks are re-executed serially). It never fires for a worker
that is alive but stuck — wedged on a lock, spinning in a pathological
input, blocked on a dead filesystem. This module closes that gap:

- Workers run their tasks through a :class:`TaskHeartbeat` shim that
  records a liveness beat (pid, wall time, task key) in a spool directory
  before and after every item — atomic tmp+rename writes, one small file
  per worker pid, no cross-process locks.
- A :class:`Watchdog` thread in the parent scans the spool: a worker whose
  latest beat is older than ``stall_timeout_s`` is presumed hung and is
  killed (``SIGKILL``). Killing a pool worker breaks the
  ``ProcessPoolExecutor``, which lands the run on the existing
  crash-recovery path — the stalled chunk is *requeued* onto the serial
  fallback, where pure per-task seeding makes the recovered results
  bit-identical to an undisturbed run.

Every kill is counted (``autosens_watchdog_kills_total``) and recorded as
a ``watchdog_kill`` degradation for the run manifest. The clock, kill
function and poll cadence are injectable so tests can drive stall
detection without real signals or multi-second sleeps.

``stall_timeout_s`` must comfortably exceed the longest *legitimate* gap
between beats — i.e. the slowest single task — since heartbeats are
emitted at task boundaries, not from inside NumPy kernels.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

import repro.obs as obs
from repro.errors import ConfigError

__all__ = ["HeartbeatWriter", "TaskHeartbeat", "Watchdog"]

_HB_PREFIX = "hb-"


class HeartbeatWriter:
    """Emit liveness beats for the current process into a spool directory.

    One file per pid, rewritten atomically on every beat so the supervisor
    never reads a torn record. Cheap enough for task-boundary cadence: one
    small JSON write per beat.
    """

    def __init__(self, spool_dir: Union[str, Path],
                 clock: Callable[[], float] = time.time) -> None:
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._clock = clock

    def path_for(self, pid: Optional[int] = None) -> Path:
        pid = os.getpid() if pid is None else pid
        return self.spool_dir / f"{_HB_PREFIX}{pid}.json"

    def beat(self, task: str = "") -> None:
        """Record that this process is alive and what it is working on."""
        pid = os.getpid()
        path = self.path_for(pid)
        tmp = path.with_suffix(f".tmp.{pid}")
        payload = {"pid": pid, "t": self._clock(), "task": task}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        os.replace(tmp, path)

    def clear(self) -> None:
        """Remove this process's heartbeat file (normal completion)."""
        try:
            self.path_for().unlink()
        except OSError:
            pass


class TaskHeartbeat:
    """Picklable task shim: beat, run the item, beat again.

    Mirrors the wrapped function's identity (like the checkpoint journal's
    shim) so span keys derived from the qualname are identical with and
    without the watchdog attached.
    """

    def __init__(self, fn: Callable[[Any], Any],
                 spool_dir: Union[str, Path]) -> None:
        self.fn = fn
        self.spool_dir = str(spool_dir)
        self.__qualname__ = getattr(fn, "__qualname__", type(fn).__name__)
        self.__module__ = getattr(fn, "__module__", "")
        self._writer: Optional[HeartbeatWriter] = None

    def __getstate__(self) -> Dict[str, Any]:
        # The writer holds an open clock closure; rebuild it in the worker.
        return {"fn": self.fn, "spool_dir": self.spool_dir,
                "__qualname__": self.__qualname__,
                "__module__": self.__module__}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.fn = state["fn"]
        self.spool_dir = state["spool_dir"]
        self.__qualname__ = state["__qualname__"]
        self.__module__ = state["__module__"]
        self._writer = None

    def __call__(self, item: Any) -> Any:
        if self._writer is None:
            self._writer = HeartbeatWriter(self.spool_dir)
        self._writer.beat(task=self.__qualname__)
        result = self.fn(item)
        self._writer.beat(task="")
        return result


def _default_kill(pid: int) -> None:
    os.kill(pid, signal.SIGKILL)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


class Watchdog:
    """Supervisor thread that kills workers whose heartbeat has stalled.

    ``scan_once`` is the testable core; :meth:`start`/:meth:`stop` run it
    on a background thread every ``poll_interval_s``. The watchdog never
    kills its own process, and a heartbeat file whose pid is already gone
    is cleaned up rather than "killed" again.
    """

    def __init__(
        self,
        spool_dir: Union[str, Path],
        stall_timeout_s: float = 30.0,
        poll_interval_s: Optional[float] = None,
        kill: Callable[[int], None] = _default_kill,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if stall_timeout_s <= 0:
            raise ConfigError(
                f"stall_timeout_s must be positive, got {stall_timeout_s}"
            )
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.stall_timeout_s = stall_timeout_s
        self.poll_interval_s = (
            poll_interval_s if poll_interval_s is not None
            else max(0.05, stall_timeout_s / 4.0)
        )
        self._kill = kill
        self._clock = clock
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Pids killed by this watchdog, in kill order.
        self.kills: List[int] = []

    def writer(self) -> HeartbeatWriter:
        """A heartbeat writer for this watchdog's spool directory."""
        return HeartbeatWriter(self.spool_dir, clock=self._clock)

    def wrap(self, fn: Callable[[Any], Any]) -> TaskHeartbeat:
        """Wrap a task function so every execution beats into the spool."""
        return TaskHeartbeat(fn, self.spool_dir)

    def _read_beat(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or "pid" not in payload:
            return None
        return payload

    def scan_once(self) -> List[int]:
        """One supervision pass; returns the pids killed this pass."""
        now = self._clock()
        killed: List[int] = []
        own_pid = os.getpid()
        for path in sorted(self.spool_dir.glob(f"{_HB_PREFIX}*.json")):
            beat = self._read_beat(path)
            if beat is None:
                continue
            pid = int(beat["pid"])
            age = now - float(beat.get("t", 0.0))
            if age < self.stall_timeout_s or pid == own_pid:
                continue
            if not _pid_alive(pid):
                # Crash recovery's territory: the worker died on its own.
                path.unlink(missing_ok=True)
                continue
            try:
                self._kill(pid)
            except OSError:  # pragma: no cover - raced with normal exit
                continue
            path.unlink(missing_ok=True)
            self.kills.append(pid)
            killed.append(pid)
            obs.inc("autosens_watchdog_kills_total")
            if obs.events_active():
                obs.event("supervisor", component="watchdog", phase="kill",
                          pid=pid, stalled_s=round(age, 3),
                          requeues=len(self.kills))
            obs.record_degradation(
                "watchdog_kill", pid=pid,
                task=str(beat.get("task", "")),
                stalled_s=round(age, 3),
                detail=f"killed hung worker pid={pid} "
                       f"(heartbeat stalled {age:.3g}s, "
                       f"limit {self.stall_timeout_s:.3g}s)",
            )
        return killed

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self.scan_once()

    def start(self) -> None:
        """Start the supervision thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="autosens-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the supervision thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Watchdog":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Watchdog({str(self.spool_dir)!r}, "
                f"stall_timeout_s={self.stall_timeout_s}, "
                f"kills={len(self.kills)})")
