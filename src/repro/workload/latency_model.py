"""The latency level process: the service's "weather".

The paper's premise (Section 2.1) is that latency varies in a *locally
predictable* way: slow periods and fast periods, each lasting minutes to
hours, driven by load and congestion. We model the predictable level as

``level(t) = base_ms * diurnal(hour(t)) * exp(OU(t))``

- ``diurnal`` — a smooth daily load curve; busy hours mean queueing and
  higher latency. This is exactly the time confounder of Section 2.4.1:
  latency and user activity are both functions of the hour.
- ``OU(t)`` — a mean-reverting Ornstein–Uhlenbeck process in log space with
  a relaxation time of tens of minutes; this produces the interspersed
  low/high-latency periods seen in the paper's Figure 2 and the low MSD/MAD
  ratio of Figure 1.

Individual requests then multiply on per-action, per-user and per-request
lognormal factors (see :mod:`repro.workload.generator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.stats.ou_process import OrnsteinUhlenbeck
from repro.stats.rng import SeedLike, spawn_rng

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class DiurnalCurve:
    """A smooth 24-hour multiplier curve built from a raised cosine.

    ``value(h) = floor + (peak - floor) * (0.5 - 0.5*cos(2*pi*(h - trough_hour)/24))``

    so the multiplier bottoms out at ``trough_hour`` (default 4am) and peaks
    12 hours later.
    """

    floor: float = 0.75
    peak: float = 1.35
    trough_hour: float = 4.0

    def __post_init__(self) -> None:
        if self.floor <= 0 or self.peak <= 0:
            raise ConfigError("diurnal floor and peak must be positive")
        if self.peak < self.floor:
            raise ConfigError("diurnal peak must be >= floor")

    def __call__(self, hours: np.ndarray) -> np.ndarray:
        h = np.asarray(hours, dtype=float)
        phase = 2.0 * np.pi * (h - self.trough_hour) / 24.0
        shape = 0.5 - 0.5 * np.cos(phase)
        return self.floor + (self.peak - self.floor) * shape

    @property
    def max_value(self) -> float:
        return self.peak


@dataclass(frozen=True)
class IncidentConfig:
    """Congestion incidents: occasional multi-minute latency spikes.

    Real services see incident episodes (overload, failover, bad deploys)
    on top of smooth load-driven variation. Incidents are what populate the
    1-3 s latency range the paper's figures extend to; without them a
    well-run service almost never serves 2 s responses.
    """

    rate_per_day: float = 3.5
    duration_mean_s: float = 2700.0       # ~45 min episodes
    severity_log_mean: float = 1.15       # e^1.15 ~ 3.2x median multiplier
    severity_log_sigma: float = 0.50

    def __post_init__(self) -> None:
        if self.rate_per_day < 0:
            raise ConfigError(f"rate_per_day must be >= 0, got {self.rate_per_day}")
        if self.duration_mean_s <= 0:
            raise ConfigError(
                f"duration_mean_s must be positive, got {self.duration_mean_s}"
            )


@dataclass(frozen=True)
class LatencyModelConfig:
    """Knobs of the latency level process."""

    base_ms: float = 300.0
    diurnal: DiurnalCurve = field(default_factory=DiurnalCurve)
    congestion_tau_s: float = 2400.0   # ~40 min excursions
    congestion_sigma: float = 0.50     # log-scale stationary sd
    incidents: Optional[IncidentConfig] = field(default_factory=IncidentConfig)
    #: Level multiplier applied on weekends (days 5 and 6 of each week);
    #: < 1 models the lighter weekend load of a business-heavy service.
    weekend_level_factor: float = 1.0
    grid_dt_s: float = 10.0

    def __post_init__(self) -> None:
        if self.base_ms <= 0:
            raise ConfigError(f"base_ms must be positive, got {self.base_ms}")
        if self.grid_dt_s <= 0:
            raise ConfigError(f"grid_dt_s must be positive, got {self.grid_dt_s}")


class LatencyGrid:
    """A precomputed latency level path on a regular time grid.

    Lookup by arbitrary time uses the grid cell containing the query
    (zero-order hold), which matches how the path was sampled.
    """

    def __init__(self, start: float, dt: float, levels_ms: np.ndarray) -> None:
        if dt <= 0:
            raise ConfigError(f"dt must be positive, got {dt}")
        self.start = float(start)
        self.dt = float(dt)
        self.levels_ms = np.asarray(levels_ms, dtype=float)
        if self.levels_ms.ndim != 1 or self.levels_ms.size == 0:
            raise ConfigError("levels_ms must be a non-empty 1-D array")

    @property
    def end(self) -> float:
        return self.start + self.dt * self.levels_ms.size

    @property
    def times(self) -> np.ndarray:
        """Left edge of each grid cell."""
        return self.start + self.dt * np.arange(self.levels_ms.size)

    def level_at(self, times: np.ndarray) -> np.ndarray:
        """Latency level for arbitrary times inside the grid span."""
        t = np.asarray(times, dtype=float)
        idx = np.floor((t - self.start) / self.dt).astype(np.int64)
        idx = np.clip(idx, 0, self.levels_ms.size - 1)
        return self.levels_ms[idx]


class LatencyModel:
    """Samples latency level paths and per-request latencies."""

    def __init__(self, config: Optional[LatencyModelConfig] = None) -> None:
        self.config = config or LatencyModelConfig()

    def sample_grid(
        self,
        duration_s: float,
        rng: SeedLike = None,
        start: float = 0.0,
        incident_rng: Optional[np.random.Generator] = None,
    ) -> LatencyGrid:
        """Sample the level process over ``[start, start + duration_s)``.

        Incident draws come from ``incident_rng`` — a dedicated stream, so
        the base (diurnal x OU) path is invariant to incident settings and
        so are any draws the caller makes from ``rng`` afterwards. When not
        supplied, a stream is derived from ``rng`` by jumping the bit
        generator (pure: consumes nothing from the base stream).
        """
        if duration_s <= 0:
            raise ConfigError(f"duration_s must be positive, got {duration_s}")
        cfg = self.config
        generator = spawn_rng(rng)
        n = int(np.ceil(duration_s / cfg.grid_dt_s))
        ou = OrnsteinUhlenbeck(mean=0.0, tau=cfg.congestion_tau_s, sigma=cfg.congestion_sigma)
        log_congestion = ou.sample_path(n, cfg.grid_dt_s, rng=generator)
        grid_times = start + cfg.grid_dt_s * np.arange(n)
        hours = (grid_times % SECONDS_PER_DAY) / 3600.0
        levels = cfg.base_ms * cfg.diurnal(hours) * np.exp(log_congestion)
        if cfg.weekend_level_factor != 1.0:
            day = np.floor(grid_times / SECONDS_PER_DAY).astype(np.int64)
            is_weekend = (day % 7) >= 5
            levels = np.where(is_weekend, levels * cfg.weekend_level_factor, levels)
        if cfg.incidents is not None and cfg.incidents.rate_per_day > 0:
            if incident_rng is None:
                incident_rng = self._derive_incident_rng(generator)
            levels = levels * self._incident_multiplier(
                grid_times, duration_s, cfg.incidents, incident_rng
            )
        return LatencyGrid(start=start, dt=cfg.grid_dt_s, levels_ms=levels)

    @staticmethod
    def _derive_incident_rng(generator: np.random.Generator) -> np.random.Generator:
        """A stream independent of ``generator`` that consumes nothing from it.

        ``jumped()`` is a pure function of the bit generator's current state
        (no draws), so incident settings can never perturb the base path or
        later consumers of the shared generator. Bit generators without
        ``jumped`` fall back to seeding from the state hash — still
        non-consuming.
        """
        bit_gen = generator.bit_generator
        try:
            return np.random.Generator(bit_gen.jumped())
        except (AttributeError, NotImplementedError):  # pragma: no cover
            state_key = repr(sorted(bit_gen.state.items())).encode("utf-8")
            key = np.frombuffer(state_key[:64], dtype=np.uint8)
            seq = np.random.SeedSequence(
                entropy=0, spawn_key=tuple(int(b) for b in key)
            )
            return np.random.default_rng(seq)

    @staticmethod
    def _incident_multiplier(
        grid_times: np.ndarray,
        duration_s: float,
        incidents: "IncidentConfig",
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Multiplicative incident overlay on the level path.

        Incident starts are Poisson in time; each incident has an
        exponential duration and a lognormal severity with a smooth
        (half-cosine) ramp in and out so levels stay locally predictable.
        """
        out = np.ones(grid_times.size, dtype=float)
        n_incidents = int(generator.poisson(incidents.rate_per_day * duration_s / SECONDS_PER_DAY))
        if n_incidents == 0:
            return out
        t0 = float(grid_times[0])
        starts = t0 + generator.uniform(0.0, duration_s, size=n_incidents)
        durations = generator.exponential(incidents.duration_mean_s, size=n_incidents)
        severities = np.exp(generator.normal(
            incidents.severity_log_mean, incidents.severity_log_sigma, size=n_incidents
        ))
        for s, d, sev in zip(starts, durations, severities):
            inside = (grid_times >= s) & (grid_times < s + d)
            if not np.any(inside):
                continue
            # Half-cosine envelope: 0 at the edges, 1 mid-incident.
            phase = (grid_times[inside] - s) / d
            envelope = 0.5 - 0.5 * np.cos(2.0 * np.pi * phase)
            out[inside] *= 1.0 + (sev - 1.0) * envelope
        return out

    def request_latency(
        self,
        level_ms: np.ndarray,
        multiplier: np.ndarray | float = 1.0,
        jitter_sigma: float = 0.18,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Per-request latency: level x multiplier x lognormal jitter."""
        generator = spawn_rng(rng)
        level = np.asarray(level_ms, dtype=float)
        jitter = np.exp(
            generator.normal(-0.5 * jitter_sigma**2, jitter_sigma, size=level.shape)
        )
        return level * np.asarray(multiplier, dtype=float) * jitter
