"""The time-based activity model: how much users *want* to act, per hour.

This is the ground truth behind the paper's time-based activity factor α
(Section 2.4.1): the rate of candidate user actions, independent of latency.
It is deliberately correlated with the latency diurnal curve — both peak in
business hours — which is precisely the confounder AutoSens's α
normalization must remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.errors import ConfigError
from repro.types import DayPeriod, UserClass

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class ActivityCurve:
    """Smooth 24-hour activity multiplier, normalized to peak 1.

    A raised-cosine bump centered at ``peak_hour`` with a configurable
    night floor. ``value(peak_hour) == 1``.
    """

    night_floor: float = 0.08
    peak_hour: float = 13.0

    def __post_init__(self) -> None:
        if not 0.0 < self.night_floor <= 1.0:
            raise ConfigError(f"night_floor must be in (0, 1], got {self.night_floor}")

    def __call__(self, hours: np.ndarray) -> np.ndarray:
        h = np.asarray(hours, dtype=float)
        phase = 2.0 * np.pi * (h - self.peak_hour) / 24.0
        shape = 0.5 + 0.5 * np.cos(phase)
        return self.night_floor + (1.0 - self.night_floor) * shape

    @property
    def max_value(self) -> float:
        return 1.0

    def period_average(self, period: DayPeriod, n_steps: int = 600) -> float:
        """Average multiplier over one of the four six-hour periods."""
        bounds = {
            DayPeriod.MORNING: (8.0, 14.0),
            DayPeriod.AFTERNOON: (14.0, 20.0),
            DayPeriod.NIGHT: (20.0, 26.0),
            DayPeriod.LATE_NIGHT: (2.0, 8.0),
        }[period]
        hours = np.linspace(bounds[0], bounds[1], n_steps) % 24.0
        return float(self(hours).mean())


class ActivityModel:
    """Per-class activity curves plus optional weekday/weekend factors."""

    def __init__(
        self,
        curves: Optional[Mapping[str, ActivityCurve]] = None,
        weekend_factor: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.curves = dict(curves or {})
        self.default_curve = ActivityCurve()
        self.weekend_factor = dict(weekend_factor or {})

    def curve_for(self, user_class: str) -> ActivityCurve:
        return self.curves.get(user_class, self.default_curve)

    def factor(
        self,
        times: np.ndarray,
        user_class: str = "",
        tz_offset_hours: float = 0.0,
    ) -> np.ndarray:
        """Activity multiplier at each time for users of the given class."""
        t = np.asarray(times, dtype=float)
        local = t + 3600.0 * tz_offset_hours
        hours = (local % SECONDS_PER_DAY) / 3600.0
        out = self.curve_for(user_class)(hours)
        factor = self.weekend_factor.get(user_class)
        if factor is not None:
            day = np.floor(local / SECONDS_PER_DAY).astype(np.int64)
            is_weekend = (day % 7) >= 5
            out = np.where(is_weekend, out * factor, out)
        return out

    def max_factor(self, user_class: str = "") -> float:
        """Upper bound of the factor (for Poisson thinning)."""
        bound = self.curve_for(user_class).max_value
        factor = self.weekend_factor.get(user_class)
        if factor is not None and factor > 1.0:
            bound *= factor
        return bound
