"""Composable telemetry degradation operators for the sensitivity suite.

The recovery gates (:mod:`repro.analysis.recovery`) answer a binary
question — does the estimator absorb a latency-regime incident? Real
telemetry degrades *gradually* along different axes: collectors thin the
stream when load peaks (irregular sampling), slow requests time out of the
logging path more often than fast ones (informative, outcome-dependent
missingness — MNAR), and a handful of heavy users can dominate a pooled
per-event estimate. Each pathology here is a :class:`DegradationSpec`: a
pure, seeded, *level-parameterized* transform over an already-generated
:class:`~repro.telemetry.log_store.LogStore`.

Design rules, pinned by ``tests/workload/test_degradations.py``:

- **Level zero is the identity.** ``apply`` at ``level=0.0`` returns a
  store whose every column equals the input's — the clean twin of a
  zero-level cell is the cell itself.
- **One uniform draw per row, whatever the level.** Selections are made by
  comparing a fixed per-row draw against a level-dependent threshold, so
  the rows dropped at level 0.3 are a subset of those dropped at 0.6
  (monotone nesting) and tuning one knob never reshuffles another's
  selections — the same discipline as :class:`~repro.faults.incidents.IncidentFault`.
- **Per-spec derived streams.** :class:`DegradationPlan` seeds each spec
  from ``(seed, position, spec name)`` like
  :class:`~repro.faults.FaultPlan`, so adding a spec to a plan never moves
  another spec's draws.

The same operators exist as row-level :class:`~repro.faults.FaultSpec`
shadows in :mod:`repro.faults.degradations` for ``corrupt_jsonl`` chaos
runs over serialized telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.stats.rng import RngFactory
from repro.telemetry.log_store import LogStore

__all__ = [
    "DegradationSpec",
    "DegradationPlan",
    "DiurnalThinning",
    "InformativeMissingness",
    "HeavyUserSkew",
    "DEGRADATION_BUILDERS",
]


def _check_level(level: float) -> None:
    if not 0.0 <= level <= 1.0:
        raise ConfigError(f"degradation level must be in [0, 1], got {level}")


@dataclass(frozen=True)
class DegradationSpec:
    """Base class: a named, seeded, level-parameterized store transform."""

    level: float = 0.0

    def __post_init__(self) -> None:
        _check_level(self.level)

    @property
    def name(self) -> str:
        return type(self).__name__

    def apply(self, logs: LogStore, rng: np.random.Generator) -> LogStore:
        """Return the degraded store; must not mutate the input."""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class DiurnalThinning(DegradationSpec):
    """Irregular sampling: drop probability follows the diurnal curve.

    Collectors shed load exactly when traffic peaks, so the drop
    probability for a row at local hour ``h`` is
    ``level * 0.5 * (1 + cos(2π (h - peak_hour) / 24))`` — maximal at
    ``peak_hour``, zero at the diurnal trough. ``level`` is the peak drop
    probability; the *average* drop share is roughly ``level / 2``.
    """

    peak_hour: float = 13.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.peak_hour < 24.0:
            raise ConfigError(
                f"peak_hour must be in [0, 24), got {self.peak_hour}")

    def apply(self, logs: LogStore, rng: np.random.Generator) -> LogStore:
        u = rng.random(len(logs))
        if logs.is_empty:
            return logs.filter(np.zeros(0, dtype=bool))
        hours = (logs.local_times / 3600.0) % 24.0
        weight = 0.5 * (1.0 + np.cos(2.0 * np.pi * (hours - self.peak_hour) / 24.0))
        return logs.filter(u >= self.level * weight)


@dataclass(frozen=True)
class InformativeMissingness(DegradationSpec):
    """MNAR dropout: drop probability depends on the latency itself.

    A logistic ramp centered at ``knee_ms``: fast rows are almost always
    kept, rows deep in the tail are dropped with probability up to
    ``level``. This is the outcome-dependent missingness of the SensIAT
    setting — the exact mechanism that silently *flattens* an NLP curve,
    because the biased distribution loses its upper tail while the
    unbiased draw (sampled from the same thinned stream) loses it too.
    """

    knee_ms: float = 450.0
    width_ms: float = 150.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.knee_ms <= 0 or self.width_ms <= 0:
            raise ConfigError(
                f"knee_ms and width_ms must be positive, got "
                f"knee={self.knee_ms}, width={self.width_ms}")

    def apply(self, logs: LogStore, rng: np.random.Generator) -> LogStore:
        u = rng.random(len(logs))
        if logs.is_empty:
            return logs.filter(np.zeros(0, dtype=bool))
        z = (logs.latencies_ms - self.knee_ms) / self.width_ms
        # Numerically stable sigmoid without scipy: exp of -|z| only.
        ez = np.exp(-np.abs(z))
        sigmoid = np.where(z >= 0, 1.0 / (1.0 + ez), ez / (1.0 + ez))
        return logs.filter(u >= self.level * sigmoid)


@dataclass(frozen=True)
class HeavyUserSkew(DegradationSpec):
    """Heavy-user dominance: the top users' rows are over-represented.

    The per-event pooling pitfall from app-performance A/B lore: a pooled
    estimate weights users by their event count, so a duplicated (or
    over-collected) heavy-user cohort drags the curve toward *their*
    latency experience. The top ``heavy_share`` of users by action count
    have each row emitted ``1 + level * max_extra`` times in expectation
    (integer part deterministic, fractional part by the per-row draw).

    Unlike the thinning operators this one changes neither the latency
    regime nor the time profile much — which is what makes it the suite's
    *silent-bias* candidate: the bias fingerprint lives in the user
    aggregation, where no regime or missingness probe looks.
    """

    heavy_share: float = 0.1
    max_extra: float = 3.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.heavy_share <= 1.0:
            raise ConfigError(
                f"heavy_share must be in (0, 1], got {self.heavy_share}")
        if self.max_extra < 0:
            raise ConfigError(
                f"max_extra must be >= 0, got {self.max_extra}")

    def apply(self, logs: LogStore, rng: np.random.Generator) -> LogStore:
        u = rng.random(len(logs))
        if logs.is_empty:
            return logs.filter(np.zeros(0, dtype=bool))
        codes, counts = logs.per_user_action_count()
        n_heavy = max(1, int(round(self.heavy_share * codes.size)))
        # Stable sort: ties in count resolve by code order, deterministically.
        heavy = codes[np.argsort(-counts, kind="stable")[:n_heavy]]
        is_heavy = np.isin(logs.user_codes, heavy)
        extra = self.level * self.max_extra
        whole = int(np.floor(extra))
        frac = extra - whole
        repeats = np.ones(len(logs), dtype=np.int64)
        repeats[is_heavy] += whole
        repeats[is_heavy & (u < frac)] += 1
        idx = np.repeat(np.arange(len(logs)), repeats)
        return LogStore.from_coded_arrays(
            times=logs.times[idx],
            latencies_ms=logs.latencies_ms[idx],
            action_codes=logs.action_codes[idx],
            action_vocab=logs.action_vocab,
            user_codes=logs.user_codes[idx],
            user_vocab=logs.user_vocab,
            class_codes=logs.class_codes[idx],
            class_vocab=logs.class_vocab,
            success=logs.success[idx],
            tz_offsets=logs.tz_offsets[idx],
        )


@dataclass(frozen=True)
class DegradationPlan:
    """An ordered, seeded composition of degradation specs.

    Mirrors :class:`~repro.faults.FaultPlan`: ``apply`` derives one
    independent stream per spec from ``(seed, position, spec name)``, so
    the plan's output is a pure function of its inputs and adding a spec
    never moves another's draws. Stream names deliberately exclude the
    level, so sweeping one operator across levels reuses the same per-row
    draws (monotone nesting across the level ladder).
    """

    specs: Sequence[DegradationSpec] = ()
    seed: int = 0

    def apply(self, logs: LogStore) -> LogStore:
        factory = RngFactory(self.seed)
        out = logs
        for i, spec in enumerate(self.specs):
            rng = factory.stream(f"degrade/{i}/{spec.name}")
            out = spec.apply(out, rng)
        return out

    def describe(self) -> str:
        return " -> ".join(
            f"{spec.name}(level={spec.level:g})" for spec in self.specs
        ) or "(no degradation)"


#: Level-parameterized builders for every operator family, keyed by the
#: names the sensitivity fixtures (and their fault-spec mirrors) use.
DEGRADATION_BUILDERS: Dict[str, Callable[[float], DegradationSpec]] = {
    "diurnal-thinning": lambda level: DiurnalThinning(level=level),
    "mnar-latency": lambda level: InformativeMissingness(level=level),
    "user-skew": lambda level: HeavyUserSkew(level=level),
}
