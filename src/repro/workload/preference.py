"""Ground-truth latency preference curves.

The simulator's users accept or skip candidate actions with a probability
that depends on latency — the *ground-truth preference*. Each curve is a
monotone cubic through anchor points lifted from the paper's own figures, so
the reproduction target is explicit: AutoSens, run on the synthetic logs,
should recover these curves.

All curves are normalized so that preference at the paper's reference
latency (300 ms) equals 1, and clamped flat outside the anchor range.
Steepness variants (user conditioning, time-of-day) are expressed as a
power transform ``pref(L) ** exponent`` — the exponent leaves the value at
the reference latency fixed at 1 while scaling sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.stats.interpolate import MonotoneCubicInterpolator
from repro.types import ActionType, DayPeriod, UserClass

#: The paper's reference latency for normalization (Section 3.2).
REFERENCE_LATENCY_MS = 300.0


@dataclass(frozen=True)
class PreferenceCurve:
    """A normalized latency-preference function.

    ``anchors`` maps latency (ms) to normalized preference; the value at
    :data:`REFERENCE_LATENCY_MS` must be 1.0 (add the anchor explicitly).
    """

    anchors: Tuple[Tuple[float, float], ...]
    name: str = "preference"

    def __post_init__(self) -> None:
        pts = sorted(self.anchors)
        if len(pts) < 2:
            raise ConfigError("a preference curve needs at least two anchors")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        if any(y <= 0 for y in ys):
            raise ConfigError("preference values must be positive")
        object.__setattr__(self, "anchors", tuple(pts))
        object.__setattr__(self, "_interp", MonotoneCubicInterpolator(xs, ys))

    @classmethod
    def from_mapping(cls, anchors: Mapping[float, float], name: str = "preference") -> "PreferenceCurve":
        return cls(anchors=tuple(anchors.items()), name=name)

    def __call__(self, latency_ms: np.ndarray, exponent: float = 1.0) -> np.ndarray:
        """Preference at the given latencies, optionally power-transformed."""
        base = self._interp(np.asarray(latency_ms, dtype=float))
        if exponent == 1.0:
            return base
        return np.power(base, exponent)

    def normalized(self, latency_ms: np.ndarray, reference_ms: float = REFERENCE_LATENCY_MS,
                   exponent: float = 1.0) -> np.ndarray:
        """Preference normalized to 1 at ``reference_ms``."""
        ref = float(self(np.asarray([reference_ms]), exponent)[0])
        return self(latency_ms, exponent) / ref

    @property
    def max_value(self) -> float:
        """Upper bound of the curve over its anchor range (for thinning)."""
        dense = np.linspace(self.anchors[0][0], self.anchors[-1][0], 2048)
        return float(np.max(self._interp(dense)))


# --- Paper-derived anchor sets ------------------------------------------
#
# Anchors at and above 300 ms for SelectMail are the values the paper
# reports (Figure 4 and Section 3.5). Values below 300 ms and for the other
# actions are read off the paper's figures to the precision the plots allow.

PAPER_ANCHORS: Dict[str, Dict[float, float]] = {
    ActionType.SELECT_MAIL.value: {
        50.0: 1.13, 150.0: 1.07, 300.0: 1.0, 500.0: 0.88,
        1000.0: 0.68, 1500.0: 0.61, 2000.0: 0.59, 3000.0: 0.57,
    },
    ActionType.SWITCH_FOLDER.value: {
        50.0: 1.10, 150.0: 1.05, 300.0: 1.0, 500.0: 0.91,
        1000.0: 0.74, 1500.0: 0.67, 2000.0: 0.64, 3000.0: 0.62,
    },
    ActionType.SEARCH.value: {
        50.0: 1.05, 150.0: 1.02, 300.0: 1.0, 500.0: 0.96,
        1000.0: 0.86, 1500.0: 0.80, 2000.0: 0.76, 3000.0: 0.73,
    },
    ActionType.COMPOSE_SEND.value: {
        50.0: 1.02, 150.0: 1.01, 300.0: 1.0, 500.0: 0.99,
        1000.0: 0.97, 1500.0: 0.96, 2000.0: 0.95, 3000.0: 0.94,
    },
}

#: Consumer users are more latency-tolerant than business users (Figure 5);
#: consumer SelectMail sits clearly above the business curve.
CONSUMER_ANCHORS: Dict[str, Dict[float, float]] = {
    ActionType.SELECT_MAIL.value: {
        50.0: 1.08, 150.0: 1.04, 300.0: 1.0, 500.0: 0.93,
        1000.0: 0.79, 1500.0: 0.73, 2000.0: 0.70, 3000.0: 0.68,
    },
}

#: Sensitivity exponents per six-hour period (Figure 7): daytime steepest.
PERIOD_EXPONENTS: Dict[DayPeriod, float] = {
    DayPeriod.MORNING: 1.20,
    DayPeriod.AFTERNOON: 1.05,
    DayPeriod.NIGHT: 0.80,
    DayPeriod.LATE_NIGHT: 0.60,
}

#: Sensitivity exponents per median-latency quartile (Figure 6): users
#: accustomed to fast service (Q1) react most strongly.
QUARTILE_EXPONENTS: Tuple[float, float, float, float] = (1.35, 1.10, 0.85, 0.60)


def paper_curve(action: ActionType | str, user_class: UserClass | str = UserClass.BUSINESS) -> PreferenceCurve:
    """The paper-derived ground-truth curve for an (action, class) pair.

    Consumer users get the shallower consumer variant where defined,
    otherwise an exponent-softened business curve.
    """
    action_name = action.value if isinstance(action, ActionType) else str(action)
    class_name = user_class.value if isinstance(user_class, UserClass) else str(user_class)
    if action_name not in PAPER_ANCHORS:
        raise ConfigError(f"no paper anchors for action {action_name!r}")
    if class_name == UserClass.CONSUMER.value:
        if action_name in CONSUMER_ANCHORS:
            return PreferenceCurve.from_mapping(
                CONSUMER_ANCHORS[action_name], name=f"{action_name}/consumer"
            )
        # Soften the business curve: consumers are ~0.7x as sensitive.
        base = PAPER_ANCHORS[action_name]
        softened = {x: y ** 0.7 for x, y in base.items()}
        return PreferenceCurve.from_mapping(softened, name=f"{action_name}/consumer")
    return PreferenceCurve.from_mapping(
        PAPER_ANCHORS[action_name], name=f"{action_name}/business"
    )


class GroundTruth:
    """Complete ground-truth preference model for a simulated service.

    Combines per-(action, class) base curves with multiplicative sensitivity
    exponents for time-of-day period and per-user conditioning:

    ``pref(L) = base_curve[action, class](L) ** (e_period * e_user)``

    A flat model (no latency sensitivity at all) is expressed by curves that
    are constant 1.
    """

    def __init__(
        self,
        curves: Mapping[Tuple[str, str], PreferenceCurve],
        period_exponents: Mapping[DayPeriod, float] | None = None,
        reference_ms: float = REFERENCE_LATENCY_MS,
    ) -> None:
        if not curves:
            raise ConfigError("GroundTruth needs at least one curve")
        self.curves = dict(curves)
        self.period_exponents = dict(period_exponents or {})
        self.reference_ms = reference_ms

    @classmethod
    def paper_default(
        cls,
        actions: Tuple[ActionType, ...] = tuple(ActionType),
        classes: Tuple[UserClass, ...] = tuple(UserClass),
        time_of_day_effect: bool = False,
    ) -> "GroundTruth":
        """The full paper-shaped model over all action/class combinations."""
        curves = {
            (a.value, c.value): paper_curve(a, c) for a in actions for c in classes
        }
        return cls(
            curves,
            period_exponents=PERIOD_EXPONENTS if time_of_day_effect else None,
        )

    def curve_for(self, action: str, user_class: str) -> PreferenceCurve:
        key = (action, user_class)
        if key in self.curves:
            return self.curves[key]
        # Fall back to a class-agnostic curve if one was registered.
        key_any = (action, "")
        if key_any in self.curves:
            return self.curves[key_any]
        raise ConfigError(f"no ground-truth curve for {key}")

    def period_exponent(self, hours: np.ndarray) -> np.ndarray:
        """Per-sample sensitivity exponent from local hour of day."""
        if not self.period_exponents:
            return np.ones(np.asarray(hours).shape, dtype=float)
        out = np.empty(np.asarray(hours).shape, dtype=float)
        flat = out.ravel()
        for i, h in enumerate(np.asarray(hours, dtype=float).ravel()):
            flat[i] = self.period_exponents.get(DayPeriod.of_hour(h), 1.0)
        return out

    def preference(
        self,
        latency_ms: np.ndarray,
        action: str,
        user_class: str,
        hours: np.ndarray | None = None,
        user_exponent: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Ground-truth acceptance preference, un-normalized (value at any L)."""
        curve = self.curve_for(action, user_class)
        exponent = np.asarray(user_exponent, dtype=float)
        if hours is not None:
            exponent = exponent * self.period_exponent(hours)
        base = curve(latency_ms)
        return np.power(base, exponent)

    def expected_nlp(
        self,
        latency_ms: np.ndarray,
        action: str,
        user_class: str,
        period: DayPeriod | None = None,
        user_exponent: float = 1.0,
    ) -> np.ndarray:
        """The NLP curve AutoSens should recover for a homogeneous group."""
        exponent = user_exponent
        if period is not None and self.period_exponents:
            exponent *= self.period_exponents.get(period, 1.0)
        curve = self.curve_for(action, user_class)
        return curve.normalized(latency_ms, self.reference_ms, exponent)
