"""The telemetry generator: turns models into ``(T, A, L, M)`` logs.

This is the reproduction's stand-in for two months of OWA traffic. It
simulates the *causal* data-generating process that AutoSens assumes:

1. A latency level path ``level(t)`` with diurnal shape and OU congestion
   (:mod:`repro.workload.latency_model`).
2. A candidate-action point process per user whose rate follows the
   time-based activity curve α(t) (:mod:`repro.workload.activity_model`) —
   candidates are moments a user *would* act if latency were ideal.
3. Each candidate is **thinned** (accepted/rejected) with probability
   proportional to the ground-truth latency preference evaluated at the
   latency the action would experience. Accepted candidates become log rows.

Thinning a non-homogeneous Poisson process is exact: the accepted stream is
itself Poisson with rate ``α(t) · pref(L(t))``, which is precisely the
"users do fewer actions when latency is high" behaviour the paper infers
from. The generator therefore *knows* the true preference curve, and the
evaluation asks whether AutoSens recovers it.

Two response modes (Ablation A; see paper Section 3.5):

- ``"realized"`` — preference acts on the realized per-request latency
  (latency in the user's critical path mechanically throttles actions);
- ``"level"`` — preference acts on the predictable level only (users react
  to how fast the service *feels*, not to per-request noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.parallel import resolve_executor
from repro.parallel.seeding import task_seeds
from repro.stats.rng import RngFactory, SeedLike
from repro.telemetry.log_store import LogStore
from repro.workload.actions import ActionMix, owa_action_mix
from repro.workload.activity_model import ActivityModel
from repro.workload.incidents import IncidentPlan, IncidentWindow
from repro.workload.latency_model import LatencyGrid, LatencyModel, LatencyModelConfig
from repro.workload.population import Population, PopulationConfig, synthesize_population
from repro.workload.preference import GroundTruth, PERIOD_EXPONENTS
from repro.workload.queue_model import QueueModel, QueueModelConfig

SECONDS_PER_DAY = 86400.0

VALID_RESPONSE_MODES = ("realized", "level")

VALID_LATENCY_BACKENDS = ("ou", "queue")


@dataclass(frozen=True)
class GeneratorConfig:
    """Top-level knobs of the telemetry generator."""

    duration_days: float = 7.0
    start: float = 0.0
    candidates_per_user_day: float = 60.0
    response_mode: str = "realized"
    jitter_sigma: float = 0.08
    error_rate: float = 0.01
    chunk_size: int = 1_000_000
    population: PopulationConfig = field(default_factory=PopulationConfig)
    latency: LatencyModelConfig = field(default_factory=LatencyModelConfig)
    #: Which latency level process drives the grid: the postulated
    #: diurnal x OU path (``"ou"``) or the M/G/k queue (``"queue"``).
    latency_backend: str = "ou"
    queue: QueueModelConfig = field(default_factory=QueueModelConfig)
    #: Incident scenarios perturbing the queue backend (queue-only).
    incident_plan: IncidentPlan = field(default_factory=IncidentPlan)

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ConfigError(f"duration_days must be positive, got {self.duration_days}")
        if self.candidates_per_user_day <= 0:
            raise ConfigError(
                f"candidates_per_user_day must be positive, got {self.candidates_per_user_day}"
            )
        if self.response_mode not in VALID_RESPONSE_MODES:
            raise ConfigError(
                f"response_mode must be one of {VALID_RESPONSE_MODES}, got {self.response_mode!r}"
            )
        if not 0.0 <= self.error_rate < 1.0:
            raise ConfigError(f"error_rate must be in [0, 1), got {self.error_rate}")
        if self.chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.latency_backend not in VALID_LATENCY_BACKENDS:
            raise ConfigError(
                f"latency_backend must be one of {VALID_LATENCY_BACKENDS}, "
                f"got {self.latency_backend!r}"
            )
        if self.incident_plan.specs and self.latency_backend != "queue":
            raise ConfigError(
                "incident_plan requires latency_backend='queue' — the OU "
                "backend has its own IncidentConfig overlay"
            )


@dataclass
class TelemetryResult:
    """Logs plus everything needed to evaluate recovery against truth."""

    logs: LogStore
    grid: LatencyGrid
    population: Population
    ground_truth: GroundTruth
    action_mix: ActionMix
    activity_model: ActivityModel
    config: GeneratorConfig
    n_candidates: int
    n_accepted: int
    #: Ground-truth incident annotations (queue backend only; else empty).
    incident_windows: List[IncidentWindow] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        if self.n_candidates == 0:
            return 0.0
        return self.n_accepted / self.n_candidates


@dataclass
class _ChunkRngs:
    """The six per-purpose generators one chunk simulation consumes."""

    times: np.random.Generator
    users: np.random.Generator
    actions: np.random.Generator
    jitter: np.random.Generator
    accept: np.random.Generator
    errors: np.random.Generator

    @classmethod
    def from_factory(cls, factory: RngFactory) -> "_ChunkRngs":
        # Child names and creation order match the original inline loop, so
        # the serial path reproduces historical outputs byte-for-byte.
        return cls(
            times=factory.child("candidate-times"),
            users=factory.child("candidate-users"),
            actions=factory.child("candidate-actions"),
            jitter=factory.child("request-jitter"),
            accept=factory.child("acceptance"),
            errors=factory.child("errors"),
        )


def _chunk_task(payload: tuple) -> Tuple[int, Optional[tuple]]:
    """Top-level (picklable) task: simulate one candidate chunk.

    Each chunk derives its generators from its own pre-spawned seed, making
    the result a pure function of the payload — identical on any backend.
    """
    (generator, m, duration_s, population, grid, user_probs,
     alpha_max, pref_bound, seed) = payload
    rngs = _ChunkRngs.from_factory(RngFactory(seed))
    return generator._simulate_chunk(
        m, duration_s, population, grid, user_probs, alpha_max, pref_bound, rngs
    )


class TelemetryGenerator:
    """Generates synthetic telemetry with known ground truth."""

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        ground_truth: Optional[GroundTruth] = None,
        action_mix: Optional[ActionMix] = None,
        activity_model: Optional[ActivityModel] = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.ground_truth = ground_truth or GroundTruth.paper_default()
        self.action_mix = action_mix or owa_action_mix()
        self.activity_model = activity_model or ActivityModel()
        self._incident_windows: List[IncidentWindow] = []

    # -- internal helpers --------------------------------------------------

    def _preference_bound(self, population: Population) -> float:
        """Upper bound on the un-normalized preference over all samples."""
        max_exponent = float(np.max(population.conditioning_exponents))
        if self.ground_truth.period_exponents:
            max_exponent *= max(self.ground_truth.period_exponents.values())
        max_curve = max(curve.max_value for curve in self.ground_truth.curves.values())
        # pref = curve ** e; for curve > 1 the bound grows with the exponent.
        bound = max(max_curve, 1.0) ** max(max_exponent, 1.0)
        return float(bound)

    def _class_alpha_max(self, population: Population) -> Dict[str, float]:
        return {
            name: self.activity_model.max_factor(name)
            for name in population.class_vocab
        }

    def _evaluate_preference(
        self,
        latency_for_response: np.ndarray,
        action_idx: np.ndarray,
        user_idx: np.ndarray,
        hours: np.ndarray,
        population: Population,
    ) -> np.ndarray:
        """Vectorized ground-truth preference per candidate."""
        pref = np.empty(latency_for_response.shape, dtype=float)
        user_exponent = population.conditioning_exponents[user_idx]
        if self.ground_truth.period_exponents:
            period_exponent = self.ground_truth.period_exponent(hours)
        else:
            period_exponent = 1.0
        exponent = user_exponent * period_exponent
        class_codes = population.classes[user_idx]
        for a_idx, action_name in enumerate(self.action_mix.names):
            for c_code, class_name in enumerate(population.class_vocab):
                mask = (action_idx == a_idx) & (class_codes == c_code)
                if not np.any(mask):
                    continue
                curve = self.ground_truth.curve_for(action_name, class_name)
                pref[mask] = curve(latency_for_response[mask], exponent=1.0) ** exponent[mask]
        return pref

    def _make_grid(self, duration_s: float, factory: RngFactory) -> LatencyGrid:
        """Sample the latency level path; subclasses may replay a trace.

        Dispatches on ``config.latency_backend``. The queue backend builds
        the (seeded) incident profile first and records its ground-truth
        windows for :attr:`TelemetryResult.incident_windows`.
        """
        cfg = self.config
        if cfg.latency_backend == "queue":
            profile = None
            if cfg.incident_plan.specs:
                n_cells = int(np.ceil(duration_s / cfg.queue.grid_dt_s))
                profile = cfg.incident_plan.build(
                    cfg.start, cfg.queue.grid_dt_s, n_cells
                )
                self._incident_windows = list(profile.windows)
            return QueueModel(cfg.queue).sample_grid(
                duration_s, rng=factory.child("latency-grid"),
                start=cfg.start, profile=profile,
            )
        latency_model = LatencyModel(cfg.latency)
        return latency_model.sample_grid(
            duration_s, rng=factory.child("latency-grid"), start=cfg.start,
            incident_rng=factory.child("latency-incidents"),
        )

    def _simulate_chunk(
        self,
        m: int,
        duration_s: float,
        population: Population,
        grid: LatencyGrid,
        user_probs: np.ndarray,
        alpha_max: float,
        pref_bound: float,
        rngs: "_ChunkRngs",
    ) -> Tuple[int, Optional[tuple]]:
        """Simulate ``m`` candidates; return (accepted count, row arrays).

        Consumes the per-purpose generators in the exact order of the
        original inline loop, so running chunks sequentially through one
        shared :class:`_ChunkRngs` reproduces the legacy byte stream.
        """
        cfg = self.config
        tz_by_user = population.tz_offsets

        t = rngs.times.uniform(cfg.start, cfg.start + duration_s, size=m)
        user_idx = rngs.users.choice(population.n_users, size=m, p=user_probs)
        action_idx = self.action_mix.sample(m, rng=rngs.actions)

        level = grid.level_at(t)
        action_mult = self.action_mix.latency_multipliers[action_idx]
        user_mult = population.latency_multipliers[user_idx]
        predictable = level * action_mult * user_mult
        jitter = np.exp(
            rngs.jitter.normal(-0.5 * cfg.jitter_sigma**2, cfg.jitter_sigma, size=m)
        )
        realized = predictable * jitter

        tz = tz_by_user[user_idx]
        local_hours = ((t + 3600.0 * tz) % SECONDS_PER_DAY) / 3600.0

        # Activity factor per candidate (class-dependent curves).
        alpha = np.empty(m, dtype=float)
        class_codes = population.classes[user_idx]
        for c_code, class_name in enumerate(population.class_vocab):
            mask = class_codes == c_code
            if not np.any(mask):
                continue
            curve = self.activity_model.curve_for(class_name)
            alpha[mask] = curve(local_hours[mask])
            weekend = self.activity_model.weekend_factor.get(class_name)
            if weekend is not None:
                local = t[mask] + 3600.0 * tz[mask]
                day = np.floor(local / SECONDS_PER_DAY).astype(np.int64)
                is_weekend = (day % 7) >= 5
                alpha[mask] = np.where(is_weekend, alpha[mask] * weekend, alpha[mask])

        response_latency = realized if cfg.response_mode == "realized" else predictable
        pref = self._evaluate_preference(
            response_latency, action_idx, user_idx, local_hours, population
        )

        accept_prob = (alpha / alpha_max) * (pref / pref_bound)
        accepted = rngs.accept.random(m) < accept_prob
        if not np.any(accepted):
            return 0, None

        idx = np.flatnonzero(accepted)
        success = rngs.errors.random(idx.size) >= cfg.error_rate
        return idx.size, (
            t[idx], realized[idx], action_idx[idx], user_idx[idx],
            class_codes[idx], success, tz[idx],
        )

    # -- main entry point ----------------------------------------------------

    def generate(self, rng: SeedLike = None, executor=None) -> TelemetryResult:
        """Run the simulation and return logs plus ground truth.

        With ``executor=None`` (the default) chunks are simulated serially
        through one shared set of generators — byte-identical to the
        historical output for a given seed. Passing an executor spec (see
        :mod:`repro.parallel`) fans chunks out with independent per-chunk
        streams; the result is deterministic for a given seed and identical
        across backends, but differs from the serial-default stream.
        """
        cfg = self.config
        if isinstance(rng, RngFactory):
            factory = rng
        elif isinstance(rng, np.random.Generator):
            factory = RngFactory(int(rng.integers(0, 2**63 - 1)))
        else:
            factory = RngFactory(rng)
        population = synthesize_population(cfg.population, rng=factory.child("population"))
        duration_s = cfg.duration_days * SECONDS_PER_DAY

        self._incident_windows = []
        grid = self._make_grid(duration_s, factory)

        # Total candidate intensity, bounded above for thinning.
        weights = population.activity_weights
        mean_weight = float(weights.mean())
        base_rate_per_weight = cfg.candidates_per_user_day / (
            SECONDS_PER_DAY * mean_weight
        )
        alpha_max_by_class = self._class_alpha_max(population)
        alpha_max = max(alpha_max_by_class.values())
        pref_bound = self._preference_bound(population)
        total_max_rate = base_rate_per_weight * float(weights.sum()) * alpha_max * pref_bound

        gen_counts = factory.child("candidate-count")
        n_candidates = int(gen_counts.poisson(total_max_rate * duration_s))

        user_probs = population.sampling_probabilities()

        sizes = []
        remaining = n_candidates
        while remaining > 0:
            m = min(remaining, cfg.chunk_size)
            remaining -= m
            sizes.append(m)

        if executor is None:
            rngs = _ChunkRngs.from_factory(factory)
            results = [
                self._simulate_chunk(
                    m, duration_s, population, grid, user_probs,
                    alpha_max, pref_bound, rngs,
                )
                for m in sizes
            ]
        else:
            seeds = task_seeds(factory, "generator-chunk", len(sizes))
            payloads = [
                (self, m, duration_s, population, grid, user_probs,
                 alpha_max, pref_bound, seed)
                for m, seed in zip(sizes, seeds)
            ]
            results = resolve_executor(executor).map_ordered(_chunk_task, payloads)

        n_accepted = sum(r[0] for r in results)
        chunks = [r[1] for r in results if r[1] is not None]

        if chunks:
            times = np.concatenate([c[0] for c in chunks])
            latencies = np.concatenate([c[1] for c in chunks])
            actions = np.concatenate([c[2] for c in chunks])
            users = np.concatenate([c[3] for c in chunks])
            classes = np.concatenate([c[4] for c in chunks])
            success = np.concatenate([c[5] for c in chunks])
            tz = np.concatenate([c[6] for c in chunks])
            order = np.argsort(times, kind="mergesort")
            logs = LogStore.from_coded_arrays(
                times=times[order],
                latencies_ms=latencies[order],
                action_codes=actions[order],
                action_vocab=list(self.action_mix.names),
                user_codes=users[order],
                user_vocab=list(population.user_ids),
                class_codes=classes[order],
                class_vocab=list(population.class_vocab),
                success=success[order],
                tz_offsets=tz[order],
            )
        else:
            logs = LogStore.from_coded_arrays(
                times=np.array([], dtype=float),
                latencies_ms=np.array([], dtype=float),
                action_codes=np.array([], dtype=np.int64),
                action_vocab=list(self.action_mix.names),
                user_codes=np.array([], dtype=np.int64),
                user_vocab=list(population.user_ids),
                class_codes=np.array([], dtype=np.int64),
                class_vocab=list(population.class_vocab),
            )

        return TelemetryResult(
            logs=logs,
            grid=grid,
            population=population,
            ground_truth=self.ground_truth,
            action_mix=self.action_mix,
            activity_model=self.activity_model,
            config=cfg,
            n_candidates=n_candidates,
            n_accepted=n_accepted,
            incident_windows=list(self._incident_windows),
        )


def generate_telemetry(
    seed: Optional[int] = None,
    config: Optional[GeneratorConfig] = None,
    ground_truth: Optional[GroundTruth] = None,
    action_mix: Optional[ActionMix] = None,
    activity_model: Optional[ActivityModel] = None,
) -> TelemetryResult:
    """One-call convenience wrapper around :class:`TelemetryGenerator`."""
    generator = TelemetryGenerator(
        config=config,
        ground_truth=ground_truth,
        action_mix=action_mix,
        activity_model=activity_model,
    )
    return generator.generate(rng=seed)
