"""Action mixes: which action types occur, how often, and how slow they are.

Each action type carries a share of the candidate-action stream and a
latency multiplier on top of the service level — Search does server-side
work and is slower; ComposeSend acknowledges asynchronously and is fast
(Section 3.2 explains why its latency barely matters to users).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.stats.rng import SeedLike, spawn_rng
from repro.types import ActionType


@dataclass(frozen=True)
class ActionSpec:
    """One action type's share of traffic and latency scaling."""

    name: str
    share: float
    latency_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("action name must be non-empty")
        if self.share < 0:
            raise ConfigError(f"share must be non-negative, got {self.share}")
        if self.latency_multiplier <= 0:
            raise ConfigError(
                f"latency_multiplier must be positive, got {self.latency_multiplier}"
            )


class ActionMix:
    """A normalized collection of :class:`ActionSpec`."""

    def __init__(self, specs: Tuple[ActionSpec, ...]) -> None:
        if not specs:
            raise ConfigError("an action mix needs at least one action")
        total = sum(s.share for s in specs)
        if total <= 0:
            raise ConfigError("action shares must sum to a positive value")
        self.specs = tuple(specs)
        self._probs = np.array([s.share / total for s in specs], dtype=float)

    @classmethod
    def from_mapping(cls, shares: Mapping[str, float],
                     multipliers: Mapping[str, float] | None = None) -> "ActionMix":
        multipliers = multipliers or {}
        return cls(tuple(
            ActionSpec(name, share, multipliers.get(name, 1.0))
            for name, share in shares.items()
        ))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    @property
    def probabilities(self) -> np.ndarray:
        return self._probs.copy()

    @property
    def latency_multipliers(self) -> np.ndarray:
        return np.array([s.latency_multiplier for s in self.specs], dtype=float)

    def sample(self, n: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``n`` action indices from the mix."""
        generator = spawn_rng(rng)
        return generator.choice(len(self.specs), size=n, p=self._probs)


def owa_action_mix() -> ActionMix:
    """The OWA action mix studied in the paper (Section 3.2).

    Shares are plausible for an email service (most actions are opening
    mail); multipliers make Search slower and ComposeSend's acknowledged
    latency fast.
    """
    return ActionMix((
        ActionSpec(ActionType.SELECT_MAIL.value, share=0.52, latency_multiplier=1.0),
        ActionSpec(ActionType.SWITCH_FOLDER.value, share=0.22, latency_multiplier=0.9),
        ActionSpec(ActionType.SEARCH.value, share=0.14, latency_multiplier=1.7),
        ActionSpec(ActionType.COMPOSE_SEND.value, share=0.12, latency_multiplier=0.6),
    ))


def websearch_action_mix() -> ActionMix:
    """A non-sticky web-search service (extension; Section 4 discussion)."""
    return ActionMix((
        ActionSpec("Query", share=0.62, latency_multiplier=1.0),
        ActionSpec("ClickResult", share=0.30, latency_multiplier=0.5),
        ActionSpec("NextPage", share=0.08, latency_multiplier=0.9),
    ))
