"""Canned scenarios: one ready-to-run workload per paper experiment.

A :class:`Scenario` bundles a generator configuration with a human-readable
description of which figure it feeds. The per-figure benchmark and example
scripts construct their data through these, so every experiment's workload
parameters live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.workload.actions import ActionMix, owa_action_mix, websearch_action_mix
from repro.workload.activity_model import ActivityCurve, ActivityModel
from repro.workload.generator import (
    GeneratorConfig,
    TelemetryGenerator,
    TelemetryResult,
)
from repro.workload.incidents import IncidentPlan
from repro.workload.latency_model import DiurnalCurve, LatencyModelConfig
from repro.workload.queue_model import QueueModelConfig, ServiceTimeConfig
from repro.workload.population import PopulationConfig
from repro.workload.preference import (
    GroundTruth,
    PreferenceCurve,
    paper_curve,
)
from repro.types import ActionType, UserClass


@dataclass(frozen=True)
class Scenario:
    """A named, seedable workload recipe."""

    name: str
    description: str
    config: GeneratorConfig
    ground_truth: GroundTruth
    action_mix: ActionMix
    activity_model: ActivityModel
    seed: Optional[int] = None

    def generate(self, seed: Optional[int] = None, executor=None) -> TelemetryResult:
        """Generate the scenario's telemetry (seed overrides the default).

        ``executor`` is forwarded to :meth:`TelemetryGenerator.generate`
        to fan candidate chunks out over workers.
        """
        generator = TelemetryGenerator(
            config=self.config,
            ground_truth=self.ground_truth,
            action_mix=self.action_mix,
            activity_model=self.activity_model,
        )
        return generator.generate(
            rng=seed if seed is not None else self.seed, executor=executor
        )

    def scaled(self, duration_days: Optional[float] = None,
               n_users: Optional[int] = None,
               candidates_per_user_day: Optional[float] = None) -> "Scenario":
        """A copy with cheaper (or heavier) scale knobs — for tests."""
        cfg = self.config
        if duration_days is not None:
            cfg = replace(cfg, duration_days=duration_days)
        if n_users is not None:
            cfg = replace(cfg, population=replace(cfg.population, n_users=n_users))
        if candidates_per_user_day is not None:
            cfg = replace(cfg, candidates_per_user_day=candidates_per_user_day)
        return replace(self, config=cfg)

    def with_latency_backend(self, backend: str) -> "Scenario":
        """A copy running on another latency backend (``"ou"``/``"queue"``)."""
        if backend == self.config.latency_backend:
            return self
        return replace(self, config=replace(self.config, latency_backend=backend))

    def with_incidents(self, plan: IncidentPlan) -> "Scenario":
        """A copy with incident scenarios injected (queue backend implied)."""
        cfg = replace(self.config, latency_backend="queue", incident_plan=plan)
        return replace(self, config=cfg)


def _default_activity() -> ActivityModel:
    """Business users are day-heavy; consumers spread into the evening."""
    return ActivityModel(curves={
        UserClass.BUSINESS.value: ActivityCurve(night_floor=0.06, peak_hour=12.5),
        UserClass.CONSUMER.value: ActivityCurve(night_floor=0.15, peak_hour=15.5),
    })


def owa_scenario(
    seed: Optional[int] = None,
    duration_days: float = 7.0,
    n_users: int = 400,
    candidates_per_user_day: float = 60.0,
    time_of_day_effect: bool = False,
    response_mode: str = "realized",
) -> Scenario:
    """The baseline OWA-like scenario used by most figures.

    Defaults give a few hundred thousand accepted actions in a few seconds
    of generation — enough for stable 10 ms-binned B/U ratios up to ~2 s.
    """
    config = GeneratorConfig(
        duration_days=duration_days,
        candidates_per_user_day=candidates_per_user_day,
        response_mode=response_mode,
        population=PopulationConfig(n_users=n_users),
    )
    return Scenario(
        name="owa",
        description="OWA-like email service with paper-shaped preferences",
        config=config,
        ground_truth=GroundTruth.paper_default(time_of_day_effect=time_of_day_effect),
        action_mix=owa_action_mix(),
        activity_model=_default_activity(),
        seed=seed,
    )


def timeofday_scenario(
    seed: Optional[int] = None,
    duration_days: float = 10.0,
    n_users: int = 400,
    candidates_per_user_day: float = 80.0,
) -> Scenario:
    """Figure 7/8 scenario: per-period sensitivity exponents enabled."""
    base = owa_scenario(
        seed=seed,
        duration_days=duration_days,
        n_users=n_users,
        candidates_per_user_day=candidates_per_user_day,
        time_of_day_effect=True,
    )
    return replace(base, name="owa-timeofday",
                   description="OWA with time-of-day sensitivity (Figures 7-8)")


def two_month_scenario(
    seed: Optional[int] = None,
    days_per_month: int = 30,
    n_users: int = 300,
    candidates_per_user_day: float = 40.0,
) -> Scenario:
    """Figure 9 scenario: two consecutive synthetic months, one seed.

    Preference curves are held fixed across months, matching the paper's
    finding that sensitivity is stable over the period.
    """
    base = owa_scenario(
        seed=seed,
        duration_days=2.0 * days_per_month,
        n_users=n_users,
        candidates_per_user_day=candidates_per_user_day,
    )
    return replace(base, name="owa-two-months",
                   description="Two synthetic months for the stability check (Figure 9)")


def flat_preference_scenario(
    seed: Optional[int] = None,
    duration_days: float = 5.0,
    n_users: int = 300,
    candidates_per_user_day: float = 60.0,
) -> Scenario:
    """Null scenario: no latency sensitivity at all.

    Every curve is constant 1, so a correct pipeline must return a flat NLP
    curve — the negative control for the whole methodology.
    """
    flat = PreferenceCurve.from_mapping({50.0: 1.0, 3000.0: 1.0}, name="flat")
    curves = {
        (a.value, c.value): flat for a in ActionType for c in UserClass
    }
    base = owa_scenario(
        seed=seed,
        duration_days=duration_days,
        n_users=n_users,
        candidates_per_user_day=candidates_per_user_day,
    )
    return replace(
        base,
        name="owa-flat",
        description="Null control: latency-indifferent users",
        ground_truth=GroundTruth(curves),
    )


def conditioning_scenario(
    seed: Optional[int] = None,
    duration_days: float = 10.0,
    n_users: int = 600,
    candidates_per_user_day: float = 120.0,
    conditioning_gamma: float = 2.5,
    latency_mult_sigma: float = 0.25,
) -> Scenario:
    """Figure 6 scenario: conditioning-to-speed enabled.

    Users get a wider spread of personal latency multipliers (so the
    median-latency quartiles separate) and a sensitivity exponent tied to
    their speed: habitually-fast users are more latency-sensitive
    (exponent = multiplier ** -gamma, clipped).
    """
    base = owa_scenario(
        seed=seed,
        duration_days=duration_days,
        n_users=n_users,
        candidates_per_user_day=candidates_per_user_day,
    )
    config = replace(
        base.config,
        population=replace(
            base.config.population,
            conditioning_gamma=conditioning_gamma,
            latency_mult_sigma=latency_mult_sigma,
            conditioning_bounds=(0.5, 1.7),
        ),
    )
    return replace(base, name="owa-conditioning",
                   description="OWA with conditioning-to-speed (Figure 6)",
                   config=config)


def weekly_scenario(
    seed: Optional[int] = None,
    duration_days: float = 21.0,
    n_users: int = 450,
    candidates_per_user_day: float = 100.0,
) -> Scenario:
    """A workload with a pronounced weekly cycle (Ablation D).

    Weekends are quiet for business users (x0.35 activity) *and* fast
    (x0.75 latency) — a weekly confounder analogous to the paper's daily
    one. Hour-of-day slots pool Saturdays with Tuesdays and mis-normalize;
    the ``hour-of-week`` slot scheme repairs it.
    """
    base = owa_scenario(
        seed=seed,
        duration_days=duration_days,
        n_users=n_users,
        candidates_per_user_day=candidates_per_user_day,
    )
    config = replace(
        base.config,
        latency=replace(base.config.latency, weekend_level_factor=0.75),
    )
    activity = ActivityModel(
        curves={
            UserClass.BUSINESS.value: ActivityCurve(night_floor=0.06, peak_hour=12.5),
            UserClass.CONSUMER.value: ActivityCurve(night_floor=0.15, peak_hour=15.5),
        },
        weekend_factor={
            UserClass.BUSINESS.value: 0.35,
            UserClass.CONSUMER.value: 1.15,
        },
    )
    return replace(base, name="owa-weekly",
                   description="OWA with a weekly activity/latency cycle",
                   config=config, activity_model=activity)


def global_scenario(
    seed: Optional[int] = None,
    duration_days: float = 10.0,
    n_users: int = 600,
    candidates_per_user_day: float = 120.0,
) -> Scenario:
    """A multi-region population spanning three timezones.

    Users live at UTC-5, UTC (the service region) and UTC+8, and are active
    in *their own* daytime. The paper analyzes per-region slices (U.S.
    users); pooling across regions without segregating would smear the
    local-time structure the α correction relies on, so analyses should
    slice with ``logs.where(tz_offset=...)``.
    """
    base = owa_scenario(
        seed=seed,
        duration_days=duration_days,
        n_users=n_users,
        candidates_per_user_day=candidates_per_user_day,
    )
    config = replace(
        base.config,
        population=replace(
            base.config.population,
            regions=((-5.0, 0.4), (0.0, 0.4), (8.0, 0.2)),
        ),
    )
    return replace(base, name="owa-global",
                   description="Three-region population across timezones",
                   config=config)


def websearch_scenario(
    seed: Optional[int] = None,
    duration_days: float = 5.0,
    n_users: int = 300,
    candidates_per_user_day: float = 70.0,
) -> Scenario:
    """A non-sticky web-search service (Section 4's 'in principle' claim).

    Search users are *more* latency-sensitive than email users — they can
    abandon to a competitor — so the Query curve drops steeply.
    """
    query = PreferenceCurve.from_mapping(
        {50.0: 1.20, 150.0: 1.10, 300.0: 1.0, 500.0: 0.80,
         1000.0: 0.52, 1500.0: 0.42, 2000.0: 0.38, 3000.0: 0.34},
        name="Query",
    )
    click = PreferenceCurve.from_mapping(
        {50.0: 1.10, 300.0: 1.0, 500.0: 0.90, 1000.0: 0.72,
         2000.0: 0.60, 3000.0: 0.56},
        name="ClickResult",
    )
    nextpage = PreferenceCurve.from_mapping(
        {50.0: 1.12, 300.0: 1.0, 500.0: 0.84, 1000.0: 0.62,
         2000.0: 0.48, 3000.0: 0.44},
        name="NextPage",
    )
    curves = {}
    for c in UserClass:
        curves[("Query", c.value)] = query
        curves[("ClickResult", c.value)] = click
        curves[("NextPage", c.value)] = nextpage
    config = GeneratorConfig(
        duration_days=duration_days,
        candidates_per_user_day=candidates_per_user_day,
        population=PopulationConfig(n_users=n_users, business_fraction=0.3),
        latency=LatencyModelConfig(base_ms=220.0),
    )
    return Scenario(
        name="websearch",
        description="Non-sticky web-search service (extension)",
        config=config,
        ground_truth=GroundTruth(curves),
        action_mix=websearch_action_mix(),
        activity_model=_default_activity(),
        seed=seed,
    )


def queue_scenario(
    seed: Optional[int] = None,
    duration_days: float = 7.0,
    n_users: int = 400,
    candidates_per_user_day: float = 60.0,
    incident_plan: Optional[IncidentPlan] = None,
    service_distribution: str = "lognormal",
) -> Scenario:
    """OWA over the M/G/k queue backend (ROADMAP open item 2).

    Latency levels emerge from utilization instead of being postulated:
    diurnally-modulated Poisson arrivals, heavy-tailed service times and a
    small server fleet. ``incident_plan`` composes seeded incident
    scenarios on top (:mod:`repro.workload.incidents`); their ground-truth
    windows land in ``TelemetryResult.incident_windows``.
    """
    base = owa_scenario(
        seed=seed,
        duration_days=duration_days,
        n_users=n_users,
        candidates_per_user_day=candidates_per_user_day,
    )
    config = replace(
        base.config,
        latency_backend="queue",
        queue=QueueModelConfig(
            service=ServiceTimeConfig(distribution=service_distribution)
        ),
        incident_plan=incident_plan or IncidentPlan(),
    )
    return replace(
        base,
        name="owa-queue",
        description="OWA over the M/G/k queue latency backend",
        config=config,
    )


#: Registry of scenario builders by name (used by the CLI).
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "owa": owa_scenario,
    "owa-timeofday": timeofday_scenario,
    "owa-two-months": two_month_scenario,
    "owa-conditioning": conditioning_scenario,
    "owa-flat": flat_preference_scenario,
    "owa-weekly": weekly_scenario,
    "owa-global": global_scenario,
    "owa-queue": queue_scenario,
    "websearch": websearch_scenario,
}
