"""An M/G/k discrete-event queue as a second latency-level backend.

The OU backend (:mod:`repro.workload.latency_model`) *postulates* a latency
level path; this backend *derives* one from service physics: Poisson
arrivals modulated by the diurnal load curve, heavy-tailed service times
(lognormal or a lognormal + Pareto mixture), and ``k`` parallel servers.
Latency then emerges from utilization — busy hours queue, quiet hours
don't — which is a materially harder confounder regime than OU: tail
latency inflates nonlinearly near saturation, and incidents
(:mod:`repro.workload.incidents`) couple load to delay the way real
outages do.

The simulation is numpy-vectorized end to end. Arrivals are binned to the
level grid (piecewise-constant rate → per-cell Poisson counts + uniform
times). Requests route uniformly at random to one of ``k(t)`` servers;
each server is then an exact FCFS G/G/1 queue, and its waiting times come
from the Lindley recursion in closed form:

``W_n = S_{n-1} - min(0, S_1, ..., S_{n-1})`` where
``S_n = sum_{i<=n} (service_i - interarrival-gap_i)``

— one ``cumsum`` + ``minimum.accumulate`` per server, no event loop in
Python. The per-cell mean sojourn (wait + service + fixed overhead) becomes
the :class:`~repro.workload.latency_model.LatencyGrid` level path, so the
backend drops in behind :class:`~repro.workload.generator.TelemetryGenerator`
unchanged (``GeneratorConfig(latency_backend="queue")``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.stats.rng import SeedLike, spawn_rng
from repro.workload.incidents import IncidentProfile
from repro.workload.latency_model import SECONDS_PER_DAY, DiurnalCurve, LatencyGrid

__all__ = [
    "ServiceTimeConfig",
    "QueueModelConfig",
    "QueueSimResult",
    "QueueModel",
]

VALID_SERVICE_DISTRIBUTIONS = ("lognormal", "pareto-mix")


@dataclass(frozen=True)
class ServiceTimeConfig:
    """Pluggable service-time distribution (per-request work, seconds).

    - ``"lognormal"`` — a moderately skewed unimodal service time with
      log-scale sd ``sigma``; mean pinned at ``mean_ms``.
    - ``"pareto-mix"`` — a lognormal body plus a ``tail_share`` chance of a
      Pareto(``tail_alpha``) draw with scale ``tail_scale_ms``: genuinely
      heavy-tailed (infinite variance for ``tail_alpha <= 2``), the regime
      where mean-based latency intuition breaks. The body mean is solved so
      the *mixture* mean stays ``mean_ms``.
    """

    distribution: str = "lognormal"
    mean_ms: float = 150.0
    sigma: float = 0.8
    tail_share: float = 0.08
    tail_alpha: float = 2.5
    tail_scale_ms: float = 400.0

    def __post_init__(self) -> None:
        if self.distribution not in VALID_SERVICE_DISTRIBUTIONS:
            raise ConfigError(
                f"distribution must be one of {VALID_SERVICE_DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if self.mean_ms <= 0:
            raise ConfigError(f"mean_ms must be positive, got {self.mean_ms}")
        if self.sigma <= 0:
            raise ConfigError(f"sigma must be positive, got {self.sigma}")
        if not 0.0 < self.tail_share < 1.0:
            raise ConfigError(f"tail_share must be in (0, 1), got {self.tail_share}")
        if self.tail_alpha <= 1.0:
            raise ConfigError(
                f"tail_alpha must be > 1 (finite mean), got {self.tail_alpha}"
            )
        if self.tail_scale_ms <= 0:
            raise ConfigError(f"tail_scale_ms must be positive, got {self.tail_scale_ms}")
        if self.distribution == "pareto-mix" and self._body_mean_ms() <= 0:
            raise ConfigError(
                "pareto-mix tail already exceeds mean_ms: lower tail_share or "
                "tail_scale_ms, or raise mean_ms"
            )

    def _tail_mean_ms(self) -> float:
        return self.tail_alpha * self.tail_scale_ms / (self.tail_alpha - 1.0)

    def _body_mean_ms(self) -> float:
        if self.distribution == "lognormal":
            return self.mean_ms
        return (self.mean_ms - self.tail_share * self._tail_mean_ms()) / (
            1.0 - self.tail_share
        )

    def mean_s(self) -> float:
        """The distribution's mean in seconds (used for stability checks)."""
        return self.mean_ms / 1000.0

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` service times in seconds.

        Draw counts depend only on ``n`` and ``distribution``, never on the
        numeric knobs, so tuning a knob cannot shift later draws.
        """
        body_mean = self._body_mean_ms() / 1000.0
        mu = np.log(body_mean) - 0.5 * self.sigma**2
        body = np.exp(rng.normal(mu, self.sigma, size=n))
        if self.distribution == "lognormal":
            return body
        tail = (rng.pareto(self.tail_alpha, size=n) + 1.0) * (self.tail_scale_ms / 1000.0)
        is_tail = rng.random(n) < self.tail_share
        return np.where(is_tail, tail, body)


@dataclass(frozen=True)
class QueueModelConfig:
    """Knobs of the M/G/k latency backend."""

    arrival_rate_hz: float = 8.0
    servers: int = 3
    service: ServiceTimeConfig = field(default_factory=ServiceTimeConfig)
    diurnal: DiurnalCurve = field(default_factory=DiurnalCurve)
    #: Arrival-rate multiplier on weekends (days 5 and 6 of each week).
    weekend_load_factor: float = 1.0
    grid_dt_s: float = 10.0
    #: Fixed non-queueing latency: network RTT, TLS, rendering.
    overhead_ms: float = 90.0
    #: Centered moving-average window (cells) for the level path — keeps
    #: the level locally predictable, matching the paper's premise.
    level_window_cells: int = 6
    #: Peak offered utilization must stay below this (stability headroom).
    stability_margin: float = 0.95
    #: Refuse simulations that would draw more events than this.
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.arrival_rate_hz <= 0:
            raise ConfigError(
                f"arrival_rate_hz must be positive, got {self.arrival_rate_hz}"
            )
        if self.servers < 1:
            raise ConfigError(f"servers must be >= 1, got {self.servers}")
        if self.weekend_load_factor <= 0:
            raise ConfigError(
                f"weekend_load_factor must be positive, got {self.weekend_load_factor}"
            )
        if self.grid_dt_s <= 0:
            raise ConfigError(f"grid_dt_s must be positive, got {self.grid_dt_s}")
        if self.overhead_ms < 0:
            raise ConfigError(f"overhead_ms must be >= 0, got {self.overhead_ms}")
        if self.level_window_cells < 1:
            raise ConfigError(
                f"level_window_cells must be >= 1, got {self.level_window_cells}"
            )
        if not 0.0 < self.stability_margin <= 1.0:
            raise ConfigError(
                f"stability_margin must be in (0, 1], got {self.stability_margin}"
            )
        rho_peak = self.peak_utilization()
        if rho_peak >= self.stability_margin:
            raise ConfigError(
                f"unstable queue: peak offered utilization {rho_peak:.3f} >= "
                f"stability margin {self.stability_margin} "
                f"(arrival_rate_hz * diurnal.peak * mean service / servers); "
                f"add servers, shed load, or shorten service times"
            )

    def peak_utilization(self) -> float:
        """Offered utilization rho at the diurnal peak, incident-free."""
        peak_rate = self.arrival_rate_hz * self.diurnal.max_value
        peak_rate *= max(self.weekend_load_factor, 1.0)
        return peak_rate * self.service.mean_s() / self.servers


@dataclass
class QueueSimResult:
    """One simulated queue path plus the diagnostics tests lean on."""

    grid: LatencyGrid
    config: QueueModelConfig
    #: Sorted arrival times (s, absolute).
    arrival_times: np.ndarray
    #: Per-request queueing delay (s), aligned with ``arrival_times``.
    wait_s: np.ndarray
    #: Per-request service time (s), aligned with ``arrival_times``.
    service_s: np.ndarray
    #: Server each request was routed to.
    server_ids: np.ndarray
    #: Active server count per grid cell.
    servers_per_cell: np.ndarray
    duration_s: float
    profile: Optional[IncidentProfile] = None

    @property
    def n_arrivals(self) -> int:
        return int(self.arrival_times.size)

    @property
    def sojourn_s(self) -> np.ndarray:
        """Per-request time in system: wait + service (no fixed overhead)."""
        return self.wait_s + self.service_s

    @property
    def latency_ms(self) -> np.ndarray:
        """Per-request end-to-end latency including fixed overhead."""
        return self.sojourn_s * 1000.0 + self.config.overhead_ms

    def effective_arrival_rate_hz(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.n_arrivals / self.duration_s

    def utilization(self) -> float:
        """Realized utilization: work demanded over capacity offered."""
        capacity = self.duration_s * float(np.mean(self.servers_per_cell))
        if capacity <= 0:
            return 0.0
        return float(np.sum(self.service_s)) / capacity

    def mean_occupancy(self) -> float:
        """Time-averaged number-in-system over the simulated horizon."""
        n = self.n_arrivals
        if n == 0 or self.duration_s <= 0:
            return 0.0
        t0 = self.grid.start
        t1 = t0 + self.duration_s
        events = np.concatenate([self.arrival_times, self.arrival_times + self.sojourn_s])
        deltas = np.concatenate([np.ones(n), -np.ones(n)])
        order = np.argsort(events, kind="stable")
        events = np.clip(events[order], t0, t1)
        occupancy = np.cumsum(deltas[order])
        area = float(np.sum(occupancy[:-1] * np.diff(events)))
        return area / self.duration_s

    def little_law_ratio(self) -> float:
        """``mean occupancy / (lambda * mean sojourn)`` — ~1 if consistent.

        Little's law is distribution-free, so this is a pure internal
        consistency check on the event mechanics (edge effects at the
        horizon push it slightly below 1).
        """
        lam = self.effective_arrival_rate_hz()
        mean_sojourn = float(np.mean(self.sojourn_s)) if self.n_arrivals else 0.0
        denom = lam * mean_sojourn
        if denom <= 0:
            return 0.0
        return self.mean_occupancy() / denom

    def tail_ratio(self, hi: float = 99.0, lo: float = 50.0) -> float:
        """p{hi}/p{lo} of per-request latency — the tail-inflation gauge."""
        if self.n_arrivals == 0:
            return 1.0
        latency = self.latency_ms
        p_lo = float(np.percentile(latency, lo))
        if p_lo <= 0:
            return 1.0
        return float(np.percentile(latency, hi)) / p_lo


class QueueModel:
    """Samples latency level paths from the M/G/k simulation."""

    def __init__(self, config: Optional[QueueModelConfig] = None) -> None:
        self.config = config or QueueModelConfig()

    # -- internals ---------------------------------------------------------

    def _cell_rates(
        self, grid_times: np.ndarray, profile: Optional[IncidentProfile]
    ) -> np.ndarray:
        cfg = self.config
        hours = (grid_times % SECONDS_PER_DAY) / 3600.0
        rate = cfg.arrival_rate_hz * cfg.diurnal(hours)
        if cfg.weekend_load_factor != 1.0:
            day = np.floor(grid_times / SECONDS_PER_DAY).astype(np.int64)
            is_weekend = (day % 7) >= 5
            rate = np.where(is_weekend, rate * cfg.weekend_load_factor, rate)
        if profile is not None:
            rate = rate * profile.arrival_mult
        return rate

    @staticmethod
    def _lindley_waits(
        arrival_times: np.ndarray,
        service_s: np.ndarray,
        server_ids: np.ndarray,
        n_servers: int,
    ) -> np.ndarray:
        """Exact FCFS waiting times, one vectorized recursion per server."""
        waits = np.zeros(arrival_times.size, dtype=float)
        for server in range(n_servers):
            idx = np.flatnonzero(server_ids == server)
            if idx.size < 2:
                continue
            gaps = np.diff(arrival_times[idx])
            slack = service_s[idx][:-1] - gaps
            path = np.concatenate(([0.0], np.cumsum(slack)))
            waits[idx] = path - np.minimum.accumulate(path)
        return waits

    def _level_path(
        self,
        cell_idx: np.ndarray,
        latency_ms: np.ndarray,
        n_cells: int,
    ) -> np.ndarray:
        """Per-cell mean request latency, gap-filled and lightly smoothed."""
        cfg = self.config
        sums = np.bincount(cell_idx, weights=latency_ms, minlength=n_cells)
        counts = np.bincount(cell_idx, minlength=n_cells)
        levels = np.full(n_cells, cfg.overhead_ms + cfg.service.mean_ms, dtype=float)
        observed = counts > 0
        levels[observed] = sums[observed] / counts[observed]
        if np.any(observed) and not np.all(observed):
            # Forward-fill from the last observed cell, then back-fill the head.
            carry = np.where(observed, np.arange(n_cells), -1)
            carry = np.maximum.accumulate(carry)
            head = carry < 0
            carry[head] = int(np.argmax(observed))
            levels = levels[carry]
        window = min(cfg.level_window_cells, n_cells)
        if window > 1:
            kernel = np.ones(window)
            norm = np.convolve(np.ones(n_cells), kernel, mode="same")
            levels = np.convolve(levels, kernel, mode="same") / norm
        return levels

    # -- public API --------------------------------------------------------

    def simulate(
        self,
        duration_s: float,
        rng: SeedLike = None,
        start: float = 0.0,
        profile: Optional[IncidentProfile] = None,
    ) -> QueueSimResult:
        """Run the queue over ``[start, start + duration_s)``.

        ``profile`` (an :class:`IncidentProfile` on the same grid) perturbs
        arrival rate, service times, slow-path mixing and server count per
        cell. Draw order is fixed (counts, arrival offsets, service, slow
        path, routing) and the slow-path uniforms are always consumed, so a
        neutral profile reproduces the profile-free path bit for bit.
        """
        cfg = self.config
        if duration_s <= 0:
            raise ConfigError(f"duration_s must be positive, got {duration_s}")
        generator = spawn_rng(rng)
        dt = cfg.grid_dt_s
        n_cells = int(np.ceil(duration_s / dt))
        if profile is not None and (
            profile.n_cells != n_cells
            or profile.dt != dt
            or profile.start != float(start)
        ):
            raise ConfigError(
                f"incident profile grid mismatch: profile has "
                f"(start={profile.start}, dt={profile.dt}, n={profile.n_cells}), "
                f"simulation needs (start={start}, dt={dt}, n={n_cells})"
            )
        grid_times = start + dt * np.arange(n_cells)
        rates = self._cell_rates(grid_times, profile)
        expected = float(np.sum(rates) * dt)
        if expected > cfg.max_events:
            raise ConfigError(
                f"simulation would draw ~{expected:.0f} events, above the "
                f"max_events cap of {cfg.max_events}"
            )

        counts = generator.poisson(rates * dt)
        n = int(counts.sum())
        if n == 0:
            levels = np.full(n_cells, cfg.overhead_ms + cfg.service.mean_ms)
            return QueueSimResult(
                grid=LatencyGrid(start=start, dt=dt, levels_ms=levels),
                config=cfg,
                arrival_times=np.array([], dtype=float),
                wait_s=np.array([], dtype=float),
                service_s=np.array([], dtype=float),
                server_ids=np.array([], dtype=np.int64),
                servers_per_cell=np.full(n_cells, cfg.servers, dtype=np.int64),
                duration_s=float(duration_s),
                profile=profile,
            )

        cell_idx = np.repeat(np.arange(n_cells), counts)
        arrivals = np.repeat(grid_times, counts) + generator.uniform(0.0, dt, size=n)
        order = np.argsort(arrivals, kind="stable")
        arrivals = arrivals[order]
        cell_idx = cell_idx[order]

        service = cfg.service.sample(n, generator)
        slow_u = generator.random(n)
        if profile is not None:
            service = service * profile.service_mult[cell_idx]
            slow = slow_u < profile.slow_frac[cell_idx]
            service = service + np.where(
                slow, profile.slow_extra_ms[cell_idx] / 1000.0, 0.0
            )
            servers_per_cell = np.clip(cfg.servers + profile.server_delta, 1, None)
        else:
            servers_per_cell = np.full(n_cells, cfg.servers, dtype=np.int64)

        k_per_request = servers_per_cell[cell_idx]
        route_u = generator.random(n)
        server_ids = np.floor(route_u * k_per_request).astype(np.int64)
        n_servers = int(servers_per_cell.max())

        waits = self._lindley_waits(arrivals, service, server_ids, n_servers)
        latency_ms = (waits + service) * 1000.0 + cfg.overhead_ms
        levels = self._level_path(cell_idx, latency_ms, n_cells)

        return QueueSimResult(
            grid=LatencyGrid(start=start, dt=dt, levels_ms=levels),
            config=cfg,
            arrival_times=arrivals,
            wait_s=waits,
            service_s=service,
            server_ids=server_ids,
            servers_per_cell=np.asarray(servers_per_cell, dtype=np.int64),
            duration_s=float(duration_s),
            profile=profile,
        )

    def sample_grid(
        self,
        duration_s: float,
        rng: SeedLike = None,
        start: float = 0.0,
        profile: Optional[IncidentProfile] = None,
    ) -> LatencyGrid:
        """Level-path-only view, signature-compatible with ``LatencyModel``."""
        return self.simulate(duration_s, rng=rng, start=start, profile=profile).grid
