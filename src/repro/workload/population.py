"""Synthetic user population.

Each user gets:

- an anonymized GUID-shaped id (via :mod:`repro.telemetry.anonymize`);
- a subscription class (business / consumer, Section 3.3);
- a *latency multiplier* — their personal network/device speed relative to
  the service baseline, lognormally distributed. This is what spreads users
  across the median-latency quartiles of Section 3.4;
- a *base activity weight* — heavy and light users, lognormal;
- a *conditioning exponent* — their individual latency sensitivity, tied to
  the latency multiplier so that habitually-fast users are more sensitive
  (the paper's Figure 6 finding, built in as ground truth);
- a timezone offset (single-region default: 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.stats.rng import SeedLike, spawn_rng
from repro.telemetry.anonymize import anonymize_user_id
from repro.types import UserClass


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the synthetic population."""

    n_users: int = 400
    business_fraction: float = 0.6
    latency_mult_sigma: float = 0.12     # lognormal sd of per-user speed
    activity_weight_sigma: float = 0.6   # lognormal sd of per-user volume
    #: Strength of the conditioning-to-speed effect (Section 3.4):
    #: per-user sensitivity exponent = latency_multiplier ** -gamma. The
    #: default 0 keeps the baseline scenarios' pooled curves equal to the
    #: per-(action, class) ground truth; the Figure 6 scenario turns it on.
    conditioning_gamma: float = 0.0
    conditioning_bounds: Tuple[float, float] = (0.45, 1.8)
    tz_offset_hours: float = 0.0
    #: Optional multi-region population: (tz_offset_hours, weight) pairs.
    #: When set, each user is assigned a region by weight and takes its
    #: timezone offset; ``tz_offset_hours`` above is ignored. Analyses
    #: should segregate by region, as the paper does (US-only slices).
    regions: Optional[Tuple[Tuple[float, float], ...]] = None

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ConfigError(f"n_users must be positive, got {self.n_users}")
        if not 0.0 <= self.business_fraction <= 1.0:
            raise ConfigError(
                f"business_fraction must be in [0, 1], got {self.business_fraction}"
            )
        lo, hi = self.conditioning_bounds
        if not 0 < lo <= hi:
            raise ConfigError(f"bad conditioning bounds {self.conditioning_bounds}")
        if self.regions is not None:
            if not self.regions:
                raise ConfigError("regions, if given, must be non-empty")
            if any(w <= 0 for _, w in self.regions):
                raise ConfigError("region weights must be positive")


class Population:
    """Arrays of per-user attributes plus the class vocabulary."""

    def __init__(
        self,
        user_ids: list,
        classes: np.ndarray,
        class_vocab: list,
        latency_multipliers: np.ndarray,
        activity_weights: np.ndarray,
        conditioning_exponents: np.ndarray,
        tz_offsets: np.ndarray,
    ) -> None:
        self.user_ids = user_ids
        self.classes = classes
        self.class_vocab = class_vocab
        self.latency_multipliers = latency_multipliers
        self.activity_weights = activity_weights
        self.conditioning_exponents = conditioning_exponents
        self.tz_offsets = tz_offsets

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    def class_name(self, user_index: int) -> str:
        return self.class_vocab[int(self.classes[user_index])]

    def indices_of_class(self, user_class: UserClass | str) -> np.ndarray:
        name = user_class.value if isinstance(user_class, UserClass) else str(user_class)
        if name not in self.class_vocab:
            return np.array([], dtype=np.int64)
        code = self.class_vocab.index(name)
        return np.flatnonzero(self.classes == code)

    def sampling_probabilities(self) -> np.ndarray:
        """Per-user probability of owning a candidate action."""
        total = self.activity_weights.sum()
        if total <= 0:
            raise ConfigError("population has zero total activity weight")
        return self.activity_weights / total


def synthesize_population(
    config: Optional[PopulationConfig] = None,
    rng: SeedLike = None,
) -> Population:
    """Draw a population from :class:`PopulationConfig`."""
    cfg = config or PopulationConfig()
    generator = spawn_rng(rng)
    n = cfg.n_users

    user_ids = [anonymize_user_id(f"synthetic-user-{i}") for i in range(n)]

    class_vocab = [UserClass.BUSINESS.value, UserClass.CONSUMER.value]
    is_business = generator.random(n) < cfg.business_fraction
    classes = np.where(is_business, 0, 1).astype(np.int64)

    sigma = cfg.latency_mult_sigma
    latency_multipliers = np.exp(generator.normal(-0.5 * sigma**2, sigma, size=n))

    w_sigma = cfg.activity_weight_sigma
    activity_weights = np.exp(generator.normal(-0.5 * w_sigma**2, w_sigma, size=n))

    lo, hi = cfg.conditioning_bounds
    conditioning = np.clip(
        np.power(latency_multipliers, -cfg.conditioning_gamma), lo, hi
    )

    if cfg.regions is None:
        tz = np.full(n, cfg.tz_offset_hours, dtype=float)
    else:
        offsets = np.array([off for off, _ in cfg.regions], dtype=float)
        weights = np.array([w for _, w in cfg.regions], dtype=float)
        weights = weights / weights.sum()
        region_idx = generator.choice(len(offsets), size=n, p=weights)
        tz = offsets[region_idx]

    return Population(
        user_ids=user_ids,
        classes=classes,
        class_vocab=class_vocab,
        latency_multipliers=latency_multipliers,
        activity_weights=activity_weights,
        conditioning_exponents=conditioning,
        tz_offsets=tz,
    )
