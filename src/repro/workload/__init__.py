"""Synthetic workload: the OWA-telemetry substitute with known ground truth.

The paper's data is two months of proprietary Microsoft OWA logs. This
package generates statistically analogous telemetry whose latency-preference
ground truth is *known*, so the reproduction can validate that AutoSens
recovers it (see DESIGN.md Section 2 for the substitution argument).
"""

from repro.workload.actions import (
    ActionMix,
    ActionSpec,
    owa_action_mix,
    websearch_action_mix,
)
from repro.workload.activity_model import ActivityCurve, ActivityModel
from repro.workload.degradations import (
    DEGRADATION_BUILDERS,
    DegradationPlan,
    DegradationSpec,
    DiurnalThinning,
    HeavyUserSkew,
    InformativeMissingness,
)
from repro.workload.generator import (
    GeneratorConfig,
    TelemetryGenerator,
    TelemetryResult,
    generate_telemetry,
)
from repro.workload.incidents import (
    DEFAULT_INCIDENT_SPECS,
    AutoscaleStep,
    IncidentPlan,
    IncidentProfile,
    IncidentSpec,
    IncidentWindow,
    LoadSpike,
    RegionalDegradation,
    RetryStorm,
    SlowDependency,
)
from repro.workload.latency_model import (
    DiurnalCurve,
    LatencyGrid,
    LatencyModel,
    LatencyModelConfig,
)
from repro.workload.queue_model import (
    QueueModel,
    QueueModelConfig,
    QueueSimResult,
    ServiceTimeConfig,
)
from repro.workload.population import (
    Population,
    PopulationConfig,
    synthesize_population,
)
from repro.workload.preference import (
    CONSUMER_ANCHORS,
    PAPER_ANCHORS,
    PERIOD_EXPONENTS,
    QUARTILE_EXPONENTS,
    REFERENCE_LATENCY_MS,
    GroundTruth,
    PreferenceCurve,
    paper_curve,
)
from repro.workload.trace_replay import (
    TraceReplayGenerator,
    generate_from_trace,
    read_level_trace,
    write_level_trace,
)
from repro.workload.scenarios import (
    SCENARIOS,
    Scenario,
    conditioning_scenario,
    flat_preference_scenario,
    global_scenario,
    owa_scenario,
    queue_scenario,
    timeofday_scenario,
    two_month_scenario,
    websearch_scenario,
    weekly_scenario,
)

__all__ = [
    "ActionMix",
    "ActionSpec",
    "owa_action_mix",
    "websearch_action_mix",
    "ActivityCurve",
    "ActivityModel",
    "GeneratorConfig",
    "TelemetryGenerator",
    "TelemetryResult",
    "generate_telemetry",
    "DiurnalCurve",
    "LatencyGrid",
    "LatencyModel",
    "LatencyModelConfig",
    "QueueModel",
    "QueueModelConfig",
    "QueueSimResult",
    "ServiceTimeConfig",
    "DegradationSpec",
    "DegradationPlan",
    "DiurnalThinning",
    "InformativeMissingness",
    "HeavyUserSkew",
    "DEGRADATION_BUILDERS",
    "DEFAULT_INCIDENT_SPECS",
    "AutoscaleStep",
    "IncidentPlan",
    "IncidentProfile",
    "IncidentSpec",
    "IncidentWindow",
    "LoadSpike",
    "RegionalDegradation",
    "RetryStorm",
    "SlowDependency",
    "Population",
    "PopulationConfig",
    "synthesize_population",
    "GroundTruth",
    "PreferenceCurve",
    "paper_curve",
    "PAPER_ANCHORS",
    "CONSUMER_ANCHORS",
    "PERIOD_EXPONENTS",
    "QUARTILE_EXPONENTS",
    "REFERENCE_LATENCY_MS",
    "Scenario",
    "SCENARIOS",
    "TraceReplayGenerator",
    "generate_from_trace",
    "read_level_trace",
    "write_level_trace",
    "owa_scenario",
    "queue_scenario",
    "conditioning_scenario",
    "timeofday_scenario",
    "two_month_scenario",
    "flat_preference_scenario",
    "weekly_scenario",
    "global_scenario",
    "websearch_scenario",
]
