"""Replaying recorded latency traces through the workload generator.

The built-in latency model is synthetic (diurnal x OU x incidents). When a
real service's latency history is available — even coarse per-minute
medians from a monitoring system — the generator can replay it as the
level process instead, so the simulated user behaviour runs against *your*
service's actual weather:

    trace = read_level_trace("service_latency.csv")   # time_s, level_ms
    result = generate_from_trace(trace, seed=7)

The trace format is two CSV columns (``time_s``, ``level_ms``), sorted by
time; irregular spacing is fine (levels are held between points).
"""

from __future__ import annotations

import csv
from dataclasses import replace
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigError, SchemaError
from repro.stats.rng import RngFactory, SeedLike
from repro.workload.actions import ActionMix, owa_action_mix
from repro.workload.activity_model import ActivityModel
from repro.workload.generator import (
    GeneratorConfig,
    TelemetryGenerator,
    TelemetryResult,
)
from repro.workload.latency_model import LatencyGrid
from repro.workload.preference import GroundTruth

PathLike = Union[str, Path]


def read_level_trace(path: PathLike) -> LatencyGrid:
    """Read a (time_s, level_ms) CSV into a :class:`LatencyGrid`.

    Points are resampled onto a regular grid at the median spacing of the
    input (zero-order hold), which is what :class:`LatencyGrid` assumes.
    """
    path = Path(path)
    times, levels = [], []
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        required = {"time_s", "level_ms"}
        if not required <= set(reader.fieldnames or []):
            raise SchemaError(
                f"{path}: trace needs columns {sorted(required)}, "
                f"found {reader.fieldnames}"
            )
        for lineno, row in enumerate(reader, start=2):
            try:
                times.append(float(row["time_s"]))
                levels.append(float(row["level_ms"]))
            except (TypeError, ValueError) as exc:
                raise SchemaError(f"{path}:{lineno}: {exc}") from exc
    if len(times) < 2:
        raise SchemaError(f"{path}: a trace needs at least two points")
    t = np.asarray(times)
    v = np.asarray(levels)
    if np.any(np.diff(t) <= 0):
        raise SchemaError(f"{path}: trace times must be strictly increasing")
    if np.any(v <= 0):
        raise SchemaError(f"{path}: levels must be positive")
    dt = float(np.median(np.diff(t)))
    grid_times = np.arange(t[0], t[-1], dt)
    idx = np.clip(np.searchsorted(t, grid_times, side="right") - 1, 0, t.size - 1)
    return LatencyGrid(start=float(t[0]), dt=dt, levels_ms=v[idx])


def write_level_trace(grid: LatencyGrid, path: PathLike, stride: int = 1) -> int:
    """Write a grid back to the trace CSV format; returns rows written."""
    if stride < 1:
        raise ConfigError(f"stride must be >= 1, got {stride}")
    path = Path(path)
    times = grid.times[::stride]
    levels = grid.levels_ms[::stride]
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "level_ms"])
        for t, v in zip(times, levels):
            writer.writerow([f"{t:.3f}", f"{v:.3f}"])
    return len(times)


class TraceReplayGenerator(TelemetryGenerator):
    """A :class:`TelemetryGenerator` whose level process is a fixed trace."""

    def __init__(
        self,
        grid: LatencyGrid,
        config: Optional[GeneratorConfig] = None,
        ground_truth: Optional[GroundTruth] = None,
        action_mix: Optional[ActionMix] = None,
        activity_model: Optional[ActivityModel] = None,
    ) -> None:
        duration_days = (grid.end - grid.start) / 86400.0
        if duration_days <= 0:
            raise ConfigError("the trace spans no time")
        base = config or GeneratorConfig()
        super().__init__(
            config=replace(base, duration_days=duration_days, start=grid.start),
            ground_truth=ground_truth,
            action_mix=action_mix,
            activity_model=activity_model,
        )
        self._trace_grid = grid

    def _make_grid(self, duration_s: float, factory: RngFactory) -> LatencyGrid:
        """Return the fixed trace instead of sampling a synthetic path."""
        return self._trace_grid


def generate_from_trace(
    grid: LatencyGrid,
    seed: Optional[int] = None,
    config: Optional[GeneratorConfig] = None,
    ground_truth: Optional[GroundTruth] = None,
    action_mix: Optional[ActionMix] = None,
    activity_model: Optional[ActivityModel] = None,
) -> TelemetryResult:
    """One-call trace replay."""
    generator = TraceReplayGenerator(
        grid, config=config, ground_truth=ground_truth,
        action_mix=action_mix, activity_model=activity_model,
    )
    return generator.generate(rng=seed)
