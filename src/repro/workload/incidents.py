"""Composable, individually-seeded incident scenarios for the queue backend.

Real services do not degrade through a single multiplicative overlay: load
spikes raise *arrival rate* (and latency follows through queueing), a slow
downstream dependency fattens the *service-time* distribution, a regional
failover shifts part of the fleet onto slow paths, autoscaling changes the
*server count*, and retry storms couple load to latency in a feedback-like
way. Each :class:`IncidentSpec` here perturbs exactly the physical knob it
corresponds to, on a schedule, and emits an :class:`IncidentWindow`
annotation recording the ground-truth affected interval — so the recovery
harness (:mod:`repro.analysis.recovery`) can ask "did the estimator survive
*this* regime, and if not, did it say so?".

Specs compose through :class:`IncidentPlan`, which derives one independent
random stream per spec from ``(seed, position, spec name)`` — the same
pure-stream scheme as :class:`repro.faults.FaultPlan` — so adding, removing
or reordering incidents never perturbs the draws of the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.stats.rng import RngFactory

__all__ = [
    "IncidentWindow",
    "IncidentProfile",
    "IncidentSpec",
    "LoadSpike",
    "SlowDependency",
    "RegionalDegradation",
    "AutoscaleStep",
    "RetryStorm",
    "IncidentPlan",
    "DEFAULT_INCIDENT_SPECS",
]


@dataclass(frozen=True)
class IncidentWindow:
    """Ground-truth annotation: one incident's affected interval."""

    scenario: str
    start_s: float
    end_s: float
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigError(
                f"incident window must have end > start, got "
                f"[{self.start_s}, {self.end_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def contains(self, times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        return (t >= self.start_s) & (t < self.end_s)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "params": dict(self.params),
        }


class IncidentProfile:
    """Per-grid-cell perturbations the queue simulator consumes.

    All arrays share the simulation grid: cell ``i`` covers
    ``[start + i*dt, start + (i+1)*dt)``. Multiplier arrays start neutral;
    specs compose multiplicatively (or additively for ``server_delta`` and
    ``slow_extra_ms``), so overlapping incidents stack the way overlapping
    real incidents do.
    """

    def __init__(self, start: float, dt: float, n_cells: int) -> None:
        if dt <= 0:
            raise ConfigError(f"dt must be positive, got {dt}")
        if n_cells < 1:
            raise ConfigError(f"n_cells must be >= 1, got {n_cells}")
        self.start = float(start)
        self.dt = float(dt)
        self.n_cells = int(n_cells)
        #: Multiplier on the Poisson arrival rate.
        self.arrival_mult = np.ones(n_cells, dtype=float)
        #: Multiplier on every service-time draw.
        self.service_mult = np.ones(n_cells, dtype=float)
        #: Probability a request takes the slow-dependency path.
        self.slow_frac = np.zeros(n_cells, dtype=float)
        #: Extra service time (ms) added on the slow path.
        self.slow_extra_ms = np.zeros(n_cells, dtype=float)
        #: Signed change to the server count (autoscaling steps).
        self.server_delta = np.zeros(n_cells, dtype=np.int64)
        #: Ground-truth annotations, one per applied spec.
        self.windows: List[IncidentWindow] = []

    @property
    def duration_s(self) -> float:
        return self.dt * self.n_cells

    @property
    def times(self) -> np.ndarray:
        """Left edge of each grid cell."""
        return self.start + self.dt * np.arange(self.n_cells)

    def is_neutral(self) -> bool:
        return (
            np.all(self.arrival_mult == 1.0)
            and np.all(self.service_mult == 1.0)
            and np.all(self.slow_frac == 0.0)
            and np.all(self.server_delta == 0)
        )

    def envelope(self, start_s: float, duration_s: float, ramp_s: float) -> np.ndarray:
        """A [0, 1] per-cell envelope: half-cosine ramp in/out, 1 mid-window.

        ``ramp_s`` is clipped to half the window so the envelope always
        reaches 1 somewhere; a zero ramp gives a hard step.
        """
        t = self.times
        end_s = start_s + duration_s
        ramp = min(max(ramp_s, 0.0), duration_s / 2.0)
        env = np.zeros(self.n_cells, dtype=float)
        inside = (t >= start_s) & (t < end_s)
        if not np.any(inside):
            return env
        env[inside] = 1.0
        if ramp > 0.0:
            rising = inside & (t < start_s + ramp)
            env[rising] = 0.5 - 0.5 * np.cos(np.pi * (t[rising] - start_s) / ramp)
            falling = inside & (t >= end_s - ramp)
            env[falling] = 0.5 - 0.5 * np.cos(np.pi * (end_s - t[falling]) / ramp)
        return env


@dataclass(frozen=True)
class IncidentSpec:
    """Base class: a named, seeded perturbation of the queue's inputs.

    ``start_frac`` positions the incident as a fraction of the simulated
    span; ``start_jitter_s`` (drawn from the spec's own stream) models
    incidents not arriving on a schedule. ``apply`` mutates the profile in
    place and returns the ground-truth window annotation.
    """

    start_frac: float = 0.4
    duration_s: float = 3600.0
    ramp_s: float = 300.0
    start_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_frac < 1.0:
            raise ConfigError(f"start_frac must be in [0, 1), got {self.start_frac}")
        if self.duration_s <= 0:
            raise ConfigError(f"duration_s must be positive, got {self.duration_s}")
        if self.ramp_s < 0:
            raise ConfigError(f"ramp_s must be >= 0, got {self.ramp_s}")
        if self.start_jitter_s < 0:
            raise ConfigError(f"start_jitter_s must be >= 0, got {self.start_jitter_s}")

    @property
    def name(self) -> str:
        return type(self).__name__

    def window_bounds(
        self, profile: IncidentProfile, rng: np.random.Generator
    ) -> Tuple[float, float]:
        """Resolve the incident's [start, end) inside the profile's span.

        Always consumes exactly one uniform draw so stream consumption does
        not depend on the jitter setting.
        """
        jitter = float(rng.uniform(-1.0, 1.0)) * self.start_jitter_s
        start = profile.start + self.start_frac * profile.duration_s + jitter
        start = min(max(start, profile.start), profile.start + profile.duration_s - profile.dt)
        end = min(start + self.duration_s, profile.start + profile.duration_s)
        return start, end

    def apply(
        self, profile: IncidentProfile, rng: np.random.Generator
    ) -> IncidentWindow:
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class LoadSpike(IncidentSpec):
    """A surge in offered load: arrivals ramp to ``peak_mult``x.

    Latency rises *through the queue*, not by fiat — near saturation the
    spike inflates waits far more than ``peak_mult`` suggests.
    """

    peak_mult: float = 2.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.peak_mult <= 0:
            raise ConfigError(f"peak_mult must be positive, got {self.peak_mult}")

    def apply(self, profile: IncidentProfile, rng: np.random.Generator) -> IncidentWindow:
        start, end = self.window_bounds(profile, rng)
        env = profile.envelope(start, end - start, self.ramp_s)
        profile.arrival_mult *= 1.0 + (self.peak_mult - 1.0) * env
        return IncidentWindow(
            scenario="load-spike", start_s=start, end_s=end,
            params={"peak_mult": self.peak_mult},
        )


@dataclass(frozen=True)
class SlowDependency(IncidentSpec):
    """A downstream dependency degrades: ``slow_share`` of requests pick up
    ``extra_ms`` of service time — a bimodal service mixture, the classic
    "some shards are slow" signature."""

    slow_share: float = 0.35
    extra_ms: float = 700.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.slow_share <= 1.0:
            raise ConfigError(f"slow_share must be in (0, 1], got {self.slow_share}")
        if self.extra_ms <= 0:
            raise ConfigError(f"extra_ms must be positive, got {self.extra_ms}")

    def apply(self, profile: IncidentProfile, rng: np.random.Generator) -> IncidentWindow:
        start, end = self.window_bounds(profile, rng)
        env = profile.envelope(start, end - start, self.ramp_s)
        profile.slow_frac = np.clip(profile.slow_frac + self.slow_share * env, 0.0, 1.0)
        profile.slow_extra_ms = np.maximum(
            profile.slow_extra_ms, self.extra_ms * (env > 0.0)
        )
        return IncidentWindow(
            scenario="slow-dependency", start_s=start, end_s=end,
            params={"slow_share": self.slow_share, "extra_ms": self.extra_ms},
        )


@dataclass(frozen=True)
class RegionalDegradation(IncidentSpec):
    """Part of the fleet slows down: ``region_share`` of capacity serves at
    ``service_mult``x, seen in aggregate as a sustained service-time
    inflation for the affected share."""

    service_mult: float = 1.8
    region_share: float = 0.4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.service_mult <= 0:
            raise ConfigError(f"service_mult must be positive, got {self.service_mult}")
        if not 0.0 < self.region_share <= 1.0:
            raise ConfigError(f"region_share must be in (0, 1], got {self.region_share}")

    def apply(self, profile: IncidentProfile, rng: np.random.Generator) -> IncidentWindow:
        start, end = self.window_bounds(profile, rng)
        env = profile.envelope(start, end - start, self.ramp_s)
        effective = 1.0 + (self.service_mult - 1.0) * self.region_share * env
        profile.service_mult *= effective
        return IncidentWindow(
            scenario="regional-degradation", start_s=start, end_s=end,
            params={"service_mult": self.service_mult,
                    "region_share": self.region_share},
        )


@dataclass(frozen=True)
class AutoscaleStep(IncidentSpec):
    """A capacity step: ``server_delta`` servers added (or, negative,
    removed — an over-eager scale-in). Hard step, no ramp: machines join
    and leave whole."""

    server_delta: int = -1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.server_delta == 0:
            raise ConfigError("server_delta must be non-zero")

    def apply(self, profile: IncidentProfile, rng: np.random.Generator) -> IncidentWindow:
        start, end = self.window_bounds(profile, rng)
        step = profile.envelope(start, end - start, 0.0) > 0.0
        profile.server_delta = profile.server_delta + np.where(step, self.server_delta, 0)
        return IncidentWindow(
            scenario="autoscale-step", start_s=start, end_s=end,
            params={"server_delta": float(self.server_delta)},
        )


@dataclass(frozen=True)
class RetryStorm(IncidentSpec):
    """Timeouts trigger client retries: extra load *and* extra per-request
    work arrive together — the load/latency coupling that makes retry
    storms self-amplifying."""

    load_mult: float = 1.7
    service_mult: float = 1.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.load_mult <= 0 or self.service_mult <= 0:
            raise ConfigError("load_mult and service_mult must be positive")

    def apply(self, profile: IncidentProfile, rng: np.random.Generator) -> IncidentWindow:
        start, end = self.window_bounds(profile, rng)
        env = profile.envelope(start, end - start, self.ramp_s)
        profile.arrival_mult *= 1.0 + (self.load_mult - 1.0) * env
        profile.service_mult *= 1.0 + (self.service_mult - 1.0) * env
        return IncidentWindow(
            scenario="retry-storm", start_s=start, end_s=end,
            params={"load_mult": self.load_mult, "service_mult": self.service_mult},
        )


@dataclass(frozen=True)
class IncidentPlan:
    """An ordered, seeded composition of incident specs.

    ``build`` derives one independent stream per spec from
    ``(seed, position, spec name)`` — mirroring
    :class:`repro.faults.FaultPlan` — and returns the composed profile plus
    ground-truth windows. A plan is a pure function of its inputs.
    """

    specs: Tuple[IncidentSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, IncidentSpec):
                raise ConfigError(
                    f"IncidentPlan specs must be IncidentSpec instances, "
                    f"got {type(spec).__name__}"
                )

    def build(self, start: float, dt: float, n_cells: int) -> IncidentProfile:
        profile = IncidentProfile(start=start, dt=dt, n_cells=n_cells)
        factory = RngFactory(self.seed)
        for i, spec in enumerate(self.specs):
            rng = factory.stream(f"incident/{i}/{spec.name}")
            window = spec.apply(profile, rng)
            profile.windows.append(window)
        return profile

    def describe(self) -> str:
        return " + ".join(spec.name for spec in self.specs) or "(no incidents)"


#: One default-configured instance of every incident class — the catalog the
#: recovery fixtures and chaos suite sweep over. Factories, so each use gets
#: a fresh spec.
DEFAULT_INCIDENT_SPECS: Dict[str, Callable[[], IncidentSpec]] = {
    "load-spike": lambda: LoadSpike(start_frac=0.35, duration_s=5400.0, peak_mult=2.5),
    "slow-dependency": lambda: SlowDependency(
        start_frac=0.45, duration_s=7200.0, slow_share=0.35, extra_ms=700.0
    ),
    "regional-degradation": lambda: RegionalDegradation(
        start_frac=0.3, duration_s=10800.0, service_mult=1.8, region_share=0.4
    ),
    "autoscale-step": lambda: AutoscaleStep(
        start_frac=0.5, duration_s=7200.0, server_delta=-1
    ),
    "retry-storm": lambda: RetryStorm(
        start_frac=0.4, duration_s=3600.0, load_mult=1.7, service_mult=1.25
    ),
}
