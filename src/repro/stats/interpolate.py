"""Monotone piecewise-cubic (PCHIP / Fritsch–Carlson) interpolation.

Ground-truth preference curves in the workload simulator are defined by a
handful of anchor points taken straight from the paper's figures (e.g. the
SelectMail NLP values at 500/1000/1500/2000 ms). A monotone cubic through
those anchors gives a smooth, shape-preserving curve with no spurious
oscillation — essential, because a preference that wiggles above 1.0 between
anchors would corrupt the thinning acceptance probabilities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError


class MonotoneCubicInterpolator:
    """Fritsch–Carlson monotone cubic Hermite interpolation.

    Values outside the anchor range are clamped to the end anchors (flat
    extrapolation), which matches the "preference saturates at the tails"
    behaviour we want for latency preference curves.
    """

    def __init__(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        if x.ndim != 1 or x.shape != y.shape:
            raise ConfigError("xs and ys must be 1-D arrays of equal length")
        if x.size < 2:
            raise ConfigError("need at least two anchor points")
        if np.any(np.diff(x) <= 0):
            raise ConfigError("xs must be strictly increasing")
        self.x = x
        self.y = y
        self.m = self._tangents(x, y)

    @staticmethod
    def _tangents(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        h = np.diff(x)
        delta = np.diff(y) / h
        n = x.size
        m = np.empty(n, dtype=float)
        m[0] = delta[0]
        m[-1] = delta[-1]
        for i in range(1, n - 1):
            if delta[i - 1] * delta[i] <= 0:
                m[i] = 0.0
            else:
                # Weighted harmonic mean (Fritsch–Butland), guarantees
                # monotonicity without a separate limiting pass.
                w1 = 2 * h[i] + h[i - 1]
                w2 = h[i] + 2 * h[i - 1]
                m[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i])
        # End tangents: one-sided with monotonicity clamp.
        for edge, d in ((0, delta[0]), (n - 1, delta[-1])):
            if d == 0:
                m[edge] = 0.0
            elif np.sign(m[edge]) != np.sign(d):
                m[edge] = 0.0
            elif abs(m[edge]) > 3 * abs(d):
                m[edge] = 3 * d
        return m

    def __call__(self, query: np.ndarray) -> np.ndarray:
        q = np.atleast_1d(np.asarray(query, dtype=float))
        q_clamped = np.clip(q, self.x[0], self.x[-1])
        idx = np.clip(np.searchsorted(self.x, q_clamped, side="right") - 1, 0, self.x.size - 2)
        x0 = self.x[idx]
        x1 = self.x[idx + 1]
        h = x1 - x0
        t = (q_clamped - x0) / h
        h00 = (1 + 2 * t) * (1 - t) ** 2
        h10 = t * (1 - t) ** 2
        h01 = t * t * (3 - 2 * t)
        h11 = t * t * (t - 1)
        out = (
            h00 * self.y[idx]
            + h10 * h * self.m[idx]
            + h01 * self.y[idx + 1]
            + h11 * h * self.m[idx + 1]
        )
        if np.isscalar(query) or np.asarray(query).ndim == 0:
            return out[0]
        return out

    def derivative(self, query: np.ndarray) -> np.ndarray:
        """First derivative of the interpolant (flat = 0 outside the range)."""
        q = np.atleast_1d(np.asarray(query, dtype=float))
        inside = (q >= self.x[0]) & (q <= self.x[-1])
        q_clamped = np.clip(q, self.x[0], self.x[-1])
        idx = np.clip(np.searchsorted(self.x, q_clamped, side="right") - 1, 0, self.x.size - 2)
        x0 = self.x[idx]
        x1 = self.x[idx + 1]
        h = x1 - x0
        t = (q_clamped - x0) / h
        dh00 = (6 * t * t - 6 * t) / h
        dh10 = 3 * t * t - 4 * t + 1
        dh01 = (6 * t - 6 * t * t) / h
        dh11 = 3 * t * t - 2 * t
        out = (
            dh00 * self.y[idx]
            + dh10 * self.m[idx]
            + dh01 * self.y[idx + 1]
            + dh11 * self.m[idx + 1]
        )
        out[~inside] = 0.0
        if np.isscalar(query) or np.asarray(query).ndim == 0:
            return out[0]
        return out
