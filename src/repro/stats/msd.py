"""Mean-successive-difference statistics (von Neumann, 1941).

The paper's Figure 1 quantifies *locality* in the latency time series: if
latency levels persist over time, consecutive samples are similar and the
mean successive difference (MSD) is small relative to the overall spread,
measured as the mean absolute difference (MAD) between *all* pairs.

- a randomly shuffled series has MSD/MAD ≈ 1 (successive pairs are just
  random pairs),
- a perfectly sorted series has MSD/MAD ≈ 0 for large n (successive
  differences are tiny steps while random pairs span the range),
- the real OWA latency series lands far below 1 — low-latency periods are
  interspersed with high-latency periods.

We also provide the classical von Neumann ratio (mean *squared* successive
difference over the variance), whose expectation is exactly
``2n / (n - 1)`` for i.i.d. data — handy for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import EmptyDataError
from repro.stats.rng import SeedLike, spawn_rng


def mean_successive_difference(values: np.ndarray) -> float:
    """Mean absolute difference between consecutive samples."""
    v = np.asarray(values, dtype=float)
    if v.size < 2:
        raise EmptyDataError("MSD needs at least two samples")
    return float(np.abs(np.diff(v)).mean())


def mean_absolute_difference(
    values: np.ndarray,
    max_pairs: int = 2_000_000,
    rng: SeedLike = None,
) -> float:
    """Mean absolute difference between all (unordered) sample pairs.

    Exact when the number of pairs is small. For large inputs, the exact
    value is computed in O(n log n) from the sorted order: with sorted values
    ``s``, the sum over all pairs of |s_i - s_j| equals
    ``sum_i (2i - n + 1) * s_i``.

    ``max_pairs`` and ``rng`` are kept for API compatibility with a Monte
    Carlo fallback; the closed form makes them unnecessary.
    """
    v = np.asarray(values, dtype=float)
    n = v.size
    if n < 2:
        raise EmptyDataError("MAD needs at least two samples")
    s = np.sort(v)
    idx = np.arange(n, dtype=float)
    pair_sum = float(np.dot(2.0 * idx - (n - 1), s))
    return pair_sum / (n * (n - 1) / 2.0)


def msd_mad_ratio(values: np.ndarray) -> float:
    """The paper's locality statistic: MSD divided by MAD.

    A constant series has MAD = 0; it is perfectly predictable, so the
    ratio is defined as 0.
    """
    mad = mean_absolute_difference(values)
    if mad == 0.0:
        return 0.0
    return mean_successive_difference(values) / mad


def von_neumann_ratio(values: np.ndarray) -> float:
    """Classical von Neumann ratio: mean squared successive difference / variance.

    For an i.i.d. series the expected value is ``2n / (n - 1)`` — about 2.
    Values well below 2 indicate positive serial correlation (locality).
    """
    v = np.asarray(values, dtype=float)
    if v.size < 2:
        raise EmptyDataError("von Neumann ratio needs at least two samples")
    mssd = float((np.diff(v) ** 2).mean())
    var = float(v.var())
    if var == 0.0:
        return 0.0
    return mssd / var


@dataclass(frozen=True)
class LocalityComparison:
    """MSD/MAD of a series compared against its shuffled and sorted extremes."""

    actual: float
    shuffled: float
    sorted: float

    @property
    def locality_strength(self) -> float:
        """How far the actual ratio sits toward the sorted extreme, in [0, 1].

        0 means indistinguishable from random order, 1 means perfectly
        sorted. Clipped into [0, 1] for noisy small samples.
        """
        span = self.shuffled - self.sorted
        if span <= 0:
            return 0.0
        return float(np.clip((self.shuffled - self.actual) / span, 0.0, 1.0))


def compare_locality(values: np.ndarray, rng: SeedLike = None) -> LocalityComparison:
    """Compute MSD/MAD for the series, a random shuffle, and the sorted order.

    This reproduces the three bars of the paper's Figure 1.
    """
    generator = spawn_rng(rng)
    v = np.asarray(values, dtype=float)
    shuffled = v.copy()
    generator.shuffle(shuffled)
    return LocalityComparison(
        actual=msd_mad_ratio(v),
        shuffled=msd_mad_ratio(shuffled),
        sorted=msd_mad_ratio(np.sort(v)),
    )
