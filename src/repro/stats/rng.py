"""Reproducible random-number generation.

Every stochastic component in this library takes either a seed or a
``numpy.random.Generator``. :class:`RngFactory` hands out independent child
generators derived from one root seed so that adding a new consumer never
perturbs the streams of existing ones (each child is keyed by name).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, "RngFactory"]


def spawn_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be ``None`` (OS entropy), an integer, an existing generator
    (returned as-is), or an :class:`RngFactory` (a fresh child is drawn).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RngFactory):
        return seed.child("anonymous")
    return np.random.default_rng(seed)


class RngFactory:
    """Derive named, independent random generators from one root seed.

    Children are derived from ``(root_seed, name, counter)`` through NumPy's
    ``SeedSequence`` machinery, so the stream produced for a given name is a
    pure function of the root seed and the sequence of ``child`` calls made
    with that name.

    >>> factory = RngFactory(42)
    >>> a = factory.child("latency")
    >>> b = factory.child("activity")
    >>> a is not b
    True
    """

    def __init__(self, root_seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(root_seed)
        self._counters: dict[str, int] = {}

    @property
    def root_entropy(self) -> int:
        """The entropy of the root seed sequence (for logging)."""
        entropy = self._root.entropy
        if isinstance(entropy, (list, tuple)):  # pragma: no cover - numpy detail
            return int(entropy[0])
        return int(entropy)

    def child(self, name: str) -> np.random.Generator:
        """Return a new generator independent of all previously issued ones.

        Repeated calls with the same name return *different* streams (an
        internal per-name counter advances), which keeps accidental stream
        reuse impossible.
        """
        count = self._counters.get(name, 0)
        self._counters[name] = count + 1
        key = np.frombuffer(f"{name}#{count}".encode("utf-8"), dtype=np.uint8)
        seq = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=tuple(int(b) for b in key)
        )
        return np.random.default_rng(seq)

    def stream(self, name: str) -> np.random.Generator:
        """Return the *pure* generator for ``name`` (no counter advance).

        Unlike :meth:`child`, repeated calls with the same name return
        generators producing the *same* stream: the seed is a pure function
        of ``(root_seed, name)`` and nothing else. This is what makes work
        distributable — any worker process that knows the root seed and the
        task's name reconstructs exactly the stream the serial code would
        have used, independent of scheduling order (see
        :mod:`repro.parallel.seeding`).
        """
        key = np.frombuffer(f"stream:{name}".encode("utf-8"), dtype=np.uint8)
        seq = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=tuple(int(b) for b in key)
        )
        return np.random.default_rng(seq)

    def fork(self, name: str) -> "RngFactory":
        """Return a child *factory* whose streams are independent of ours."""
        child_seed = int(self.child(f"fork:{name}").integers(0, 2**63 - 1))
        return RngFactory(child_seed)
