"""Time-based resampling primitives for the unbiased-distribution estimator.

Section 2.2 of the paper approximates the unbiased latency distribution by
repeatedly (1) drawing a point in time uniformly at random over the
observation window and (2) selecting the latency sample *closest in time* to
that point, breaking ties uniformly at random. These two primitives live
here; :mod:`repro.core.unbiased` assembles them into the estimator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import EmptyDataError
from repro.stats.rng import SeedLike, spawn_rng


def random_times(
    start: float,
    end: float,
    n: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Draw ``n`` times uniformly at random from ``[start, end)``."""
    if not end > start:
        raise EmptyDataError(f"empty time window [{start}, {end})")
    if n < 0:
        raise EmptyDataError(f"cannot draw a negative number of times ({n})")
    generator = spawn_rng(rng)
    return generator.uniform(start, end, size=n)


def midpoints_of(sorted_times: np.ndarray) -> np.ndarray:
    """Midpoints between consecutive sorted sample times.

    The Voronoi boundaries of a 1-D point set: queries below ``midpoints[i]``
    are nearer to ``sorted_times[i]`` than to ``sorted_times[i + 1]``. Callers
    that issue many query batches against the same samples precompute this
    once and pass it to :func:`nearest_time_sample`.
    """
    times = np.asarray(sorted_times, dtype=float)
    if times.size < 2:
        return np.empty(0, dtype=float)
    return 0.5 * (times[1:] + times[:-1])


def _nearest_by_midpoint(
    times: np.ndarray,
    queries: np.ndarray,
    rng: SeedLike,
    midpoints: Optional[np.ndarray],
) -> np.ndarray:
    """Nearest-sample kernel for strictly increasing ``times``.

    One ``searchsorted`` against the midpoints resolves every query; ties
    (a query exactly on a midpoint) keep the paper's uniform coin flip. The
    random stream is consumed exactly as in the general kernel: one draw per
    tied query, ``< 0.5`` meaning the left neighbour.
    """
    if times.size == 1:
        return np.zeros(queries.shape, dtype=np.intp)
    mid = midpoints if midpoints is not None else midpoints_of(times)
    nearest = np.searchsorted(mid, queries, side="left")
    # side="left" can only land *on* a midpoint index when the query equals
    # that midpoint; nearest == mid.size implies queries > mid[-1] (no tie).
    tied = mid[np.minimum(nearest, mid.size - 1)] == queries
    if np.any(tied):
        generator = spawn_rng(rng)
        nearest = nearest.copy()
        nearest[tied] += generator.random(int(tied.sum())) >= 0.5
    return nearest


def nearest_time_sample(
    sample_times: np.ndarray,
    query_times: np.ndarray,
    rng: SeedLike = None,
    tie_tolerance: float = 0.0,
    assume_sorted: bool = False,
    midpoints: Optional[np.ndarray] = None,
    has_duplicates: Optional[bool] = None,
) -> np.ndarray:
    """Indices of the sample nearest in time to each query time.

    ``sample_times`` must be sorted ascending. Ties — several samples at the
    same distance within ``tie_tolerance`` — are broken uniformly at random,
    as the paper prescribes for multiple samples at the chosen time.

    Batch callers can amortize the per-call invariant work: pass
    ``assume_sorted=True`` to skip the O(n) sortedness check,
    ``midpoints`` (from :func:`midpoints_of`) to reuse the Voronoi
    boundaries across batches, and ``has_duplicates`` when the caller
    already knows whether any timestamps repeat. When the timestamps are
    strictly increasing and ``tie_tolerance`` is zero the duplicate-run
    machinery is skipped entirely in favour of a single fused
    midpoint-``searchsorted`` pass.

    Returns an integer index array into ``sample_times`` with one entry per
    query.
    """
    times = np.asarray(sample_times, dtype=float)
    queries = np.asarray(query_times, dtype=float)
    if times.size == 0:
        raise EmptyDataError("no samples to draw from")
    if not assume_sorted and times.size > 1 and np.any(np.diff(times) < 0):
        raise EmptyDataError("sample_times must be sorted ascending")
    if has_duplicates is None:
        has_duplicates = times.size > 1 and bool(np.any(times[1:] == times[:-1]))
    if tie_tolerance == 0.0 and not has_duplicates:
        return _nearest_by_midpoint(times, queries, rng, midpoints)

    # For each query, the insertion point splits candidates into the sample
    # just before and just after; pick whichever is closer.
    right = np.searchsorted(times, queries, side="left")
    left = np.clip(right - 1, 0, times.size - 1)
    right = np.clip(right, 0, times.size - 1)
    dist_left = np.abs(queries - times[left])
    dist_right = np.abs(times[right] - queries)
    take_right = dist_right < dist_left
    nearest = np.where(take_right, right, left)

    generator = spawn_rng(rng)

    # Exact-distance ties between the left and right neighbour: coin flip.
    tied_lr = np.abs(dist_left - dist_right) <= tie_tolerance
    tied_lr &= left != right
    if np.any(tied_lr):
        flips = generator.random(int(tied_lr.sum())) < 0.5
        chosen = np.where(flips, left[tied_lr], right[tied_lr])
        nearest = nearest.copy()
        nearest[tied_lr] = chosen

    # Duplicate timestamps: several samples share the winning time; pick one
    # uniformly among the run of equal times. Runs depend only on the sorted
    # sample times, so one linear boundary pass replaces two per-query
    # searchsorted calls (the dominant cost at production query counts).
    if times.size > 1:
        change = np.empty(times.size, dtype=bool)
        change[0] = True
        np.not_equal(times[1:], times[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        lengths = np.diff(np.append(starts, times.size))
        rid = (np.cumsum(change) - 1)[nearest]
        run_start = starts[rid]
        run_len = lengths[rid]
    else:
        run_start = np.zeros(nearest.shape, dtype=np.int64)
        run_len = np.ones(nearest.shape, dtype=np.int64)
    multi = run_len > 1
    if np.any(multi):
        offsets = (generator.random(int(multi.sum())) * run_len[multi]).astype(np.int64)
        nearest = nearest.copy()
        nearest[multi] = run_start[multi] + offsets
    return nearest


def sorted_by_time(
    times: np.ndarray, *columns: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Return ``times`` and the given parallel columns sorted by time."""
    times = np.asarray(times, dtype=float)
    order = np.argsort(times, kind="mergesort")
    return (times[order],) + tuple(np.asarray(c)[order] for c in columns)
