"""Correlation measures used by the locality diagnostics.

The paper's second locality check (Section 2.1) correlates the per-minute
*temporal density* of latency samples with the window-average latency; a
negative correlation means user actions cluster in low-latency periods.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyDataError


def _validated_pair(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise EmptyDataError(f"correlation inputs differ in shape: {x.shape} vs {y.shape}")
    ok = ~(np.isnan(x) | np.isnan(y))
    x, y = x[ok], y[ok]
    if x.size < 2:
        raise EmptyDataError("correlation needs at least two finite pairs")
    return x, y


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson product-moment correlation coefficient.

    NaN pairs are dropped. Returns 0.0 when either input is constant (the
    coefficient is undefined there; 0 is the conservative 'no association').
    """
    x, y = _validated_pair(x, y)
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Ranks with ties broken by midrank (average rank)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        midrank = 0.5 * (i + j) + 1.0
        ranks[order[i : j + 1]] = midrank
        i = j + 1
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (Pearson on midranks)."""
    x, y = _validated_pair(x, y)
    return pearson(_rankdata(x), _rankdata(y))
