"""Bootstrap confidence intervals.

The paper reports point estimates of the normalized latency preference; this
reproduction additionally attaches percentile-bootstrap confidence bands so
the benchmark output can show when two curves (e.g. business vs consumer)
are separated beyond resampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import EmptyDataError
from repro.stats.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    @property
    def halfwidth(self) -> float:
        return 0.5 * (self.high - self.low)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: SeedLike = None,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``statistic`` of ``values``."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise EmptyDataError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise EmptyDataError(f"confidence must be in (0, 1), got {confidence}")
    generator = spawn_rng(rng)
    replicates = np.empty(n_resamples, dtype=float)
    n = v.size
    for i in range(n_resamples):
        replicates[i] = float(statistic(v[generator.integers(0, n, size=n)]))
    alpha = 1.0 - confidence
    low, high = np.quantile(replicates, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapResult(
        estimate=float(statistic(v)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_curve_band(
    resample: Callable[[np.random.Generator], np.ndarray],
    point: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 200,
    rng: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pointwise percentile band for a whole curve.

    ``resample`` must return one bootstrap replicate of the curve (same
    length as ``point``) each time it is called with a generator.
    """
    generator = spawn_rng(rng)
    point = np.asarray(point, dtype=float)
    replicates = np.empty((n_resamples, point.size), dtype=float)
    for i in range(n_resamples):
        rep = np.asarray(resample(generator), dtype=float)
        if rep.shape != point.shape:
            raise EmptyDataError("resample() returned a curve of the wrong length")
        replicates[i] = rep
    alpha = 1.0 - confidence
    low = np.nanquantile(replicates, alpha / 2.0, axis=0)
    high = np.nanquantile(replicates, 1.0 - alpha / 2.0, axis=0)
    return low, high
