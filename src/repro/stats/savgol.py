"""Savitzky–Golay smoothing, implemented from first principles.

The paper (Section 2.3) smooths the noisy ``B/U`` preference ratio with a
Savitzky–Golay filter of window 101 and polynomial degree 3. The filter fits
a least-squares polynomial of the given degree to each sliding window and
evaluates it at the window center; because the fit is linear in the data the
whole operation reduces to a convolution with fixed coefficients [Savitzky &
Golay, 1964].

This module derives those coefficients directly from the normal equations
(no scipy), handles NaN gaps (bins where the unbiased density was zero) by
re-fitting on the available points, and treats the array edges with
shrink-to-fit polynomial fits rather than zero padding.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.errors import ConfigError


@lru_cache(maxsize=64)
def savgol_coefficients(window: int, degree: int, deriv: int = 0) -> np.ndarray:
    """Return the convolution coefficients for a centered SG filter.

    Parameters
    ----------
    window:
        Odd window length.
    degree:
        Polynomial degree, must satisfy ``degree < window``.
    deriv:
        Derivative order to estimate (0 = smoothing).
    """
    if window % 2 != 1 or window < 1:
        raise ConfigError(f"window must be odd and positive, got {window}")
    if degree < 0 or degree >= window:
        raise ConfigError(f"degree must satisfy 0 <= degree < window, got {degree}")
    if deriv < 0 or deriv > degree:
        raise ConfigError(f"deriv must satisfy 0 <= deriv <= degree, got {deriv}")
    half = window // 2
    # Vandermonde matrix of offsets -half..half.
    offsets = np.arange(-half, half + 1, dtype=float)
    vander = np.vander(offsets, degree + 1, increasing=True)
    # Least squares: coefficients of the fitted polynomial are
    # (V^T V)^{-1} V^T y; the deriv-th derivative at offset 0 is
    # deriv! * a_deriv, i.e. a fixed linear functional of y.
    pinv = np.linalg.pinv(vander)
    factorial = 1
    for k in range(2, deriv + 1):
        factorial *= k
    return pinv[deriv] * factorial


def _fit_window(y: np.ndarray, x: np.ndarray, degree: int, at: float) -> float:
    """Least-squares polynomial fit of ``y(x)`` evaluated at ``at``."""
    deg = min(degree, len(x) - 1)
    vander = np.vander(x - at, deg + 1, increasing=True)
    solution, *_ = np.linalg.lstsq(vander, y, rcond=None)
    return float(solution[0])


def savgol_smooth(
    values: np.ndarray,
    window: int = 101,
    degree: int = 3,
    handle_nan: bool = True,
) -> np.ndarray:
    """Smooth ``values`` with a Savitzky–Golay filter.

    Interior points away from edges and NaNs use the fast convolution path;
    edge windows and windows containing NaNs fall back to an explicit
    least-squares fit over the valid points in the window. Output positions
    whose own input was NaN stay NaN when fewer than ``degree + 1`` valid
    neighbours exist.
    """
    y = np.asarray(values, dtype=float)
    if y.ndim != 1:
        raise ConfigError("savgol_smooth expects a 1-D array")
    n = y.size
    if n == 0:
        return y.copy()
    window = min(window, n if n % 2 == 1 else n - 1)
    if window < 1:
        window = 1
    if window <= degree:
        # Not enough points for the requested degree anywhere; fall back to
        # the best polynomial the data supports.
        degree = max(window - 1, 0)
    half = window // 2
    has_nan = bool(np.isnan(y).any()) if handle_nan else False
    out = np.empty_like(y)

    if not has_nan and n >= window:
        coeffs = savgol_coefficients(window, degree)
        # 'valid' convolution for the interior.
        interior = np.convolve(y, coeffs[::-1], mode="valid")
        out[half : n - half] = interior
        edge_indices = list(range(half)) + list(range(n - half, n))
    else:
        edge_indices = list(range(n))

    positions = np.arange(n, dtype=float)
    for i in edge_indices:
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        window_y = y[lo:hi]
        window_x = positions[lo:hi]
        valid = ~np.isnan(window_y)
        n_valid = int(valid.sum())
        if n_valid == 0 or (np.isnan(y[i]) and n_valid < degree + 1):
            out[i] = np.nan
            continue
        out[i] = _fit_window(window_y[valid], window_x[valid], degree, at=float(i))
    return out


class SavitzkyGolay:
    """A reusable Savitzky–Golay smoother with fixed window and degree.

    >>> smoother = SavitzkyGolay(window=5, degree=2)
    >>> smoothed = smoother(np.arange(10.0) ** 2)
    """

    def __init__(self, window: int = 101, degree: int = 3) -> None:
        if window % 2 != 1 or window < 1:
            raise ConfigError(f"window must be odd and positive, got {window}")
        if degree < 0:
            raise ConfigError(f"degree must be non-negative, got {degree}")
        self.window = window
        self.degree = degree

    def __call__(self, values: np.ndarray, handle_nan: bool = True) -> np.ndarray:
        return savgol_smooth(values, self.window, self.degree, handle_nan=handle_nan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SavitzkyGolay(window={self.window}, degree={self.degree})"
