"""Ornstein–Uhlenbeck and AR(1) processes.

The workload simulator models the *predictable* component of latency as a
mean-reverting log-scale congestion process: periods of elevated latency
persist for minutes to hours and then decay — exactly the temporal locality
the paper's Figure 1 measures. An exact-discretization OU process gives that
behaviour with two interpretable knobs: the relaxation time and the
stationary standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.stats.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class OrnsteinUhlenbeck:
    """A stationary OU process ``dX = -(X - mean)/tau dt + sigma_inf*sqrt(2/tau) dW``.

    Parameters
    ----------
    mean:
        Long-run mean the process reverts to.
    tau:
        Relaxation (mean-reversion) time, in the same units as the sample
        step. Larger tau = longer-lived excursions = more locality.
    sigma:
        Stationary standard deviation of the process.
    """

    mean: float = 0.0
    tau: float = 1800.0
    sigma: float = 0.3

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ConfigError(f"tau must be positive, got {self.tau}")
        if self.sigma < 0:
            raise ConfigError(f"sigma must be non-negative, got {self.sigma}")

    def sample_path(
        self,
        n_steps: int,
        dt: float,
        rng: SeedLike = None,
        x0: float | None = None,
    ) -> np.ndarray:
        """Sample ``n_steps`` values at spacing ``dt`` via exact discretization.

        The exact AR(1) update ``x' = mean + phi (x - mean) + eps`` with
        ``phi = exp(-dt/tau)`` and ``eps ~ N(0, sigma^2 (1 - phi^2))`` has the
        correct stationary distribution regardless of ``dt``.
        """
        if n_steps < 0:
            raise ConfigError(f"n_steps must be non-negative, got {n_steps}")
        if dt <= 0:
            raise ConfigError(f"dt must be positive, got {dt}")
        generator = spawn_rng(rng)
        phi = float(np.exp(-dt / self.tau))
        noise_sd = self.sigma * float(np.sqrt(max(0.0, 1.0 - phi * phi)))
        out = np.empty(n_steps, dtype=float)
        if n_steps == 0:
            return out
        if x0 is None:
            x = self.mean + self.sigma * generator.standard_normal()
        else:
            x = float(x0)
        shocks = noise_sd * generator.standard_normal(n_steps)
        for i in range(n_steps):
            x = self.mean + phi * (x - self.mean) + shocks[i]
            out[i] = x
        return out

    def autocorrelation(self, lag_seconds: float) -> float:
        """Theoretical autocorrelation at the given lag."""
        return float(np.exp(-abs(lag_seconds) / self.tau))


def ar1_series(
    n: int,
    phi: float,
    sigma: float = 1.0,
    mean: float = 0.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Sample a stationary AR(1) series ``x' = mean + phi (x - mean) + eps``.

    ``sigma`` is the *stationary* standard deviation (not the shock scale).
    Requires ``|phi| < 1``.
    """
    if not -1.0 < phi < 1.0:
        raise ConfigError(f"phi must satisfy |phi| < 1, got {phi}")
    if n < 0:
        raise ConfigError(f"n must be non-negative, got {n}")
    generator = spawn_rng(rng)
    shock_sd = sigma * float(np.sqrt(1.0 - phi * phi))
    out = np.empty(n, dtype=float)
    if n == 0:
        return out
    x = mean + sigma * generator.standard_normal()
    shocks = shock_sd * generator.standard_normal(n)
    for i in range(n):
        x = mean + phi * (x - mean) + shocks[i]
        out[i] = x
    return out
