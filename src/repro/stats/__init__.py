"""Statistics substrate for the AutoSens reproduction.

Everything in this package is generic numerical machinery with no knowledge
of telemetry or the AutoSens methodology:

- :mod:`repro.stats.rng` — reproducible random-generator management
- :mod:`repro.stats.histogram` — fixed-width binned histograms / PDFs
- :mod:`repro.stats.savgol` — from-scratch Savitzky–Golay smoothing
- :mod:`repro.stats.msd` — mean-successive-difference (von Neumann) statistics
- :mod:`repro.stats.correlation` — Pearson / Spearman correlation
- :mod:`repro.stats.sampling` — nearest-in-time resampling primitives
- :mod:`repro.stats.ou_process` — Ornstein–Uhlenbeck / AR(1) processes
- :mod:`repro.stats.interpolate` — monotone (PCHIP) interpolation
- :mod:`repro.stats.bootstrap` — bootstrap confidence intervals
- :mod:`repro.stats.quantiles` — exact and streaming (P²) quantiles
- :mod:`repro.stats.smoothing` — moving-average / EWMA helpers
"""

from repro.stats.bootstrap import BootstrapResult, bootstrap_ci, bootstrap_curve_band
from repro.stats.correlation import pearson, spearman
from repro.stats.histogram import Histogram1D, HistogramBins, latency_bins
from repro.stats.interpolate import MonotoneCubicInterpolator
from repro.stats.msd import (
    LocalityComparison,
    compare_locality,
    mean_absolute_difference,
    mean_successive_difference,
    msd_mad_ratio,
    von_neumann_ratio,
)
from repro.stats.ou_process import OrnsteinUhlenbeck, ar1_series
from repro.stats.quantiles import P2Quantile, exact_quantile
from repro.stats.rng import RngFactory, spawn_rng
from repro.stats.sampling import nearest_time_sample, random_times, sorted_by_time
from repro.stats.savgol import SavitzkyGolay, savgol_coefficients, savgol_smooth
from repro.stats.smoothing import ewma, moving_average

__all__ = [
    "BootstrapResult",
    "bootstrap_ci",
    "bootstrap_curve_band",
    "latency_bins",
    "LocalityComparison",
    "compare_locality",
    "sorted_by_time",
    "pearson",
    "spearman",
    "Histogram1D",
    "HistogramBins",
    "MonotoneCubicInterpolator",
    "mean_absolute_difference",
    "mean_successive_difference",
    "msd_mad_ratio",
    "von_neumann_ratio",
    "OrnsteinUhlenbeck",
    "ar1_series",
    "P2Quantile",
    "exact_quantile",
    "RngFactory",
    "spawn_rng",
    "nearest_time_sample",
    "random_times",
    "SavitzkyGolay",
    "savgol_coefficients",
    "savgol_smooth",
    "ewma",
    "moving_average",
]
