"""Simple smoothers: centered moving average and EWMA.

These complement the Savitzky–Golay filter: the ablation benchmark compares
SG against a plain moving average to show why the paper chose SG (it
preserves curve shape near steep drops far better at equal noise reduction).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average, NaN-aware, edges use the available points."""
    y = np.asarray(values, dtype=float)
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window}")
    if y.ndim != 1:
        raise ConfigError("moving_average expects a 1-D array")
    half = window // 2
    ok = ~np.isnan(y)
    filled = np.where(ok, y, 0.0)
    kernel = np.ones(window)
    sums = np.convolve(filled, kernel, mode="same")
    counts = np.convolve(ok.astype(float), kernel, mode="same")
    with np.errstate(invalid="ignore", divide="ignore"):
        out = sums / counts
    out[counts == 0] = np.nan
    # 'same' convolution already shrinks the effective window at edges.
    del half
    return out


def ewma(values: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average; NaNs are skipped (held state)."""
    if not 0.0 < alpha <= 1.0:
        raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
    y = np.asarray(values, dtype=float)
    out = np.empty_like(y)
    state = np.nan
    for i, v in enumerate(y):
        if np.isnan(v):
            out[i] = state
            continue
        state = v if np.isnan(state) else alpha * v + (1.0 - alpha) * state
        out[i] = state
    return out
