"""Exact and streaming quantiles.

Section 3.4 groups users into quartiles of their per-user *median* latency.
At OWA scale that median must be computed without buffering every sample per
user, so alongside the exact helper we provide the P² (Jain & Chlamtac,
1985) streaming quantile estimator: O(1) memory per user, five markers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, EmptyDataError


def exact_quantile(values: np.ndarray, q: float) -> float:
    """Exact quantile via linear interpolation (numpy's default scheme)."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise EmptyDataError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"q must be in [0, 1], got {q}")
    return float(np.quantile(v, q))


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Maintains five markers whose heights converge to the requested quantile
    without storing observations. Exact for the first five samples; after
    that the classic parabolic (P²) update adjusts interior markers.

    >>> est = P2Quantile(0.5)
    >>> for x in [5, 1, 4, 2, 3]:
    ...     est.add(x)
    >>> est.value()
    3.0
    """

    def __init__(self, q: float = 0.5) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigError(f"q must be in (0, 1), got {q}")
        self.q = q
        self._initial: list[float] = []
        self._n: list[int] = []        # marker positions (1-based)
        self._ns: list[float] = []     # desired positions
        self._heights: list[float] = []
        self._count = 0

    def add(self, value: float) -> None:
        """Feed one observation."""
        value = float(value)
        self._count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._n = [1, 2, 3, 4, 5]
                q = self.q
                self._ns = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
            return

        heights = self._heights
        n = self._n
        # Locate the cell and update extreme heights.
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            for i in range(1, 5):
                if value < heights[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            n[i] += 1
        q = self.q
        dn = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        for i in range(5):
            self._ns[i] += dn[i]

        # Adjust interior markers.
        for i in range(1, 4):
            d = self._ns[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                step = 1 if d >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        n = self._n
        h = self._heights
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        n = self._n
        h = self._heights
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    @property
    def count(self) -> int:
        """Number of observations fed so far."""
        return self._count

    def value(self) -> float:
        """Current quantile estimate."""
        if self._count == 0:
            raise EmptyDataError("no observations fed to P2Quantile")
        if len(self._initial) < 5:
            return exact_quantile(np.asarray(self._initial), self.q)
        return float(self._heights[2])
