"""Fixed-width binned histograms.

AutoSens discretizes latency into 10 ms bins (paper Section 2.3) and builds
two histograms over the same bin grid — the biased distribution ``B`` and the
unbiased distribution ``U`` — whose ratio yields the latency preference.
:class:`Histogram1D` is that shared building block: a weighted, fixed-width
histogram supporting accumulation, merging, scaling and normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, EmptyDataError


@dataclass(frozen=True)
class HistogramBins:
    """A fixed-width bin grid ``[low, low + width), [low + width, ...)``.

    Values below ``low`` or at/above ``high`` are either clipped into the
    edge bins or dropped, depending on the histogram's ``clip`` flag.
    """

    low: float
    high: float
    width: float

    def __post_init__(self) -> None:
        if not (self.high > self.low):
            raise ConfigError(f"high ({self.high}) must exceed low ({self.low})")
        if not (self.width > 0):
            raise ConfigError(f"bin width must be positive, got {self.width}")
        span = self.high - self.low
        count = span / self.width
        if abs(count - round(count)) > 1e-9 * max(1.0, count):
            raise ConfigError(
                f"bin width {self.width} does not evenly divide [{self.low}, {self.high})"
            )

    @property
    def count(self) -> int:
        """Number of bins."""
        return int(round((self.high - self.low) / self.width))

    @property
    def edges(self) -> np.ndarray:
        """Array of ``count + 1`` bin edges."""
        return self.low + self.width * np.arange(self.count + 1)

    @property
    def centers(self) -> np.ndarray:
        """Array of bin center values."""
        return self.low + self.width * (np.arange(self.count) + 0.5)

    def index_of(self, values: np.ndarray) -> np.ndarray:
        """Map values to bin indices; out-of-range values map to -1."""
        values = np.asarray(values, dtype=float)
        idx = np.floor((values - self.low) / self.width).astype(np.int64)
        out_of_range = (values < self.low) | (values >= self.high)
        idx[out_of_range] = -1
        return idx

    def clip_index_of(self, values: np.ndarray) -> np.ndarray:
        """Map values to bin indices, clipping out-of-range into edge bins."""
        values = np.asarray(values, dtype=float)
        idx = np.floor((values - self.low) / self.width).astype(np.int64)
        return np.clip(idx, 0, self.count - 1)


class Histogram1D:
    """Weighted fixed-width histogram over a :class:`HistogramBins` grid.

    Parameters
    ----------
    bins:
        The bin grid shared by every histogram that will be compared.
    clip:
        When true, out-of-range samples accumulate into the edge bins;
        when false (default) they are silently dropped but counted in
        :attr:`dropped`.
    """

    def __init__(self, bins: HistogramBins, clip: bool = False) -> None:
        self.bins = bins
        self.clip = clip
        self._weights = np.zeros(bins.count, dtype=float)
        self._dropped = 0.0
        self._total_added = 0.0

    # -- accumulation ------------------------------------------------------

    def add(self, values: Iterable[float], weights: Optional[Iterable[float]] = None) -> None:
        """Accumulate ``values`` (optionally with per-sample ``weights``)."""
        values = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                            dtype=float)
        if values.size == 0:
            return
        if weights is None:
            w = np.ones_like(values)
        else:
            w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                           dtype=float)
            if w.shape != values.shape:
                raise ConfigError("weights must match values in shape")
        if self.clip:
            idx = self.bins.clip_index_of(values)
            np.add.at(self._weights, idx, w)
        else:
            idx = self.bins.index_of(values)
            keep = idx >= 0
            self._dropped += float(w[~keep].sum())
            np.add.at(self._weights, idx[keep], w[keep])
        self._total_added += float(w.sum())

    def add_counts(self, counts: np.ndarray) -> None:
        """Accumulate a pre-binned count vector (length = bin count)."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != self._weights.shape:
            raise ConfigError(
                f"counts length {counts.shape} != bin count {self._weights.shape}"
            )
        self._weights += counts
        self._total_added += float(counts.sum())

    # -- views -------------------------------------------------------------

    @property
    def counts(self) -> np.ndarray:
        """Per-bin accumulated weight (a copy)."""
        return self._weights.copy()

    @property
    def total(self) -> float:
        """Total weight currently in the bins."""
        return float(self._weights.sum())

    @property
    def dropped(self) -> float:
        """Total weight dropped because it fell outside the grid."""
        return self._dropped

    @property
    def is_empty(self) -> bool:
        return self.total <= 0.0

    def pdf(self) -> np.ndarray:
        """Probability *density* per bin (integrates to 1 over the grid)."""
        total = self.total
        if total <= 0:
            raise EmptyDataError("cannot normalize an empty histogram")
        return self._weights / (total * self.bins.width)

    def pmf(self) -> np.ndarray:
        """Probability mass per bin (sums to 1)."""
        total = self.total
        if total <= 0:
            raise EmptyDataError("cannot normalize an empty histogram")
        return self._weights / total

    def mean(self) -> float:
        """Weighted mean using bin centers."""
        if self.is_empty:
            raise EmptyDataError("cannot take the mean of an empty histogram")
        return float(np.average(self.bins.centers, weights=self._weights))

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation within bins."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.is_empty:
            raise EmptyDataError("cannot take a quantile of an empty histogram")
        cdf = np.cumsum(self._weights) / self.total
        edges = self.bins.edges
        idx = int(np.searchsorted(cdf, q, side="left"))
        idx = min(idx, self.bins.count - 1)
        prev_cdf = cdf[idx - 1] if idx > 0 else 0.0
        bin_mass = cdf[idx] - prev_cdf
        frac = 0.0 if bin_mass <= 0 else (q - prev_cdf) / bin_mass
        return float(edges[idx] + frac * self.bins.width)

    # -- algebra -----------------------------------------------------------

    def scaled(self, factor: float) -> "Histogram1D":
        """Return a copy with every bin weight multiplied by ``factor``."""
        out = Histogram1D(self.bins, clip=self.clip)
        out._weights = self._weights * float(factor)
        out._total_added = self._total_added * float(factor)
        out._dropped = self._dropped * float(factor)
        return out

    def merged(self, other: "Histogram1D") -> "Histogram1D":
        """Return a new histogram with this one's and ``other``'s weights."""
        if other.bins != self.bins:
            raise ConfigError("cannot merge histograms with different bin grids")
        out = Histogram1D(self.bins, clip=self.clip)
        out._weights = self._weights + other._weights
        out._total_added = self._total_added + other._total_added
        out._dropped = self._dropped + other._dropped
        return out

    def ratio_to(self, other: "Histogram1D", min_denominator: float = 0.0) -> np.ndarray:
        """Per-bin density ratio ``self.pdf() / other.pdf()``.

        Bins where ``other`` has density at or below ``min_denominator`` yield
        ``nan`` rather than an unstable or infinite ratio.
        """
        if other.bins != self.bins:
            raise ConfigError("cannot ratio histograms with different bin grids")
        num = self.pdf()
        den = other.pdf()
        out = np.full_like(num, np.nan)
        ok = den > min_denominator
        out[ok] = num[ok] / den[ok]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram1D):
            return NotImplemented
        return self.bins == other.bins and np.array_equal(self._weights, other._weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram1D(bins=[{self.bins.low}, {self.bins.high})@{self.bins.width}, "
            f"total={self.total:.3g}, dropped={self.dropped:.3g})"
        )


def latency_bins(max_latency_ms: float = 3000.0, width_ms: float = 10.0) -> HistogramBins:
    """The paper's latency grid: 10 ms bins starting at zero."""
    return HistogramBins(low=0.0, high=max_latency_ms, width=width_ms)
