"""Shared vocabulary types: action kinds, user classes, time periods.

These mirror the slices used in the paper's evaluation (Section 3): four OWA
action types, business vs. consumer users, and four six-hour local-time
periods.
"""

from __future__ import annotations

import enum


class ActionType(str, enum.Enum):
    """User action kinds studied in the paper (Section 3.2)."""

    SELECT_MAIL = "SelectMail"
    SWITCH_FOLDER = "SwitchFolder"
    SEARCH = "Search"
    COMPOSE_SEND = "ComposeSend"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class UserClass(str, enum.Enum):
    """Subscription tier of a user (Section 3.3)."""

    BUSINESS = "business"
    CONSUMER = "consumer"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class DayPeriod(str, enum.Enum):
    """Four six-hour local-time periods used in Section 3.6.

    The paper's periods are 8am-2pm, 2pm-8pm, 8pm-2am and 2am-8am.
    """

    MORNING = "8am-2pm"
    AFTERNOON = "2pm-8pm"
    NIGHT = "8pm-2am"
    LATE_NIGHT = "2am-8am"

    @classmethod
    def of_hour(cls, hour_of_day: float) -> "DayPeriod":
        """Map an hour of day in ``[0, 24)`` to its six-hour period."""
        hour = float(hour_of_day) % 24.0
        if 8.0 <= hour < 14.0:
            return cls.MORNING
        if 14.0 <= hour < 20.0:
            return cls.AFTERNOON
        if 20.0 <= hour or hour < 2.0:
            return cls.NIGHT
        return cls.LATE_NIGHT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Ordered list of all action types, in the order the paper presents them.
ALL_ACTION_TYPES = (
    ActionType.SELECT_MAIL,
    ActionType.SWITCH_FOLDER,
    ActionType.SEARCH,
    ActionType.COMPOSE_SEND,
)

#: Ordered list of user classes.
ALL_USER_CLASSES = (UserClass.BUSINESS, UserClass.CONSUMER)

#: Ordered list of day periods as the paper plots them.
ALL_DAY_PERIODS = (
    DayPeriod.MORNING,
    DayPeriod.AFTERNOON,
    DayPeriod.NIGHT,
    DayPeriod.LATE_NIGHT,
)
