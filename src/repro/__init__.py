"""AutoSens reproduction: latency-sensitivity inference from natural experiments.

This package reproduces *AutoSens: Inferring Latency Sensitivity of User
Activity through Natural Experiments* (Thakkar, Saxena, Padmanabhan - ACM IMC
2021). It contains:

- :mod:`repro.core` - the AutoSens methodology itself (biased/unbiased
  latency distributions, time-confounder correction, normalized latency
  preference curves, locality diagnostics);
- :mod:`repro.workload` - a synthetic telemetry generator standing in for
  the paper's proprietary Microsoft OWA logs, with known ground truth;
- :mod:`repro.telemetry` - the telemetry record schema, stores and IO;
- :mod:`repro.stats` - the generic statistics substrate;
- :mod:`repro.analysis` - one driver per paper figure/table;
- :mod:`repro.viz` and :mod:`repro.cli` - terminal plots and a CLI.

Quickstart::

    from repro import AutoSens, owa_scenario

    logs = owa_scenario(seed=7).generate()
    curve = AutoSens().preference_curve(logs, action="SelectMail")
    print(curve.at(1000.0))   # normalized preference at 1 s latency
"""

from repro._version import __version__
from repro.types import ActionType, DayPeriod, UserClass

__all__ = [
    "__version__",
    "ActionType",
    "DayPeriod",
    "UserClass",
    "AutoSens",
    "AutoSensConfig",
    "owa_scenario",
    "generate_telemetry",
]


def __getattr__(name):
    """Lazy re-exports so ``import repro`` stays cheap and cycle-free."""
    if name in ("AutoSens", "AutoSensConfig"):
        from repro.core.pipeline import AutoSens, AutoSensConfig

        return {"AutoSens": AutoSens, "AutoSensConfig": AutoSensConfig}[name]
    if name == "owa_scenario":
        from repro.workload.scenarios import owa_scenario

        return owa_scenario
    if name == "generate_telemetry":
        from repro.workload.generator import generate_telemetry

        return generate_telemetry
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
