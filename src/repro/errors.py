"""Exception hierarchy for the AutoSens reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.

Taxonomy
--------

The hierarchy separates *what went wrong* so callers (and the CLI, which
maps each class to a distinct exit code) can react differently:

- :class:`ConfigError` — the caller asked for something incoherent; fix the
  request, not the data. CLI exit code 2.
- :class:`SchemaError` — a single record or file violates the expected
  shape. Raised eagerly under the ``strict`` ingest policy; routed to the
  quarantine sink under ``lenient``/``quarantine`` (see
  :mod:`repro.telemetry.ingest`). CLI exit code 3.
- :class:`IngestError` — the data as a whole is too dirty: the share of bad
  rows exceeded the ingest policy's error budget. Carries the
  :class:`~repro.telemetry.ingest.IngestReport` describing what was
  rejected and why. CLI exit code 4.
- :class:`EmptyDataError` / :class:`InsufficientDataError` — the request
  was fine and the rows were well-formed, but there is nothing (or not
  enough) to estimate from. A :class:`~repro.core.pipeline.DegradePolicy`
  can downgrade sweep-level occurrences to recorded warnings. CLI exit
  code 5.
- :class:`PrivacyError` — the operation would reveal a too-small user
  aggregate. Never downgraded. CLI exit code 6.
- :class:`TaskFailedError` — the fault-tolerant runtime exhausted its
  retries for one task; carries the task name, attempt count and last
  cause (see :mod:`repro.parallel.retry`). CLI exit code 7.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A telemetry record or log file violates the expected schema."""


class IngestError(ReproError):
    """Too many bad rows: the ingest policy's error budget was exceeded.

    ``report`` is the :class:`~repro.telemetry.ingest.IngestReport`
    accumulated up to the point of failure (row counts, per-reason
    breakdown, quarantine path).
    """

    def __init__(self, message: str, report: Optional[object] = None) -> None:
        super().__init__(message)
        self.report = report


class EmptyDataError(ReproError):
    """An analysis was attempted on an empty data set or empty slice."""


class InsufficientDataError(ReproError):
    """Data exists but is too sparse for the requested estimate.

    For example: an NLP curve was requested for a latency range whose bins
    have no unbiased mass, or an alpha factor for a time slot with no actions.
    """


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class PrivacyError(ReproError):
    """An operation would reveal information about too small a user group.

    The paper analyzes only large user aggregates; the telemetry layer
    enforces a minimum aggregate size before returning per-group statistics.
    """


class TaskFailedError(ReproError):
    """A runtime task kept failing after every allowed retry.

    Raised by :func:`repro.parallel.retry.call_with_retry` and the
    resilient executors once a task has exhausted its
    :class:`~repro.parallel.retry.RetryPolicy`. The original exception is
    preserved both as ``last_cause`` and as ``__cause__`` (so tracebacks
    chain normally).
    """

    def __init__(
        self,
        task_name: str,
        attempts: int,
        last_cause: Optional[BaseException] = None,
    ) -> None:
        cause = f": {last_cause}" if last_cause is not None else ""
        super().__init__(
            f"task {task_name!r} failed after {attempts} attempt(s){cause}"
        )
        self.task_name = task_name
        self.attempts = attempts
        self.last_cause = last_cause
