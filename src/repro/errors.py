"""Exception hierarchy for the AutoSens reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.

Taxonomy
--------

The hierarchy separates *what went wrong* so callers (and the CLI, which
maps each class to a distinct exit code) can react differently:

- :class:`ConfigError` — the caller asked for something incoherent; fix the
  request, not the data. CLI exit code 2.
- :class:`SchemaError` — a single record or file violates the expected
  shape. Raised eagerly under the ``strict`` ingest policy; routed to the
  quarantine sink under ``lenient``/``quarantine`` (see
  :mod:`repro.telemetry.ingest`). CLI exit code 3.
- :class:`IngestError` — the data as a whole is too dirty: the share of bad
  rows exceeded the ingest policy's error budget. Carries the
  :class:`~repro.telemetry.ingest.IngestReport` describing what was
  rejected and why. CLI exit code 4.
- :class:`EmptyDataError` / :class:`InsufficientDataError` — the request
  was fine and the rows were well-formed, but there is nothing (or not
  enough) to estimate from. A :class:`~repro.core.pipeline.DegradePolicy`
  can downgrade sweep-level occurrences to recorded warnings. CLI exit
  code 5.
- :class:`PrivacyError` — the operation would reveal a too-small user
  aggregate. Never downgraded. CLI exit code 6.
- :class:`TaskFailedError` — the fault-tolerant runtime exhausted its
  retries for one task; carries the task name, attempt count and last
  cause (see :mod:`repro.parallel.retry`). CLI exit code 7.
- :class:`DeadlineExceededError` — a supervised run blew its wall-clock
  budget and was cooperatively cancelled (see
  :mod:`repro.runtime.deadline`). CLI exit code 8.
- :class:`CircuitOpenError` — a call was refused because its circuit
  breaker is open after repeated failures (see
  :mod:`repro.runtime.breaker`). CLI exit code 9.
- :class:`MemoryBudgetError` — the memory governor refused an allocation
  that cannot fit the configured budget (see
  :mod:`repro.runtime.memory`). CLI exit code 10.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A telemetry record or log file violates the expected schema."""


class IngestError(ReproError):
    """Too many bad rows: the ingest policy's error budget was exceeded.

    ``report`` is the :class:`~repro.telemetry.ingest.IngestReport`
    accumulated up to the point of failure (row counts, per-reason
    breakdown, quarantine path).
    """

    def __init__(self, message: str, report: Optional[object] = None) -> None:
        super().__init__(message)
        self.report = report


class EmptyDataError(ReproError):
    """An analysis was attempted on an empty data set or empty slice."""


class InsufficientDataError(ReproError):
    """Data exists but is too sparse for the requested estimate.

    For example: an NLP curve was requested for a latency range whose bins
    have no unbiased mass, or an alpha factor for a time slot with no actions.
    """


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class PrivacyError(ReproError):
    """An operation would reveal information about too small a user group.

    The paper analyzes only large user aggregates; the telemetry layer
    enforces a minimum aggregate size before returning per-group statistics.
    """


class TaskFailedError(ReproError):
    """A runtime task kept failing after every allowed retry.

    Raised by :func:`repro.parallel.retry.call_with_retry` and the
    resilient executors once a task has exhausted its
    :class:`~repro.parallel.retry.RetryPolicy`. The original exception is
    preserved both as ``last_cause`` and as ``__cause__`` (so tracebacks
    chain normally).
    """

    def __init__(
        self,
        task_name: str,
        attempts: int,
        last_cause: Optional[BaseException] = None,
    ) -> None:
        cause = f": {last_cause}" if last_cause is not None else ""
        super().__init__(
            f"task {task_name!r} failed after {attempts} attempt(s){cause}"
        )
        self.task_name = task_name
        self.attempts = attempts
        self.last_cause = last_cause


class DeadlineExceededError(ReproError):
    """A supervised run exceeded its wall-clock budget.

    Raised at cooperative cancellation checkpoints (sweep loops, the alpha
    and preference stages, executor waits) once the active
    :class:`~repro.runtime.deadline.Deadline` has expired. Under a
    :class:`~repro.core.pipeline.DegradePolicy` with
    ``on_over_budget="shed"`` the sweep layer converts this into recorded
    ``deadline_exceeded`` degradations instead of propagating it.
    """

    def __init__(self, message: str, budget_s: Optional[float] = None,
                 elapsed_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class CircuitOpenError(ReproError):
    """A circuit breaker refused the call because its circuit is open.

    Carries the breaker name and how long until the breaker will admit a
    half-open probe, so callers can distinguish "dependency known bad,
    back off" from the underlying failure itself.
    """

    def __init__(self, name: str, retry_after_s: float = 0.0) -> None:
        super().__init__(
            f"circuit {name!r} is open; retry after {retry_after_s:.3g}s"
        )
        self.breaker_name = name
        self.retry_after_s = retry_after_s


class MemoryBudgetError(ReproError):
    """The memory governor cannot admit an allocation within its budget.

    Raised when a single working set is estimated to exceed the hard
    memory budget — spilling cannot help, the tensor simply does not fit.
    """

    def __init__(self, message: str, requested_bytes: Optional[int] = None,
                 budget_bytes: Optional[int] = None) -> None:
        super().__init__(message)
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
