"""Exception hierarchy for the AutoSens reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A telemetry record or log file violates the expected schema."""


class EmptyDataError(ReproError):
    """An analysis was attempted on an empty data set or empty slice."""


class InsufficientDataError(ReproError):
    """Data exists but is too sparse for the requested estimate.

    For example: an NLP curve was requested for a latency range whose bins
    have no unbiased mass, or an alpha factor for a time slot with no actions.
    """


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class PrivacyError(ReproError):
    """An operation would reveal information about too small a user group.

    The paper analyzes only large user aggregates; the telemetry layer
    enforces a minimum aggregate size before returning per-group statistics.
    """
