"""Terminal line plots.

The offline environment has no plotting stack, so figures render as Unicode
scatter/line charts in the terminal and the underlying series export to
CSV/JSON (see :mod:`repro.viz.export`) for external plotting.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EmptyDataError

#: Per-series markers, cycled.
MARKERS = "ox+*#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, steps: int) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(values.size, dtype=int)
    out = np.floor((values - lo) / span * (steps - 1e-9)).astype(int)
    return np.clip(out, 0, steps - 1)


def line_plot(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render named (x, y) series as a text chart.

    NaN points are skipped. Returns a multi-line string ready to print.
    """
    finite_x: list = []
    finite_y: list = []
    for xs, ys in series.values():
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        ok = ~(np.isnan(xs) | np.isnan(ys))
        finite_x.append(xs[ok])
        finite_y.append(ys[ok])
    all_x = np.concatenate(finite_x) if finite_x else np.array([])
    all_y = np.concatenate(finite_y) if finite_y else np.array([])
    if all_x.size == 0:
        raise EmptyDataError("nothing to plot")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    if y_range is not None:
        y_lo, y_hi = y_range
    else:
        y_lo, y_hi = float(all_y.min()), float(all_y.max())
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        ok = ~(np.isnan(xs) | np.isnan(ys))
        cols = _scale(xs[ok], x_lo, x_hi, width)
        rows = _scale(ys[ok], y_lo, y_hi, height)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    lines = []
    if title:
        lines.append(title.center(width + 10))
    for i, row in enumerate(canvas):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1) if height > 1 else y_hi
        lines.append(f"{y_val:9.3g} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    x_axis = f"{x_lo:<12.4g}{x_label.center(max(0, width - 24))}{x_hi:>12.4g}"
    lines.append(" " * 11 + x_axis)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    if y_label:
        lines.append(" " * 11 + f"(y: {y_label})")
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        raise EmptyDataError("nothing to chart")
    label_width = max(len(k) for k in values)
    peak = max(abs(v) for v in values.values()) or 1.0
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(abs(value) / peak * width)))
        lines.append(f"{label:>{label_width}} | {bar} {fmt.format(value)}")
    return "\n".join(lines)
