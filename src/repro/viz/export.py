"""Series export: CSV and JSON files for external plotting."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.errors import EmptyDataError

PathLike = Union[str, Path]


def save_series_csv(series: Dict[str, np.ndarray], path: PathLike) -> int:
    """Write a dict of equal-length columns to CSV; returns row count."""
    if not series:
        raise EmptyDataError("no series to export")
    lengths = {len(np.atleast_1d(v)) for v in series.values()}
    if len(lengths) != 1:
        raise EmptyDataError(f"columns differ in length: {sorted(lengths)}")
    n = lengths.pop()
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(series.keys())
        columns = [np.atleast_1d(v) for v in series.values()]
        for i in range(n):
            writer.writerow(
                ["" if (isinstance(c[i], float) and np.isnan(c[i])) else c[i]
                 for c in columns]
            )
    return n


def save_series_json(series: Dict[str, np.ndarray], path: PathLike) -> None:
    """Write a dict of columns to JSON (NaN becomes null)."""
    if not series:
        raise EmptyDataError("no series to export")
    payload = {}
    for key, values in series.items():
        out = []
        for v in np.atleast_1d(values):
            if isinstance(v, (float, np.floating)) and np.isnan(v):
                out.append(None)
            elif isinstance(v, (np.integer,)):
                out.append(int(v))
            elif isinstance(v, (np.floating,)):
                out.append(float(v))
            else:
                out.append(v)
        payload[key] = out
    Path(path).write_text(json.dumps(payload, indent=1))
