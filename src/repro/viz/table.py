"""Aligned plain-text tables for benchmark/report output."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    indent: str = "",
) -> str:
    """Render rows as a boxed, column-aligned table string."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([format_cell(c, precision) for c in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]

    def fmt_row(cells: List[str]) -> str:
        return indent + "| " + " | ".join(
            c.rjust(w) for c, w in zip(cells, widths)
        ) + " |"

    separator = indent + "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = [separator, fmt_row(rendered[0]), separator]
    lines.extend(fmt_row(r) for r in rendered[1:])
    lines.append(separator)
    return "\n".join(lines)
