"""Terminal visualization and series export (no plotting stack required)."""

from repro.viz.ascii_plot import bar_chart, line_plot
from repro.viz.export import save_series_csv, save_series_json
from repro.viz.table import format_table

__all__ = [
    "line_plot",
    "bar_chart",
    "format_table",
    "save_series_csv",
    "save_series_json",
]
