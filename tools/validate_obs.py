#!/usr/bin/env python
"""Validate observability artifacts against their schemas (CI gate).

Checks any combination of the three artifact kinds the CLI emits::

    PYTHONPATH=src python tools/validate_obs.py \\
        --trace out/trace.json --metrics out/metrics.prom \\
        --manifest out/manifest.json

- ``--trace``: a Chrome ``trace_event`` file (``*.json``) or a span JSONL
  file (``*.jsonl``). Every event/record must carry the trace schema
  version and the required span fields, and parents must resolve.
- ``--metrics``: a Prometheus text file (``*.prom``/``*.txt``) — every
  sample line must parse and belong to a declared ``# TYPE`` — or a JSON
  snapshot (``*.json``).
- ``--manifest``: a run manifest; validated through
  :func:`repro.obs.manifest.load_manifest` plus required-field checks.

Exit status 0 when everything validates, 1 with one line per violation
otherwise. Zero third-party dependencies, same as ``repro.obs`` itself.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest  # noqa: E402
from repro.obs.trace import TRACE_SCHEMA  # noqa: E402

SPAN_FIELDS = ("name", "id", "parent", "path", "tid", "start_us", "dur_us",
               "attrs")
EVENT_FIELDS = ("ph", "name", "cat", "ts", "dur", "pid", "tid", "args")
MANIFEST_FIELDS = ("schema", "run_id", "experiment_id", "seed",
                   "config_fingerprint", "deterministic", "python",
                   "packages", "inputs", "degradations", "ingest", "metrics")

_PROM_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?'
    r' (?P<value>[0-9eE+.\-]+|\+Inf|-Inf|NaN)$'
)


def _validate_span_jsonl(path: Path) -> list:
    errors = []
    ids = set()
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{lineno}: not JSON ({exc})")
            continue
        if record.get("schema") != TRACE_SCHEMA:
            errors.append(f"{path}:{lineno}: schema != {TRACE_SCHEMA}")
        missing = [f for f in SPAN_FIELDS if f not in record]
        if missing:
            errors.append(f"{path}:{lineno}: missing fields {missing}")
            continue
        ids.add(record["id"])
        records.append((lineno, record))
    for lineno, record in records:
        parent = record["parent"]
        if parent is not None and parent not in ids:
            errors.append(f"{path}:{lineno}: parent {parent!r} not in file")
    if not records and not errors:
        errors.append(f"{path}: no span records")
    return errors


def _validate_chrome_trace(path: Path) -> list:
    errors = []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not JSON ({exc})"]
    other = payload.get("otherData", {})
    if other.get("schema") != TRACE_SCHEMA:
        errors.append(f"{path}: otherData.schema != {TRACE_SCHEMA}")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return errors + [f"{path}: traceEvents missing or empty"]
    span_ids = {e.get("args", {}).get("span_id") for e in events}
    for i, event in enumerate(events):
        missing = [f for f in EVENT_FIELDS if f not in event]
        if missing:
            errors.append(f"{path}: event {i} missing fields {missing}")
            continue
        if event["ph"] != "X":
            errors.append(f"{path}: event {i} has phase {event['ph']!r}")
        parent = event["args"].get("parent_id")
        if parent is not None and parent not in span_ids:
            errors.append(f"{path}: event {i} parent {parent!r} unresolved")
    return errors


def _validate_metrics_prom(path: Path) -> list:
    errors = []
    declared = set()
    samples = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                errors.append(f"{path}:{lineno}: malformed TYPE line")
            else:
                declared.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            errors.append(f"{path}:{lineno}: unparseable sample {line!r}")
            continue
        samples += 1
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and base not in declared:
            errors.append(f"{path}:{lineno}: {name} has no # TYPE declaration")
    if samples == 0 and not errors:
        errors.append(f"{path}: no metric samples")
    return errors


def _validate_metrics_json(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if not isinstance(payload, dict) or not payload:
        return [f"{path}: snapshot missing or empty"]
    for name, entry in payload.items():
        if entry.get("kind") not in ("counter", "gauge", "histogram"):
            errors.append(f"{path}: {name} has bad kind {entry.get('kind')!r}")
        if not isinstance(entry.get("series"), dict):
            errors.append(f"{path}: {name} has no series map")
    return errors


def _validate_manifest(path: Path) -> list:
    from repro.errors import SchemaError

    try:
        manifest = load_manifest(path)
    except SchemaError as exc:
        return [str(exc)]
    errors = []
    missing = [f for f in MANIFEST_FIELDS if f not in manifest]
    if missing:
        errors.append(f"{path}: missing fields {missing}")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"{path}: schema != {MANIFEST_SCHEMA}")
    if manifest.get("deterministic") and "created_at" in manifest:
        errors.append(f"{path}: deterministic manifest carries created_at")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", type=Path, default=None,
                        help="Chrome trace (*.json) or span JSONL (*.jsonl)")
    parser.add_argument("--metrics", type=Path, default=None,
                        help="Prometheus text (*.prom) or snapshot (*.json)")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="run manifest JSON")
    args = parser.parse_args(argv)
    if args.trace is None and args.metrics is None and args.manifest is None:
        parser.error("nothing to validate; pass --trace/--metrics/--manifest")

    errors = []
    if args.trace is not None:
        if args.trace.suffix == ".jsonl":
            errors += _validate_span_jsonl(args.trace)
        else:
            errors += _validate_chrome_trace(args.trace)
    if args.metrics is not None:
        if args.metrics.suffix == ".json":
            errors += _validate_metrics_json(args.metrics)
        else:
            errors += _validate_metrics_prom(args.metrics)
    if args.manifest is not None:
        errors += _validate_manifest(args.manifest)

    if errors:
        for line in errors:
            print(f"INVALID: {line}", file=sys.stderr)
        return 1
    print("ok: all artifacts validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
