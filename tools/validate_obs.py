#!/usr/bin/env python
"""Validate observability artifacts against their schemas (CI gate).

Checks any combination of the artifact kinds the CLI emits::

    PYTHONPATH=src python tools/validate_obs.py \\
        --trace out/trace.json --metrics out/metrics.prom \\
        --manifest out/manifest.json --health out/health.json \\
        --profile out/profile.json --diff out/diff.json

- ``--trace``: a Chrome ``trace_event`` file (``*.json``) or a span JSONL
  file (``*.jsonl``). Every event/record must carry the trace schema
  version and the required span fields, and parents must resolve.
- ``--metrics``: a Prometheus text file (``*.prom``/``*.txt``) — every
  sample line must parse and belong to a declared ``# TYPE``, and every
  histogram series must carry a well-formed ``# QUANTILE`` summary line —
  or a JSON snapshot (``*.json``) whose histogram series each embed
  monotone ``p50 <= p90 <= p99`` quantiles.
- ``--manifest``: a run manifest; validated through
  :func:`repro.obs.manifest.load_manifest` plus required-field checks
  (including the embedded health report when present).
- ``--health``: an ``autosens doctor`` health report — schema, verdict,
  per-finding fields, and stage verdicts consistent with the findings.
- ``--profile``: a span profile — schema, per-span resource fields,
  folded-stack line format, top table sorted by self CPU.
- ``--diff``: an ``autosens obs diff`` report — schema, classification
  vocabulary, and a summary that tallies the entries exactly.
- ``--sensitivity``: an ``autosens sensitivity`` frontier artifact —
  schema, verdict vocabulary, per-cell gate consistency, and a frontier
  gate that agrees with its cells.
- ``--progress``: a ``/progress`` snapshot (or recorded ``progress.json``)
  — schema, state vocabulary, per-stage ``done <= total``, non-negative
  rates/ETAs, and event counters.
- ``--events``: a ``/events`` NDJSON tail (or recorded ``events.ndjson``)
  — every line parses, carries the events schema, a type from the closed
  vocabulary, and strictly increasing sequence numbers.
- ``--registry``: a ``--runs-dir`` registry (the directory or its
  ``index.jsonl``) — schema-stamped index lines with strictly increasing
  sequence numbers, each pointing at a run directory whose manifest
  validates.
- ``--baseline`` / ``--trend`` / ``--slo``: ``autosens watch`` artifacts —
  watch schema + kind stamps, per-series baseline fields with sane
  envelopes, change-point states from the closed vocabulary (a stepped
  series must carry its ``change_seq``), and SLO verdicts whose ``met``
  flags agree with their per-series details and breach list.
- ``--summary``: an ``autosens obs summary --format json`` payload — a
  list of ``[field, value]`` rows covering the manifest essentials.

Exit status 0 when everything validates, 1 with one line per violation
otherwise (drift between a summary and its entries, an out-of-order top
table, an inconsistent verdict — all exit non-zero). Zero third-party
dependencies, same as ``repro.obs`` itself.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.diff import DIFF_SCHEMA  # noqa: E402
from repro.obs.events import EVENT_TYPES, EVENTS_SCHEMA  # noqa: E402
from repro.obs.health import HEALTH_SCHEMA  # noqa: E402
from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest  # noqa: E402
from repro.obs.profile import PROFILE_SCHEMA  # noqa: E402
from repro.obs.progress import PROGRESS_SCHEMA, STATES  # noqa: E402
from repro.obs.registry import REGISTRY_SCHEMA  # noqa: E402
from repro.obs.trace import TRACE_SCHEMA  # noqa: E402
from repro.obs.watch import WATCH_SCHEMA  # noqa: E402

SPAN_FIELDS = ("name", "id", "parent", "path", "tid", "start_us", "dur_us",
               "attrs")
EVENT_FIELDS = ("ph", "name", "cat", "ts", "dur", "pid", "tid", "args")
MANIFEST_FIELDS = ("schema", "run_id", "experiment_id", "seed",
                   "config_fingerprint", "deterministic", "python",
                   "packages", "inputs", "degradations", "ingest", "metrics")

_PROM_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?'
    r' (?P<value>[0-9eE+.\-]+|\+Inf|-Inf|NaN)$'
)

_PROM_QUANTILE = re.compile(
    r'^# QUANTILE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?'
    r'(?P<pairs>( p\d+=[0-9eE+.\-]+|\ p\d+=NaN)+)$'
)

_FOLDED_STACK = re.compile(r'^\S.* \d+$')

SEVERITIES = ("ok", "warn", "fail")
FINDING_FIELDS = ("probe", "stage", "severity", "message")
PROFILE_SPAN_FIELDS = ("count", "cpu_self_s", "cpu_total_s", "wall_s",
                       "rss_peak_kb")
DIFF_CLASSIFICATIONS = ("improved", "regressed", "unchanged", "added",
                        "removed")
# Inlined from repro.analysis.sensitivity (importing it would pull numpy
# into this zero-dependency validator); the test suite asserts they match.
SENSITIVITY_SCHEMA = "autosens.sensitivity/v1"
SENSITIVITY_VERDICTS = ("robust", "degraded-explained", "silent-bias")
SENSITIVITY_CELL_FIELDS = ("level", "verdict", "gate_passed", "n_actions",
                           "bias_linf", "bias_signed_area",
                           "ci_band_inflation", "n_compared_bins", "health")


def _validate_span_jsonl(path: Path) -> list:
    errors = []
    ids = set()
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{lineno}: not JSON ({exc})")
            continue
        if record.get("schema") != TRACE_SCHEMA:
            errors.append(f"{path}:{lineno}: schema != {TRACE_SCHEMA}")
        missing = [f for f in SPAN_FIELDS if f not in record]
        if missing:
            errors.append(f"{path}:{lineno}: missing fields {missing}")
            continue
        ids.add(record["id"])
        records.append((lineno, record))
    for lineno, record in records:
        parent = record["parent"]
        if parent is not None and parent not in ids:
            errors.append(f"{path}:{lineno}: parent {parent!r} not in file")
    if not records and not errors:
        errors.append(f"{path}: no span records")
    return errors


def _validate_chrome_trace(path: Path) -> list:
    errors = []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not JSON ({exc})"]
    other = payload.get("otherData", {})
    if other.get("schema") != TRACE_SCHEMA:
        errors.append(f"{path}: otherData.schema != {TRACE_SCHEMA}")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return errors + [f"{path}: traceEvents missing or empty"]
    span_ids = {e.get("args", {}).get("span_id") for e in events}
    for i, event in enumerate(events):
        missing = [f for f in EVENT_FIELDS if f not in event]
        if missing:
            errors.append(f"{path}: event {i} missing fields {missing}")
            continue
        if event["ph"] != "X":
            errors.append(f"{path}: event {i} has phase {event['ph']!r}")
        parent = event["args"].get("parent_id")
        if parent is not None and parent not in span_ids:
            errors.append(f"{path}: event {i} parent {parent!r} unresolved")
    return errors


def _validate_metrics_prom(path: Path) -> list:
    errors = []
    declared = set()
    histograms = set()
    quantile_names = set()
    samples = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                errors.append(f"{path}:{lineno}: malformed TYPE line")
            else:
                declared.add(parts[2])
                if parts[3] == "histogram":
                    histograms.add(parts[2])
            continue
        if line.startswith("# QUANTILE "):
            match = _PROM_QUANTILE.match(line)
            if match is None:
                errors.append(f"{path}:{lineno}: malformed QUANTILE line")
            else:
                quantile_names.add(match.group("name"))
            continue
        if line.startswith("#"):
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            errors.append(f"{path}:{lineno}: unparseable sample {line!r}")
            continue
        samples += 1
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and base not in declared:
            errors.append(f"{path}:{lineno}: {name} has no # TYPE declaration")
    for name in sorted(histograms - quantile_names):
        errors.append(f"{path}: histogram {name} has no # QUANTILE summary")
    if samples == 0 and not errors:
        errors.append(f"{path}: no metric samples")
    return errors


def _check_quantiles(owner: str, quantiles) -> list:
    if not isinstance(quantiles, dict):
        return [f"{owner}: quantiles missing"]
    missing = [k for k in ("p50", "p90", "p99") if k not in quantiles]
    if missing:
        return [f"{owner}: quantiles missing {missing}"]
    p50, p90, p99 = (quantiles[k] for k in ("p50", "p90", "p99"))
    if not (p50 <= p90 <= p99):
        return [f"{owner}: quantiles not monotone ({p50}, {p90}, {p99})"]
    return []


def _validate_metrics_json(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if not isinstance(payload, dict) or not payload:
        return [f"{path}: snapshot missing or empty"]
    for name, entry in payload.items():
        if entry.get("kind") not in ("counter", "gauge", "histogram"):
            errors.append(f"{path}: {name} has bad kind {entry.get('kind')!r}")
        if not isinstance(entry.get("series"), dict):
            errors.append(f"{path}: {name} has no series map")
        elif entry.get("kind") == "histogram":
            for labels, series in entry["series"].items():
                errors += _check_quantiles(
                    f"{path}: {name}{labels}",
                    series.get("quantiles") if isinstance(series, dict)
                    else None)
    return errors


def _validate_manifest(path: Path) -> list:
    from repro.errors import SchemaError

    try:
        manifest = load_manifest(path)
    except SchemaError as exc:
        return [str(exc)]
    errors = []
    missing = [f for f in MANIFEST_FIELDS if f not in manifest]
    if missing:
        errors.append(f"{path}: missing fields {missing}")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"{path}: schema != {MANIFEST_SCHEMA}")
    if manifest.get("deterministic") and "created_at" in manifest:
        errors.append(f"{path}: deterministic manifest carries created_at")
    if "health" in manifest:
        errors += _check_health_payload(f"{path} (embedded)",
                                        manifest["health"])
    return errors


def _check_health_payload(owner: str, payload) -> list:
    if not isinstance(payload, dict):
        return [f"{owner}: health report is not an object"]
    errors = []
    if payload.get("schema") != HEALTH_SCHEMA:
        errors.append(f"{owner}: health schema != {HEALTH_SCHEMA}")
    if payload.get("verdict") not in SEVERITIES:
        errors.append(f"{owner}: bad verdict {payload.get('verdict')!r}")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        return errors + [f"{owner}: findings missing"]
    worst_by_stage = {}
    rank = {s: i for i, s in enumerate(SEVERITIES)}
    for i, finding in enumerate(findings):
        missing = [f for f in FINDING_FIELDS if f not in finding]
        if missing:
            errors.append(f"{owner}: finding {i} missing fields {missing}")
            continue
        if finding["severity"] not in SEVERITIES:
            errors.append(
                f"{owner}: finding {i} has bad severity "
                f"{finding['severity']!r}")
            continue
        stage = finding["stage"]
        worst_by_stage.setdefault(stage, "ok")
        if rank[finding["severity"]] > rank[worst_by_stage[stage]]:
            worst_by_stage[stage] = finding["severity"]
    stages = payload.get("stages")
    if isinstance(stages, dict) and stages != worst_by_stage:
        errors.append(
            f"{owner}: stage verdicts {stages} disagree with the findings "
            f"({worst_by_stage})")
    counts = payload.get("counts")
    if isinstance(counts, dict):
        tally = {s: 0 for s in SEVERITIES}
        for finding in findings:
            tally[finding.get("severity", "warn")] = (
                tally.get(finding.get("severity", "warn"), 0) + 1)
        if counts != tally:
            errors.append(f"{owner}: counts {counts} disagree with the "
                          f"findings ({tally})")
    return errors


def _validate_health(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    return _check_health_payload(str(path), payload)


def _validate_profile(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if payload.get("schema") != PROFILE_SCHEMA:
        errors.append(f"{path}: schema != {PROFILE_SCHEMA}")
    spans = payload.get("spans")
    if not isinstance(spans, dict):
        return errors + [f"{path}: spans missing"]
    for name, entry in spans.items():
        missing = [f for f in PROFILE_SPAN_FIELDS if f not in entry]
        if missing:
            errors.append(f"{path}: span {name!r} missing fields {missing}")
            continue
        if entry["cpu_self_s"] > entry["cpu_total_s"] + 1e-6:
            errors.append(
                f"{path}: span {name!r} self CPU exceeds total CPU")
    top = payload.get("top", [])
    self_times = [row.get("cpu_self_s", 0.0) for row in top]
    if self_times != sorted(self_times, reverse=True):
        errors.append(f"{path}: top table is not sorted by self CPU")
    for key in ("folded_spans", "folded_stacks"):
        for i, line in enumerate(payload.get(key, [])):
            if not _FOLDED_STACK.match(line):
                errors.append(f"{path}: {key}[{i}] is not 'stack count'")
    return errors


def _validate_diff(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if payload.get("schema") != DIFF_SCHEMA:
        errors.append(f"{path}: schema != {DIFF_SCHEMA}")
    if payload.get("kind") not in ("bench", "manifest", "metrics", "curve",
                                   "health", "sensitivity",
                                   "watch-baseline", "watch-trend"):
        errors.append(f"{path}: bad kind {payload.get('kind')!r}")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        return errors + [f"{path}: entries missing"]
    tally = {c: 0 for c in DIFF_CLASSIFICATIONS}
    for i, entry in enumerate(entries):
        cls = entry.get("classification")
        if cls not in DIFF_CLASSIFICATIONS:
            errors.append(f"{path}: entry {i} has bad classification {cls!r}")
            continue
        tally[cls] += 1
        if "key" not in entry:
            errors.append(f"{path}: entry {i} has no key")
    summary = payload.get("summary")
    if isinstance(summary, dict) and {
        k: summary.get(k, 0) for k in DIFF_CLASSIFICATIONS
    } != tally:
        errors.append(
            f"{path}: summary {summary} disagrees with the entries ({tally})")
    return errors


def _validate_sensitivity(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if payload.get("schema") != SENSITIVITY_SCHEMA:
        errors.append(f"{path}: schema != {SENSITIVITY_SCHEMA}")
    if not payload.get("fixture"):
        errors.append(f"{path}: fixture name missing")
    clean = payload.get("clean")
    if not isinstance(clean, dict):
        errors.append(f"{path}: clean twin missing")
    elif not isinstance(clean.get("n_actions"), int) or clean["n_actions"] < 0:
        errors.append(
            f"{path}: clean twin has bad n_actions "
            f"{clean.get('n_actions')!r}")
    if isinstance(clean, dict) and isinstance(clean.get("health"), dict):
        errors += _check_health_cell(f"{path}: clean", clean["health"])
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        return errors + [f"{path}: cells missing or empty"]
    all_gates = []
    for i, cell in enumerate(cells):
        missing = [f for f in SENSITIVITY_CELL_FIELDS if f not in cell]
        if missing:
            errors.append(f"{path}: cell {i} missing fields {missing}")
            continue
        verdict = cell["verdict"]
        if verdict not in SENSITIVITY_VERDICTS:
            errors.append(f"{path}: cell {i} has bad verdict {verdict!r}")
            continue
        gate = cell["gate_passed"]
        all_gates.append(bool(gate))
        if bool(gate) != (verdict != "silent-bias"):
            errors.append(
                f"{path}: cell {i} gate_passed {gate!r} disagrees with "
                f"its verdict {verdict!r}")
        level = cell["level"]
        if not isinstance(level, (int, float)) or not 0.0 <= level <= 1.0:
            errors.append(f"{path}: cell {i} has bad level {level!r}")
        if isinstance(cell.get("health"), dict):
            errors += _check_health_cell(f"{path}: cell {i}", cell["health"])
    frontier_gate = payload.get("gate_passed")
    if all_gates and bool(frontier_gate) != all(all_gates):
        errors.append(
            f"{path}: frontier gate_passed {frontier_gate!r} disagrees "
            f"with its cells ({all_gates})")
    return errors


def _check_health_cell(owner: str, health) -> list:
    """A frontier cell's health summary: verdict + counts only."""
    errors = []
    if health.get("verdict") not in SEVERITIES:
        errors.append(f"{owner}: bad health verdict "
                      f"{health.get('verdict')!r}")
    counts = health.get("counts")
    if not isinstance(counts, dict) or any(
            not isinstance(counts.get(k), int) or counts.get(k, 0) < 0
            for k in SEVERITIES):
        errors.append(f"{owner}: health counts missing or negative")
    return errors


def _validate_progress(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if payload.get("schema") != PROGRESS_SCHEMA:
        errors.append(f"{path}: schema != {PROGRESS_SCHEMA}")
    if payload.get("state") not in STATES:
        errors.append(f"{path}: bad state {payload.get('state')!r}")
    elapsed = payload.get("elapsed_s")
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        errors.append(f"{path}: bad elapsed_s {elapsed!r}")
    stages = payload.get("stages")
    if not isinstance(stages, dict):
        return errors + [f"{path}: stages missing"]
    for name, stage in stages.items():
        done = stage.get("done")
        total = stage.get("total")
        if not isinstance(done, int) or done < 0:
            errors.append(f"{path}: stage {name!r} has bad done {done!r}")
            continue
        if total is not None and (not isinstance(total, int) or done > total):
            errors.append(
                f"{path}: stage {name!r} has done {done} > total {total}")
        for key in ("rate_per_s", "eta_s"):
            value = stage.get(key)
            if value is not None and (
                    not isinstance(value, (int, float)) or value < 0):
                errors.append(f"{path}: stage {name!r} has bad {key} "
                              f"{value!r}")
    counters = payload.get("events")
    if not isinstance(counters, dict) or any(
            not isinstance(counters.get(k), int) or counters.get(k, 0) < 0
            for k in ("seen", "dropped")):
        errors.append(f"{path}: events counters missing or negative")
    return errors


def _validate_events(path: Path) -> list:
    errors = []
    last_seq = 0
    lines = path.read_text().splitlines()
    for lineno, line in enumerate(lines, start=1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{lineno}: not JSON ({exc})")
            continue
        if event.get("schema") != EVENTS_SCHEMA:
            errors.append(f"{path}:{lineno}: schema != {EVENTS_SCHEMA}")
        if event.get("type") not in EVENT_TYPES:
            errors.append(
                f"{path}:{lineno}: type {event.get('type')!r} not in the "
                "event vocabulary")
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            errors.append(f"{path}:{lineno}: seq {seq!r} not strictly "
                          f"increasing (after {last_seq})")
        else:
            last_seq = seq
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts <= 0:
            errors.append(f"{path}:{lineno}: bad ts {ts!r}")
    if not lines:
        errors.append(f"{path}: no events")
    return errors


def _validate_registry(path: Path) -> list:
    runs_dir = path if path.is_dir() else path.parent
    index = runs_dir / "index.jsonl" if path.is_dir() else path
    if not index.is_file():
        return [f"{index}: registry index missing"]
    errors = []
    last_seq = 0
    entries = 0
    for lineno, line in enumerate(index.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{index}:{lineno}: not JSON ({exc})")
            continue
        entries += 1
        if entry.get("schema") != REGISTRY_SCHEMA:
            errors.append(f"{index}:{lineno}: schema != {REGISTRY_SCHEMA}")
        seq = entry.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            errors.append(f"{index}:{lineno}: seq {seq!r} not strictly "
                          f"increasing (after {last_seq})")
        else:
            last_seq = seq
        run_dir = runs_dir / str(entry.get("dir", ""))
        if not run_dir.is_dir():
            errors.append(f"{index}:{lineno}: run dir {run_dir} missing")
            continue
        errors += _validate_manifest(run_dir / "manifest.json")
    if entries == 0 and not errors:
        errors.append(f"{index}: no registry entries")
    return errors


_BASELINE_SERIES_FIELDS = ("n", "last", "ewma", "median", "mad", "lo", "hi",
                           "within_envelope")
_TREND_STATES = ("stable", "stepped", "trending")
_SLO_OBJECTIVES = ("max", "min", "stable")


def _validate_baseline(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if payload.get("schema") != WATCH_SCHEMA:
        errors.append(f"{path}: schema != {WATCH_SCHEMA}")
    if payload.get("kind") != "watch-baseline":
        errors.append(f"{path}: kind != 'watch-baseline'")
    series = payload.get("series")
    if not isinstance(series, dict) or not series:
        return errors + [f"{path}: series missing or empty"]
    for name, cell in series.items():
        if not isinstance(cell, dict):
            errors.append(f"{path}: series {name!r} is not an object")
            continue
        n = cell.get("n")
        if not isinstance(n, int) or n < 1:
            errors.append(f"{path}: series {name!r} has bad n {n!r}")
            continue
        missing = [f for f in _BASELINE_SERIES_FIELDS if f not in cell]
        if missing:
            errors.append(f"{path}: series {name!r} missing fields {missing}")
            continue
        for key in ("last", "ewma", "median", "mad", "lo", "hi"):
            if not isinstance(cell[key], (int, float)):
                errors.append(
                    f"{path}: series {name!r} has bad {key} {cell[key]!r}")
        if isinstance(cell["lo"], (int, float)) and \
                isinstance(cell["hi"], (int, float)) and \
                cell["lo"] > cell["hi"]:
            errors.append(f"{path}: series {name!r} envelope lo > hi")
        if isinstance(cell["mad"], (int, float)) and cell["mad"] < 0:
            errors.append(f"{path}: series {name!r} has negative mad")
    return errors


def _validate_trend(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if payload.get("schema") != WATCH_SCHEMA:
        errors.append(f"{path}: schema != {WATCH_SCHEMA}")
    if payload.get("kind") != "watch-trend":
        errors.append(f"{path}: kind != 'watch-trend'")
    series = payload.get("series")
    if not isinstance(series, dict) or not series:
        return errors + [f"{path}: series missing or empty"]
    for name, cell in series.items():
        state = cell.get("state") if isinstance(cell, dict) else None
        if state not in _TREND_STATES:
            errors.append(f"{path}: series {name!r} has bad state {state!r}")
            continue
        if state == "stepped" and not isinstance(cell.get("change_seq"), int):
            errors.append(f"{path}: stepped series {name!r} has no "
                          f"change_seq")
        if state in ("stepped", "trending") and \
                cell.get("direction") not in ("up", "down"):
            errors.append(f"{path}: series {name!r} has bad direction "
                          f"{cell.get('direction')!r}")
    return errors


def _validate_slo(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if payload.get("schema") != WATCH_SCHEMA:
        errors.append(f"{path}: schema != {WATCH_SCHEMA}")
    if payload.get("kind") != "watch-slo":
        errors.append(f"{path}: kind != 'watch-slo'")
    slos = payload.get("slos")
    if not isinstance(slos, list) or not slos:
        return errors + [f"{path}: slos missing or empty"]
    any_unmet = False
    for i, slo in enumerate(slos):
        name = slo.get("name") if isinstance(slo, dict) else None
        if not isinstance(name, str) or not name:
            errors.append(f"{path}: slo {i} has no name")
            continue
        if slo.get("objective") not in _SLO_OBJECTIVES:
            errors.append(f"{path}: slo {name!r} has bad objective "
                          f"{slo.get('objective')!r}")
        burn = slo.get("burn_rate")
        if not isinstance(burn, (int, float)) or not 0.0 <= burn <= 1.0:
            errors.append(f"{path}: slo {name!r} has bad burn_rate {burn!r}")
        if not isinstance(slo.get("met"), bool):
            errors.append(f"{path}: slo {name!r} has non-bool met")
            continue
        details = slo.get("series", [])
        if not isinstance(details, list):
            errors.append(f"{path}: slo {name!r} series is not a list")
            continue
        unmet = [d for d in details
                 if isinstance(d, dict) and d.get("met") is False]
        if slo["met"] != (not unmet):
            errors.append(f"{path}: slo {name!r} met={slo['met']} disagrees "
                          f"with its series details")
        for d in details:
            observed = d.get("observed_burn_rate") if isinstance(d, dict) \
                else None
            if observed is not None and (
                    not isinstance(observed, (int, float))
                    or not 0.0 <= observed <= 1.0):
                errors.append(f"{path}: slo {name!r} has bad "
                              f"observed_burn_rate {observed!r}")
        any_unmet = any_unmet or not slo["met"]
    met = payload.get("met")
    if not isinstance(met, bool) or met != (not any_unmet):
        errors.append(f"{path}: report met={met!r} disagrees with its slos")
    breaches = payload.get("breaches")
    if not isinstance(breaches, list):
        errors.append(f"{path}: breaches missing")
    elif bool(breaches) == bool(met):
        errors.append(f"{path}: met={met!r} but {len(breaches)} breach(es)")
    return errors


def _validate_summary(path: Path) -> list:
    """An ``autosens obs summary --format json`` payload: a list of
    ``[field, value]`` string pairs covering the manifest essentials."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = []
    if not isinstance(payload, list) or not payload:
        return [f"{path}: expected a non-empty list of [field, value] rows"]
    fields = []
    for i, row in enumerate(payload):
        if (not isinstance(row, (list, tuple)) or len(row) != 2
                or not isinstance(row[0], str)
                or not isinstance(row[1], (str, int, float, bool,
                                           type(None)))):
            errors.append(f"{path}: row {i} is not a [field, scalar] "
                          f"pair: {row!r}")
            continue
        fields.append(row[0])
    for required in ("run id", "experiment", "seed", "deterministic"):
        if required not in fields:
            errors.append(f"{path}: summary has no {required!r} row")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", type=Path, default=None,
                        help="Chrome trace (*.json) or span JSONL (*.jsonl)")
    parser.add_argument("--metrics", type=Path, default=None,
                        help="Prometheus text (*.prom) or snapshot (*.json)")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="run manifest JSON")
    parser.add_argument("--health", type=Path, default=None,
                        help="health report JSON (autosens doctor)")
    parser.add_argument("--profile", type=Path, default=None,
                        help="span profile JSON (--profile-out)")
    parser.add_argument("--diff", type=Path, default=None,
                        help="diff report JSON (autosens obs diff --out)")
    parser.add_argument("--sensitivity", type=Path, default=None,
                        help="sensitivity frontier JSON (autosens "
                             "sensitivity --out-dir)")
    parser.add_argument("--progress", type=Path, default=None,
                        help="progress snapshot JSON (/progress or a "
                             "recorded progress.json)")
    parser.add_argument("--events", type=Path, default=None,
                        help="event NDJSON (/events or a recorded "
                             "events.ndjson)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="run registry: a --runs-dir directory or its "
                             "index.jsonl")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="watch baseline artifact (autosens watch "
                             "--out-dir baseline.json)")
    parser.add_argument("--trend", type=Path, default=None,
                        help="watch trend artifact (autosens watch "
                             "--out-dir trend.json)")
    parser.add_argument("--slo", type=Path, default=None,
                        help="watch SLO verdict artifact (autosens watch "
                             "--out-dir slo.json)")
    parser.add_argument("--summary", type=Path, default=None,
                        help="an 'autosens obs summary --format json' "
                             "payload")
    args = parser.parse_args(argv)
    if all(getattr(args, name) is None
           for name in ("trace", "metrics", "manifest", "health",
                        "profile", "diff", "sensitivity", "progress",
                        "events", "registry", "baseline", "trend", "slo",
                        "summary")):
        parser.error("nothing to validate; pass --trace/--metrics/--manifest/"
                     "--health/--profile/--diff/--sensitivity/--progress/"
                     "--events/--registry/--baseline/--trend/--slo/--summary")

    errors = []
    if args.trace is not None:
        if args.trace.suffix == ".jsonl":
            errors += _validate_span_jsonl(args.trace)
        else:
            errors += _validate_chrome_trace(args.trace)
    if args.metrics is not None:
        if args.metrics.suffix == ".json":
            errors += _validate_metrics_json(args.metrics)
        else:
            errors += _validate_metrics_prom(args.metrics)
    if args.manifest is not None:
        errors += _validate_manifest(args.manifest)
    if args.health is not None:
        errors += _validate_health(args.health)
    if args.profile is not None:
        errors += _validate_profile(args.profile)
    if args.diff is not None:
        errors += _validate_diff(args.diff)
    if args.sensitivity is not None:
        errors += _validate_sensitivity(args.sensitivity)
    if args.progress is not None:
        errors += _validate_progress(args.progress)
    if args.events is not None:
        errors += _validate_events(args.events)
    if args.registry is not None:
        errors += _validate_registry(args.registry)
    if args.baseline is not None:
        errors += _validate_baseline(args.baseline)
    if args.trend is not None:
        errors += _validate_trend(args.trend)
    if args.slo is not None:
        errors += _validate_slo(args.slo)
    if args.summary is not None:
        errors += _validate_summary(args.summary)

    if errors:
        for line in errors:
            print(f"INVALID: {line}", file=sys.stderr)
        return 1
    print("ok: all artifacts validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
