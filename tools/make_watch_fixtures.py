#!/usr/bin/env python
"""Regenerate the committed watch registry fixtures (clean + stepped).

The fixtures under ``tests/obs/golden/registry/`` are two small run
registries, eight deterministic runs each, exercised by the obs-watch CI
job and ``tests/obs/test_watch.py``:

- ``clean``: every series jitters a couple of percent around a stable
  mean — ``autosens watch --check`` must exit 0 with all SLOs met.
- ``stepped``: identical except the ``preference_compute`` span self-time
  steps from 2.0s to 3.2s at seq 6 and stays there — the watch gate must
  exit non-zero, name ``span_seconds[preference_compute]``, and attribute
  the change-point to seq 6.

The *watch artifacts computed from* these registries are byte-reproducible
by contract. The fixture files themselves are committed rather than
regenerated in CI because manifests embed interpreter/package versions::

    PYTHONPATH=src python tools/make_watch_fixtures.py tests/obs/golden/registry
"""

from __future__ import annotations

import argparse
import random
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.health import HEALTH_SCHEMA  # noqa: E402
from repro.obs.manifest import build_manifest, write_manifest  # noqa: E402
from repro.obs.registry import RunRegistry  # noqa: E402

N_RUNS = 8
STEP_AT_SEQ = 6        # first run of the regressed regime
STEP_FACTOR = 1.6      # 2.0s -> 3.2s
JITTER = 0.02          # +/-2% run-to-run noise, far inside every envelope

SPAN_BASE_S = {
    "ingest": 0.40,
    "preference_compute": 2.00,
    "slotted_counts": 0.55,
    "corrected_histograms": 0.30,
}


def _health_ok() -> dict:
    return {
        "schema": HEALTH_SCHEMA,
        "verdict": "ok",
        "counts": {"ok": 0, "warn": 0, "fail": 0},
        "findings": [],
        "stages": {},
    }


def build_fixture(root: Path, stepped: bool) -> None:
    if root.exists():
        shutil.rmtree(root)
    registry = RunRegistry(root)
    rng = random.Random(20260808)
    for i in range(N_RUNS):
        seq = i + 1
        run_dir = registry.new_run_dir("experiment-11")
        timings = {}
        for name, base in SPAN_BASE_S.items():
            seconds = base * (1.0 + rng.uniform(-JITTER, JITTER))
            if stepped and name == "preference_compute" and seq >= STEP_AT_SEQ:
                seconds = base * STEP_FACTOR * \
                    (1.0 + rng.uniform(-JITTER, JITTER))
            timings[name] = {"seconds": round(seconds, 6), "count": 1}
        manifest = build_manifest(
            experiment_id="experiment",
            seed=11,
            config_fingerprint="watch-fixture",
            ingest={"n_rows": 1000, "n_good": 990, "n_bad": 10,
                    "mode": "lenient"},
            metrics={},
            deterministic=True,
            extra={
                "health": _health_ok(),
                "span_timings": timings,
                "exit_status": 0,
            },
        )
        write_manifest(manifest, run_dir / "manifest.json")
        (run_dir / "metrics.prom").write_text("", encoding="utf-8")
        wall = sum(cell["seconds"] for cell in timings.values())
        registry.record(
            run_dir,
            run_id=manifest["run_id"],
            command="experiment",
            seed=11,
            deterministic=True,
            verdict="ok",
            wall_s=round(wall + 0.25, 3),
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out_root", nargs="?",
                        default=str(REPO_ROOT / "tests/obs/golden/registry"),
                        help="directory to hold the clean/ and stepped/ "
                             "registries")
    args = parser.parse_args()
    out_root = Path(args.out_root)
    build_fixture(out_root / "clean", stepped=False)
    build_fixture(out_root / "stepped", stepped=True)
    print(f"wrote {N_RUNS}-run clean + stepped registries under {out_root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
