"""Regenerate EXPERIMENTS.md from the experiment registry.

Runs every registered experiment at full scale with its default seed and
writes the paper-vs-measured record. Usage:

    python tools/make_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
import warnings
from pathlib import Path

warnings.filterwarnings("ignore")

from repro.analysis import EXPERIMENTS, run_experiment  # noqa: E402

PREAMBLE = """\
# EXPERIMENTS — paper vs measured

Every figure and table from the evaluation of *AutoSens: Inferring Latency
Sensitivity of User Activity through Natural Experiments* (IMC 2021),
regenerated on the synthetic OWA-like workload described in DESIGN.md.

**How to read this file.** The paper's substrate is two months of real OWA
telemetry; ours is a simulator whose ground-truth preference curves are
anchored at the values the paper itself reports. Absolute agreement is
therefore expected only where the paper gives numbers (SelectMail anchors,
Table 1); everywhere else the comparison is of *shape*: who is more
sensitive than whom, where curves flatten, what the confounder correction
changes. Checks below are machine-verified on every benchmark run
(`pytest benchmarks/ --benchmark-only`).

**Known, quantified deviations** (see DESIGN.md §5 and the ablation
benches):

- the measured NLP is attenuated toward 1 by the share of latency variance
  that is *not* temporal (per-user speed differences, per-request jitter):
  the nearest-sample estimator of U carries no natural-experiment signal
  for those components. At the paper's anchors this costs ≲ 0.03-0.06;
- bins above ~1.5-2 s have thin unbiased support for the faster action
  types and night periods; curves are reported NaN there rather than
  extrapolated;
- the Savitzky-Golay window of 101 x 10 ms bins (the paper's setting)
  slightly rounds the knee of steep curves (Ablation C2).

Regenerate with `python tools/make_experiments_md.py`.

---
"""


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    sections = [PREAMBLE]
    for experiment_id in EXPERIMENTS:
        print(f"running {experiment_id} ...", flush=True)
        outcome = run_experiment(experiment_id)
        sections.append(f"## {experiment_id}: {outcome.title}\n")
        if outcome.description:
            sections.append(outcome.description + "\n")
        for caption, headers, rows in outcome.tables:
            sections.append(f"**{caption}**\n")
            sections.append("| " + " | ".join(headers) + " |")
            sections.append("|" + "---|" * len(headers))
            for row in rows:
                cells = []
                for cell in row:
                    if cell is None:
                        cells.append("—")
                    elif isinstance(cell, float):
                        cells.append(f"{cell:.3f}")
                    else:
                        cells.append(str(cell))
                sections.append("| " + " | ".join(cells) + " |")
            sections.append("")
        if outcome.checks:
            sections.append("**Checks**\n")
            for check in outcome.checks:
                status = "✅" if check.passed else "❌"
                detail = f" — {check.detail}" if check.detail else ""
                sections.append(f"- {status} {check.name}{detail}")
            sections.append("")
        for note in outcome.notes:
            sections.append(f"> {note}\n")
        sections.append("")
    out_path.write_text("\n".join(sections))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
