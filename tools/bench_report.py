#!/usr/bin/env python
"""Run the perf-regression suite and maintain ``BENCH_pipeline.json``.

Two modes:

``--output`` (default)
    Run the suite at ``--scale`` and write/update that scale's entry in the
    report file, e.g.::

        PYTHONPATH=src python tools/bench_report.py --scale full
        PYTHONPATH=src python tools/bench_report.py --scale smoke

    The file keeps one entry per scale (``{"schema": 1, "scales": {...}}``),
    so a full-scale record survives smoke-scale refreshes and vice versa.

``--check BASELINE``
    Run the suite and compare against a committed baseline (CI mode)::

        PYTHONPATH=src python tools/bench_report.py --scale smoke \\
            --check BENCH_pipeline.json

    The comparison is *ratio-based* so it is robust across machines: for
    every stage with a legacy reference, the measured speedup must not fall
    below ``baseline_speedup / max_regression`` (default 2.0). A genuine
    reversion of the tensor/sampling optimizations shows up as a collapsed
    speedup regardless of how fast the CI runner is; raw wall-clock is
    reported but never gated on.

    ``--span-budget NAME=SHARE`` (repeatable, check mode) additionally
    asserts that a span's share of the traced wall time stays at or below
    SHARE — e.g. ``--span-budget slotted_counts.unbiased=0.6`` fails the
    gate if the unbiased draw creeps back above 60% of the pipeline.
    Shares are scale-free, so this too is machine-independent.

``--no-legacy`` skips the legacy reference runs (baselines and diffs become
null) — required for the ``xl`` scale, where the per-slot legacy loops take
minutes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import PERF_SCALES, run_perf_suite  # noqa: E402

DEFAULT_REPORT = REPO_ROOT / "BENCH_pipeline.json"


def load_report(path: Path) -> dict:
    if path.exists():
        data = json.loads(path.read_text())
        if data.get("schema") == 1 and isinstance(data.get("scales"), dict):
            return data
    return {"schema": 1, "scales": {}}


def check_against(measured: dict, baseline: dict, max_regression: float) -> list:
    """Stage names whose speedup regressed more than ``max_regression``×."""
    failures = []
    for name, stage in baseline.get("stages", {}).items():
        base_speedup = stage.get("speedup")
        if base_speedup is None:
            continue
        now = measured["stages"].get(name)
        if now is None or now.get("speedup") is None:
            failures.append(f"{name}: stage missing from measured report")
            continue
        floor = base_speedup / max_regression
        if now["speedup"] < floor:
            failures.append(
                f"{name}: speedup {now['speedup']:.2f}x < floor {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x / allowed {max_regression:g}x regression)"
            )
    return failures


def parse_span_budgets(specs: list) -> dict:
    """``NAME=SHARE`` strings → ``{name: max_share}`` (share in 0..1)."""
    budgets = {}
    for spec in specs:
        name, _, share = spec.partition("=")
        if not name or not share:
            raise SystemExit(f"bad --span-budget {spec!r}; expected NAME=SHARE")
        try:
            budgets[name] = float(share)
        except ValueError:
            raise SystemExit(f"bad --span-budget share {share!r} in {spec!r}")
    return budgets


def check_span_budgets(measured: dict, budgets: dict) -> list:
    """Spans whose share of traced wall time exceeds their budget."""
    failures = []
    spans = measured.get("span_timings", {})
    for name, max_share in sorted(budgets.items()):
        agg = spans.get(name)
        if agg is None:
            failures.append(f"span {name}: missing from measured span timings")
            continue
        share = agg.get("share", 0.0)
        if share > max_share:
            failures.append(
                f"span {name}: share {share:.1%} of traced time exceeds "
                f"budget {max_share:.1%}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(PERF_SCALES), default="full")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="best-of-N timing for stages with a legacy reference",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_REPORT,
        help=f"report file to update (default {DEFAULT_REPORT.name})",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="compare against a committed report instead of writing one",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="fail --check when a stage speedup drops below baseline/this (default 2.0)",
    )
    parser.add_argument(
        "--span-budget", action="append", default=[], metavar="NAME=SHARE",
        help="in --check mode, fail when this span exceeds SHARE of the "
             "traced wall time (repeatable)",
    )
    parser.add_argument(
        "--no-legacy", action="store_true",
        help="skip the legacy reference runs (baselines/diffs become null); "
             "required at --scale xl",
    )
    args = parser.parse_args(argv)

    report = run_perf_suite(
        scale=args.scale, seed=args.seed, repeats=args.repeats,
        legacy=not args.no_legacy,
    )
    print(report.render())

    if args.check is not None:
        baseline = load_report(args.check)
        entry = baseline["scales"].get(args.scale)
        if entry is None:
            print(f"error: {args.check} has no {args.scale!r} entry", file=sys.stderr)
            return 2
        measured = report.to_dict()
        failures = check_against(measured, entry, args.max_regression)
        failures += check_span_budgets(measured, parse_span_budgets(args.span_budget))
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nOK: no stage regressed more than {args.max_regression:g}x "
              f"vs {args.check} [{args.scale}]")
        return 0

    data = load_report(args.output)
    data["scales"][args.scale] = report.to_dict()
    args.output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output} [{args.scale}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
