"""Quickstart: generate synthetic telemetry, infer latency preference.

Runs the full AutoSens loop in four steps:

1. generate an OWA-like synthetic workload (the stand-in for server logs);
2. run the locality diagnostics that justify the method;
3. compute the normalized latency preference for one action type;
4. compare the recovered curve against the generator's ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AutoSens
from repro.core import AutoSensConfig, compare_to_truth
from repro.viz import format_table, line_plot
from repro.workload import owa_scenario
from repro.workload.preference import paper_curve

SEED = 7


def main() -> None:
    # 1. Synthetic telemetry: 5 days, 300 users, OWA-like action mix. In a
    #    real deployment you would load your own logs instead, e.g.:
    #    logs = repro.telemetry.read_jsonl("actions.jsonl")
    scenario = owa_scenario(seed=SEED, duration_days=5.0, n_users=300,
                            candidates_per_user_day=120.0)
    result = scenario.generate()
    logs = result.logs
    print(f"generated {len(logs)} actions from {logs.n_users()} users over "
          f"{logs.duration() / 86400:.1f} days")

    # 2. Is latency locally predictable? (Paper Section 2.1 / Figure 1.)
    engine = AutoSens(AutoSensConfig(seed=SEED))
    locality = engine.locality(logs)
    print(f"MSD/MAD: actual={locality.actual:.3f}  "
          f"shuffled={locality.shuffled:.3f}  sorted={locality.sorted:.4f}")
    print(f"  -> locality strength {locality.locality_strength:.0%} "
          "(0% = random order, 100% = fully sorted)")

    # 3. The headline quantity: normalized latency preference for opening
    #    an email, business users, reference latency 300 ms.
    curve = engine.preference_curve(logs, action="SelectMail",
                                    user_class="business")
    rows = []
    for latency in (500.0, 1000.0, 1500.0):
        nlp = float(curve.at(latency))
        rows.append([f"{latency:.0f} ms", nlp, f"{(1 - nlp) * 100:.0f}%"])
    print(format_table(["latency", "NLP", "activity drop vs 300 ms"], rows))

    mask = curve.valid & (curve.latencies <= 2000.0)
    print(line_plot({"SelectMail": (curve.latencies[mask], curve.nlp[mask])},
                    title="normalized latency preference (business SelectMail)",
                    x_label="latency ms"))

    # 4. Because the workload is synthetic we can score the recovery.
    truth = paper_curve("SelectMail", "business")
    report = compare_to_truth(curve, lambda lat: truth.normalized(lat),
                              anchor_latencies=(500.0, 1000.0, 1500.0))
    print("\nrecovery vs ground truth:")
    for anchor in report.anchors:
        print(f"  {anchor.latency_ms:6.0f} ms: measured {anchor.measured:.3f} "
              f"vs truth {anchor.expected:.3f} (err {anchor.error:+.3f})")
    print(f"  mean abs error: {report.mean_abs_error:.3f}")


if __name__ == "__main__":
    main()
