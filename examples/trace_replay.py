"""Replaying a recorded latency trace through the simulator.

If you have your service's latency history (per-minute medians from any
monitoring system), you can drive the synthetic user population with it —
"what would AutoSens see on *our* latency weather?" — and check how well
the pipeline would recover a hypothesized preference curve at your data
volume.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.core import AutoSens, AutoSensConfig, compare_to_truth
from repro.workload import (
    generate_from_trace,
    read_level_trace,
    write_level_trace,
)
from repro.workload.latency_model import LatencyModel
from repro.workload.preference import paper_curve

SEED = 4


def main() -> None:
    # Stand-in for a real monitoring export: a 3-day level path written to
    # the trace CSV format at 1-minute resolution.
    recorded = LatencyModel().sample_grid(3 * 86400.0, rng=9)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "service_latency.csv"
        rows = write_level_trace(recorded, path, stride=6)
        print(f"trace file: {rows} one-minute samples "
              f"({path.stat().st_size / 1024:.0f} KiB)")

        trace = read_level_trace(path)
        result = generate_from_trace(trace, seed=SEED)

    print(f"replayed {len(result.logs)} actions against the recorded trace")
    engine = AutoSens(AutoSensConfig(seed=1))
    curve = engine.preference_curve(result.logs, action="SelectMail",
                                    user_class="business")
    truth = paper_curve("SelectMail", "business")
    report = compare_to_truth(curve, lambda lat: truth.normalized(lat),
                              anchor_latencies=(500.0, 1000.0))
    for anchor in report.anchors:
        print(f"  {anchor.latency_ms:6.0f} ms: measured {anchor.measured:.3f}"
              f" vs assumed truth {anchor.expected:.3f}")
    print("note: a 1-minute trace coarsens the level process (the built-in "
          "grid is 10 s), which slightly attenuates the recovered curve.")


if __name__ == "__main__":
    main()
