"""The time confounder, end to end: why naive B/U inference inverts.

Recreates the paper's Table 1 story on full synthetic telemetry: at night
the service is fast *and* users are asleep, so without correction the
method concludes users prefer high latency. The per-hour activity factor
normalization (Section 2.4.1) repairs the inference.

Run:  python examples/confounder_demo.py
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig, estimate_alpha, worked_example
from repro.stats.histogram import latency_bins
from repro.viz import format_table
from repro.workload import owa_scenario

SEED = 23


def main() -> None:
    # The paper's own worked example, exactly (Table 1).
    example = worked_example()
    print("paper Table 1 worked example:")
    print(format_table(
        ["quantity", "value"],
        [["alpha (night vs day)", example.alpha],
         ["night 'low' count normalized", example.normalized_counts["low"]],
         ["night 'high' count normalized", example.normalized_counts["high"]],
         ["naive activity at low latency", example.naive_rates["low"]],
         ["naive activity at high latency", example.naive_rates["high"]],
         ["corrected activity at low latency", example.corrected_rates["low"]],
         ["corrected activity at high latency", example.corrected_rates["high"]]],
    ))
    print("naive says users are MORE active at high latency; "
          "corrected recovers the truth.\n")

    # The same phenomenon on full telemetry.
    result = owa_scenario(seed=SEED, duration_days=7.0, n_users=400,
                          candidates_per_user_day=150.0).generate()
    logs = result.logs.where(action="SelectMail", user_class="business")

    naive = AutoSens(AutoSensConfig(seed=SEED, time_correction=False))
    corrected = AutoSens(AutoSensConfig(seed=SEED, time_correction=True))
    curve_naive = naive.preference_curve(logs)
    curve_corrected = corrected.preference_curve(logs)

    rows = []
    for latency in (200.0, 500.0, 1000.0):
        rows.append([
            f"{latency:.0f} ms",
            float(curve_naive.at(latency)),
            float(curve_corrected.at(latency)),
        ])
    print(format_table(["latency", "naive NLP", "alpha-corrected NLP"], rows))
    print("(naive is flattened/inverted at low latencies because low latency "
          "co-occurs with the quiet night hours)\n")

    # Show the estimated alpha curve over the day.
    alpha = estimate_alpha(logs, latency_bins(), scheme="hour-of-day",
                           rng=SEED, bin_average="weighted")
    print("estimated hour-of-day activity factor (busiest hour = 1):")
    bars = []
    peak = float(np.nanmax(alpha.alpha_by_slot))
    for slot, value in zip(alpha.slot_ids, alpha.alpha_by_slot):
        bar = "#" * int(round(40 * value / peak))
        bars.append(f"  {int(slot):02d}:00 {bar} {value:.2f}")
    print("\n".join(bars))


if __name__ == "__main__":
    main()
