"""What-if planning: estimating the payoff of latency work, passively.

The interventional studies the paper cites (Amazon's +100 ms = -1 % sales,
Google's +500 ms = -20 % traffic) required changing production latency.
With an AutoSens curve the same question is answered from logs alone:

1. measure the normalized latency preference for an action;
2. integrate it against the availability distribution under a
   hypothetical latency transform (uniform speedup, shift, or tail cap);
3. compare the predicted activity to today's.

Because this repository's telemetry is simulated, step 4 actually runs
the improved service and checks the prediction.

Run:  python examples/whatif_planning.py
"""

from dataclasses import replace

from repro.core import (
    AutoSens,
    AutoSensConfig,
    cap_ms,
    predict_activity_impact,
    scale,
    shift_ms,
)
from repro.viz import format_table
from repro.workload import TelemetryGenerator, owa_scenario

SEED = 11


def main() -> None:
    scenario = owa_scenario(seed=SEED, duration_days=7.0, n_users=400,
                            candidates_per_user_day=130.0)
    baseline = scenario.generate()
    engine = AutoSens(AutoSensConfig(seed=3))
    curve = engine.preference_curve(baseline.logs, action="SelectMail",
                                    user_class="business")

    candidates = [
        ("uniform 10% speedup", scale(0.9)),
        ("uniform 20% speedup", scale(0.8)),
        ("shave 100 ms everywhere", shift_ms(-100.0)),
        ("cap the tail at 800 ms", cap_ms(800.0)),
        ("regression: +150 ms", shift_ms(150.0)),
    ]
    rows = []
    for label, transform in candidates:
        report = predict_activity_impact(curve, transform, min_coverage=0.6)
        rows.append([label, f"{report.activity_change_pct:+.1f}%",
                     f"{report.coverage:.0%}",
                     f"{report.mean_latency_before:.0f} -> "
                     f"{report.mean_latency_after:.0f} ms"])
    print("predicted activity impact (SelectMail, business users):")
    print(format_table(
        ["intervention", "activity change", "curve coverage", "mean latency"],
        rows,
    ))

    # Close the loop: actually run the 20%-faster service on the same seed.
    faster_config = replace(
        scenario.config,
        latency=replace(scenario.config.latency,
                        base_ms=scenario.config.latency.base_ms * 0.8),
    )
    faster = TelemetryGenerator(
        config=faster_config,
        ground_truth=scenario.ground_truth,
        action_mix=scenario.action_mix,
        activity_model=scenario.activity_model,
    ).generate(rng=SEED)
    n0 = len(baseline.logs.where(action="SelectMail", user_class="business"))
    n1 = len(faster.logs.where(action="SelectMail", user_class="business"))
    predicted = predict_activity_impact(curve, scale(0.8))
    print(f"\nvalidation against a simulated A/B test of the 20% speedup:")
    print(f"  predicted: {predicted.activity_change_pct:+.1f}%   "
          f"simulated: {(n1 / n0 - 1) * 100:+.1f}%")
    print("the passive estimate matches the intervention — without running one.")


if __name__ == "__main__":
    main()
