"""Time-of-day analysis: per-period sensitivity and the activity factor.

Reproduces the paper's Section 3.6 (Figures 7 and 8): the latency
preference per six-hour local-time period, and the activity factor alpha
that makes cross-hour pooling sound.

Run:  python examples/time_of_day.py
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig
from repro.types import ALL_DAY_PERIODS, ActionType, UserClass
from repro.viz import format_table, line_plot
from repro.workload import timeofday_scenario

SEED = 41


def main() -> None:
    result = timeofday_scenario(seed=SEED, duration_days=12.0, n_users=500,
                                candidates_per_user_day=120.0).generate()
    engine = AutoSens(AutoSensConfig(seed=SEED))

    # Figure 7: per-period preference curves.
    curves = engine.curves_by_period(result.logs,
                                     action=ActionType.SELECT_MAIL,
                                     user_class=UserClass.BUSINESS)
    rows = []
    for period in ALL_DAY_PERIODS:
        curve = curves[period.value]
        rows.append([period.value,
                     float(curve.at(500.0)),
                     float(curve.at(1000.0))])
    print("SelectMail NLP per time-of-day period (business users):")
    print(format_table(["period", "500 ms", "1000 ms"], rows))
    series = {}
    for label, curve in curves.items():
        mask = curve.valid & (curve.latencies <= 1800.0)
        series[label] = (curve.latencies[mask], curve.nlp[mask])
    print(line_plot(series, title="NLP by time of day", x_label="latency ms"))
    print("daytime users are more latency-sensitive than late-night users.\n")

    # Figure 8: the alpha profile with 8am-2pm as reference.
    alpha = engine.alpha_profile(result.logs, scheme="period",
                                 action=ActionType.SELECT_MAIL,
                                 user_class=UserClass.BUSINESS)
    print("time-based activity factor (8am-2pm = reference):")
    print(format_table(
        ["period", "alpha"],
        [[label, float(a)] for label, a in zip(alpha.labels(),
                                               alpha.alpha_by_slot)],
    ))
    print(f"alpha flatness across latency bins (CV): {alpha.flatness():.2f} "
          "- flat enough to average, as the paper argues.")


if __name__ == "__main__":
    main()
