"""Applying AutoSens to a different service and to your own logs.

Part 1 runs the pipeline on a *web-search-like* (non-sticky) service, where
ground-truth sensitivity is much steeper than email — the paper's Section 4
argues the method carries over to such services.

Part 2 shows the file-based workflow you would use on real telemetry:
write logs to JSONL, read them back, analyze.

Run:  python examples/custom_service.py
"""

import tempfile
from pathlib import Path

from repro.core import AutoSens, AutoSensConfig, compare_to_truth
from repro.telemetry import read_jsonl, write_jsonl
from repro.viz import format_table
from repro.workload import websearch_scenario

SEED = 99


def main() -> None:
    # Part 1: a non-sticky service with steep Query sensitivity.
    scenario = websearch_scenario(seed=SEED, duration_days=6.0, n_users=400,
                                  candidates_per_user_day=140.0)
    result = scenario.generate()
    engine = AutoSens(AutoSensConfig(seed=SEED))

    rows = []
    for action in ("Query", "ClickResult", "NextPage"):
        curve = engine.preference_curve(result.logs, action=action)
        rows.append([action,
                     float(curve.at(500.0)),
                     float(curve.at(1000.0))])
    print("web-search service, NLP per action:")
    print(format_table(["action", "500 ms", "1000 ms"], rows))

    query_curve = engine.preference_curve(result.logs, action="Query")
    truth = scenario.ground_truth.curve_for("Query", "consumer")
    report = compare_to_truth(query_curve, lambda lat: truth.normalized(lat),
                              anchor_latencies=(500.0, 1000.0))
    print("Query recovery: " + "; ".join(
        f"{a.latency_ms:.0f}ms meas {a.measured:.3f} vs truth {a.expected:.3f}"
        for a in report.anchors))
    print("search users abandon much faster than email users - email is "
          "'sticky', search is not.\n")

    # Part 2: the round-trip you would run on real server logs.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "actions.jsonl.gz"
        count = write_jsonl(result.logs.iter_records(), path)
        print(f"wrote {count} records to {path.name} "
              f"({path.stat().st_size / 1e6:.1f} MB gz)")
        logs = read_jsonl(path)
        curve = engine.preference_curve(logs, action="Query")
        print(f"re-read and re-analyzed: NLP(1000 ms) = "
              f"{float(curve.at(1000.0)):.3f}")


if __name__ == "__main__":
    main()
