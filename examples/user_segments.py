"""Segmentation analyses: action types, user classes, conditioning quartiles.

Reproduces the user-facing slices of the paper's evaluation (Figures 4-6)
on synthetic telemetry and prints the qualitative findings:

- SelectMail and SwitchFolder are the most latency-sensitive actions;
  Search is tolerated slower; ComposeSend (async) is nearly flat.
- Business (paying) users are more sensitive than consumers.
- Users conditioned to speed (lowest median-latency quartile) react most.

Run:  python examples/user_segments.py
"""

from repro.core import AutoSens, AutoSensConfig, monotone_ordering
from repro.core.quartiles import QUARTILE_NAMES
from repro.types import ALL_ACTION_TYPES, ActionType, UserClass
from repro.viz import format_table, line_plot
from repro.workload import conditioning_scenario, owa_scenario

SEED = 13
PROBES = (500.0, 1000.0, 1500.0)


def show(curves: dict, caption: str) -> None:
    rows = []
    for label, curve in curves.items():
        row = [label]
        for probe in PROBES:
            try:
                row.append(float(curve.at(probe)))
            except Exception:
                row.append(None)
        rows.append(row)
    print(caption)
    print(format_table(["slice"] + [f"{p:.0f} ms" for p in PROBES], rows))
    series = {}
    for label, curve in curves.items():
        mask = curve.valid & (curve.latencies <= 1800.0)
        series[label] = (curve.latencies[mask], curve.nlp[mask])
    print(line_plot(series, title=caption, x_label="latency ms"))
    print()


def main() -> None:
    result = owa_scenario(seed=SEED, duration_days=8.0, n_users=500,
                          candidates_per_user_day=150.0).generate()
    engine = AutoSens(AutoSensConfig(seed=SEED))

    # Figure 4: per-action curves for business users.
    by_action = engine.curves_by_action(result.logs,
                                        actions=list(ALL_ACTION_TYPES),
                                        user_class=UserClass.BUSINESS)
    show(by_action, "NLP by action type (business users)")
    order = monotone_ordering(by_action, at_latency=1000.0)
    print(f"sensitivity ranking at 1000 ms (most sensitive first): {order}\n")

    # Figure 5: business vs consumer for SelectMail.
    by_class = engine.curves_by_user_class(result.logs,
                                           action=ActionType.SELECT_MAIL)
    show(by_class, "SelectMail NLP by subscription class")

    # Figure 6: conditioning to speed (needs the conditioning scenario,
    # where per-user sensitivity is tied to the user's habitual speed).
    conditioned = conditioning_scenario(seed=SEED, duration_days=8.0,
                                        n_users=600).generate()
    by_quartile = engine.curves_by_quartile(conditioned.logs,
                                            action=ActionType.SELECT_MAIL)
    show(by_quartile, "SelectMail NLP by median-latency quartile (Q1 fastest)")
    nlp_1000 = {q: float(by_quartile[q].at(1000.0)) for q in QUARTILE_NAMES}
    print("NLP at 1000 ms per quartile:",
          ", ".join(f"{q}={v:.3f}" for q, v in nlp_1000.items()))
    print("users accustomed to speed are the most latency-sensitive.")


if __name__ == "__main__":
    main()
