"""Warehouse-scale patterns: chunked processing and aggregate exchange.

Two production workflows the in-memory quickstart doesn't cover:

1. **Streaming** — telemetry too large for memory is processed in
   day-sized chunks whose sufficient statistics merge exactly; the final
   curve matches the batch computation.
2. **Aggregate exchange** — a service operator exports only the
   per-(time-slot, latency-bin) tables (no user ids, no timestamps, no
   content); an analyst computes the NLP curve from the table alone.

Run:  python examples/streaming_and_aggregates.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    AutoSens,
    AutoSensConfig,
    StreamingAutoSens,
    curve_from_counts,
    iter_chunks_by_day,
    load_counts,
    save_counts,
)
from repro.core.alpha import slotted_counts
from repro.viz import format_table
from repro.workload import owa_scenario

SEED = 42


def main() -> None:
    result = owa_scenario(seed=SEED, duration_days=6.0, n_users=350,
                          candidates_per_user_day=130.0).generate()
    sliced = result.logs.where(action="SelectMail", user_class="business")
    config = AutoSensConfig(seed=SEED)

    # Reference: the all-in-memory batch computation.
    batch = AutoSens(config).preference_curve(
        result.logs, action="SelectMail", user_class="business")

    # 1. Streaming: one day at a time, as a log pipeline would deliver it.
    stream = StreamingAutoSens(AutoSensConfig(seed=SEED))
    n_chunks = 0
    for chunk in iter_chunks_by_day(sliced, days_per_chunk=1.0):
        stream.consume(chunk.successful(),
                       description="action=SelectMail, class=business")
        n_chunks += 1
    streamed = stream.preference_curve()
    print(f"consumed {n_chunks} day-chunks, {stream.n_rows} rows total")

    # 2. Aggregate exchange: export a table, reload it, analyze it.
    counts = slotted_counts(
        sliced, config.bins(),
        n_unbiased_samples=3 * len(sliced), rng=SEED,
    )
    with tempfile.TemporaryDirectory() as tmp:
        table_path = Path(tmp) / "selectmail_counts.json"
        save_counts(counts, table_path)
        size_kb = table_path.stat().st_size / 1024.0
        print(f"exported sufficient statistics: {size_kb:.0f} KiB "
              f"(vs ~{len(sliced) * 120 / 1e6:.0f} MB of raw rows)")
        from_table = curve_from_counts(load_counts(table_path), config,
                                       slice_description="from aggregates")

    rows = []
    for probe in (500.0, 800.0, 1000.0):
        rows.append([
            f"{probe:.0f} ms",
            float(batch.at(probe)),
            float(streamed.at(probe)),
            float(from_table.at(probe)),
        ])
    print(format_table(
        ["latency", "batch NLP", "streamed NLP", "aggregate NLP"], rows,
    ))
    print("all three paths agree to within estimator noise; the aggregate "
          "file contains no user identifiers or raw timestamps.")


if __name__ == "__main__":
    main()
